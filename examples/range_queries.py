#!/usr/bin/env python3
"""Range and IN-list retrieval: box queries over a declustered file.

The paper's conclusion points at "more general type of queries" as the
next frontier for optimal distribution.  This example builds a sensor
archive whose time field is hashed order-preservingly, runs range/IN-list
(box) queries end to end, and compares how well the declustering methods
spread range work — spoiler: FX's partial-match dominance does not carry
over, which is precisely why the paper calls it future work.

Run:  python examples/range_queries.py
"""

from repro import FileSystem, FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.analysis.box import box_largest_response, box_response_histogram
from repro.hashing.hash_functions import (
    FibonacciFieldHash,
    IntegerRangeHash,
    StringFieldHash,
)
from repro.hashing.multikey import MultiKeyHash
from repro.query.box import BoxQuery
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile
from repro.util.numbers import ceil_div
from repro.util.tables import format_table

# Sensor archive: (hour-of-week 0..167, sensor id, reading class).
# The time field is hashed order-preservingly so time ranges stay
# contiguous in hash space.
FS = FileSystem.of(32, 16, 4, m=8)


def build_archive(method) -> PartitionedFile:
    hashes = [
        IntegerRangeHash(32, low=0, high=168),   # order-preserving time
        FibonacciFieldHash(16, seed=1),
        StringFieldHash(4, seed=2),
    ]
    pf = PartitionedFile(method, multikey_hash=MultiKeyHash(FS, hashes))
    for hour in range(168):
        for sensor in range(24):
            pf.insert((hour, sensor * 101, f"class-{(hour + sensor) % 4}"))
    return pf


def main() -> None:
    fx = FXDistribution(FS)
    pf = build_archive(fx)
    print(f"archive: {pf.record_count} readings on {FS.describe()}")

    # ------------------------------------------------------------------
    # 1. A time-range query: hours 24..48 (one day), any sensor/class.
    #    Hash values for that range: 168 hours over 32 slots.
    # ------------------------------------------------------------------
    lo = 24 * 32 // 168
    hi = 48 * 32 // 168
    box = BoxQuery.from_spec(FS, {0: (lo, hi)})
    result = QueryExecutor(pf).execute_box(box)
    print(
        f"\nday-range box {box.describe()}: {len(result.records)} candidate "
        f"readings, largest response {result.largest_response} "
        f"({'strict optimal' if result.strict_optimal else 'skewed'})"
    )

    # ------------------------------------------------------------------
    # 2. Range + IN-list: weekend hours, two reading classes.
    # ------------------------------------------------------------------
    weekend_lo = 120 * 32 // 168
    box2 = BoxQuery.from_spec(FS, {0: (weekend_lo, 31), 2: [0, 3]})
    histogram = box_response_histogram(fx, box2)
    print(
        f"weekend box {box2.describe()}: per-device qualified buckets "
        f"{histogram}"
    )

    # ------------------------------------------------------------------
    # 3. Method comparison on sliding time windows.  The windows also pin
    #    a sensor shortlist and one class, so no field is left fully
    #    unconstrained (an unconstrained field with F >= M makes any
    #    separable method trivially optimal).
    # ------------------------------------------------------------------
    methods = {"FX": fx, "Modulo": ModuloDistribution(FS)}
    rows = []
    for width in (4, 8, 16):
        for name, method in methods.items():
            total = 0.0
            count = 0
            for start in range(0, 32 - width):
                window = BoxQuery.from_spec(
                    FS,
                    {
                        0: (start, start + width - 1),
                        1: [1, 4, 11],   # a shortlist of sensors
                        2: 2,            # one reading class
                    },
                )
                bound = ceil_div(window.qualified_count, FS.m)
                total += box_largest_response(method, window) / bound
                count += 1
            rows.append([f"{width}-slot window", name, round(total / count, 3)])
    print()
    print(
        format_table(
            ["window", "method", "avg load factor"],
            rows,
            title="Sliding time-range windows (1.0 = strict optimal)",
        )
    )


if __name__ == "__main__":
    main()
