#!/usr/bin/env python3
"""Section 6 future work: searching for better transform assignments.

The paper closes by noting FX cannot guarantee strict optimality once four
or more fields are smaller than M, and calls for "more general
transformation functions".  This example explores that frontier with the
library's search tools:

1. exhaustive search over I/U/IU1/IU2 assignments on a 4-small-field
   system where the paper's round-robin is suboptimal,
2. the surprising case where search finds a *perfect* assignment despite
   L = 4 (the [Sung87] impossibility is a worst-case statement),
3. hill climbing on a system too large to enumerate.

Run:  python examples/transform_search.py
"""

from repro import FileSystem, FXDistribution
from repro.analysis.optim_prob import exact_fraction
from repro.distribution.search import (
    exhaustive_assignment_search,
    hill_climb_assignment_search,
)
from repro.util.tables import format_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Uniform small fields: search helps but cannot reach perfection.
    # ------------------------------------------------------------------
    fs = FileSystem.uniform(4, 4, m=32)
    paper = exact_fraction(FXDistribution(fs, policy="paper"))
    result = exhaustive_assignment_search(fs)
    print(
        format_table(
            ["assignment", "exact optimal fraction"],
            [
                ["paper round-robin", paper],
                [" ".join(result.methods) + " (searched)", result.score],
            ],
            title=f"{fs.describe()} - {result.evaluations} assignments scored",
            float_digits=4,
        )
    )

    # ------------------------------------------------------------------
    # 2. Mixed sizes: a perfect assignment exists even with L = 4.
    # ------------------------------------------------------------------
    mixed = FileSystem.of(8, 4, 2, 8, m=64)
    perfect = exhaustive_assignment_search(mixed)
    print(
        f"\n{mixed.describe()}: searched assignment {perfect.methods} reaches "
        f"{100 * perfect.score:.1f}% - perfect optimal despite four small "
        "fields."
    )

    # ------------------------------------------------------------------
    # 3. Truly general transformations: random GF(2) matrices.  Every
    #    published transform is linear over GF(2); searching the full
    #    linear space finds a perfect assignment even on the uniform
    #    system where the four families cannot exceed 93.75%.
    # ------------------------------------------------------------------
    from repro.core.linear import random_matrix_search

    linear = random_matrix_search(fs, iterations=500, seed=1)
    print(
        f"\n{fs.describe()}: random GF(2) linear transforms reach "
        f"{100 * linear.score:.1f}% after {linear.evaluations} draws "
        f"(four-family best: {100 * result.score:.2f}%)."
    )
    print("one winning matrix (field 0):")
    print(linear.transforms[0].matrix)

    # ------------------------------------------------------------------
    # 4. Larger instance: hill climbing with restarts.
    # ------------------------------------------------------------------
    big = FileSystem.of(4, 4, 4, 4, 8, 8, 2, 2, 2, m=64)
    climbed = hill_climb_assignment_search(big, restarts=3, seed=7)
    start = exact_fraction(FXDistribution(big, policy="paper"))
    print(
        f"\n{big.describe()}: hill climb improved the optimal fraction from "
        f"{100 * start:.1f}% (paper) to {100 * climbed.score:.1f}% "
        f"after {climbed.evaluations} evaluations."
    )
    print("improvement history (evaluations -> incumbent):")
    for evaluations, score in climbed.history:
        print(f"  {evaluations:5d} -> {100 * score:.1f}%")


if __name__ == "__main__":
    main()
