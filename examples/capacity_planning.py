#!/usr/bin/env python3
"""Capacity planning: from workload statistics to a deployed configuration.

The full design loop a practitioner would run with this library:

1. estimate per-field specification probabilities from a query trace,
2. size the hash directories optimally for that workload,
3. pick a declustering method with the advisor,
4. verify the configuration's exact engines agree,
5. simulate the expected concurrent load before committing hardware.

Run:  python examples/capacity_planning.py
"""

from repro import FileSystem
from repro.distribution.advisor import recommend_method
from repro.experiments.verification import verify_method
from repro.hashing.design import design_directory
from repro.query.estimator import estimate_workload
from repro.query.trace import parse_trace
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.costs import DiskCostModel
from repro.storage.simulator import ParallelQuerySimulator, poisson_arrivals

# A logged sample of the application's queries (field f0 = customer,
# f1 = region, f2 = status).  In production this would be a real log.
TRACE = """
f0=3 f1=* f2=1
f0=7 f1=* f2=*
f0=1 f1=2 f2=*
f0=* f1=* f2=0
f0=5 f1=* f2=1
f0=2 f1=1 f2=*
f0=4 f1=* f2=*
f0=6 f1=* f2=1
""".strip().splitlines()

DEVICES = 16
DIRECTORY_BITS = 9   # 512 buckets total


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Workload statistics from the trace (parse against a scratch
    #    file system wide enough for the raw values).
    # ------------------------------------------------------------------
    scratch = FileSystem.of(16, 16, 16, m=DEVICES)
    queries = list(parse_trace(scratch, TRACE))
    n_fields = scratch.n_fields
    estimate = estimate_workload(queries)
    probabilities = list(estimate.probabilities())
    print(
        "estimated P(specified) per field:",
        [round(p, 2) for p in probabilities],
        "| independence plausible:" ,
        estimate.looks_independent(tolerance=0.2),
    )

    # ------------------------------------------------------------------
    # 2. Size the directories for those statistics.
    # ------------------------------------------------------------------
    design = design_directory(probabilities, total_bits=DIRECTORY_BITS)
    fs = design.filesystem(m=DEVICES)
    print(
        f"designed directory: {fs.describe()} "
        f"(E[qualified buckets] = {design.expected_qualified():.1f})"
    )

    # ------------------------------------------------------------------
    # 3. Pick the distribution method.
    # ------------------------------------------------------------------
    recommendation = recommend_method(fs, p=sum(probabilities) / n_fields)
    print()
    print(recommendation.render())
    best = recommendation.best
    method = best.method
    print(f"-> deploying {best.name}")

    # ------------------------------------------------------------------
    # 4. Certify the configuration.
    # ------------------------------------------------------------------
    print()
    print(verify_method(method).summary())

    # ------------------------------------------------------------------
    # 5. Simulate the expected load.
    # ------------------------------------------------------------------
    workload = QueryWorkload(
        fs,
        WorkloadSpec(spec_probability=tuple(probabilities), seed=5),
    )
    arrivals = poisson_arrivals(workload, 300, rate_qps=6.0, seed=9)
    report = ParallelQuerySimulator(method, cost_model=DiskCostModel()).run(
        arrivals
    )
    print(
        f"\nsimulated 300 queries at 6 q/s: mean latency "
        f"{report.mean_latency_ms:.1f} ms, p-worst "
        f"{report.max_latency_ms:.1f} ms, hottest device at "
        f"{100 * max(report.utilisation()):.0f}% utilisation"
    )


if __name__ == "__main__":
    main()
