#!/usr/bin/env python3
"""Quickstart: declustering a multi-key hashed file with FX distribution.

Builds the paper's running example (Table 1's file system), shows how FX
places buckets, runs partial match queries through the full storage stack,
and checks strict optimality — everything a first-time user needs to see.

Run:  python examples/quickstart.py
"""

from repro import (
    FileSystem,
    FXDistribution,
    PartialMatchQuery,
)
from repro.distribution.modulo import ModuloDistribution
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A file system: two hashed fields (2 and 8 values) on 4 devices.
    # ------------------------------------------------------------------
    fs = FileSystem.of(2, 8, m=4)
    print(f"file system: {fs.describe()}, {fs.bucket_count} buckets")

    # ------------------------------------------------------------------
    # 2. FX distribution: device = T_M(J1 ^ J2).
    # ------------------------------------------------------------------
    fx = FXDistribution(fs)
    print("\nbucket -> device (paper Table 1):")
    for j1 in range(2):
        row = [fx.device_of((j1, j2)) for j2 in range(8)]
        print(f"  J1={j1}: {row}")

    # ------------------------------------------------------------------
    # 3. A partial match query: first field = 1, second unspecified.
    #    Eight buckets qualify; FX puts exactly two on each device.
    # ------------------------------------------------------------------
    query = PartialMatchQuery.from_dict(fs, {0: 1})
    print(f"\nquery {query.describe()} qualifies {query.qualified_count} buckets")
    print(f"per-device load under FX:     {fx.response_histogram(query)}")
    modulo = ModuloDistribution(fs)
    print(f"per-device load under Modulo: {modulo.response_histogram(query)}")

    # ------------------------------------------------------------------
    # 4. End to end: store real records and search by attribute value.
    # ------------------------------------------------------------------
    pf = PartitionedFile(fx)
    pf.insert_all(
        [(part_no, f"part-{part_no % 5}") for part_no in range(200)]
    )
    print(f"\nstored {pf.record_count} records; device loads {pf.device_loads()}")

    result = QueryExecutor(pf).execute(pf.query({1: "part-3"}))
    print(result.summary())
    print(f"parallel speedup over one device: {result.speedup:.1f}x")


if __name__ == "__main__":
    main()
