#!/usr/bin/env python3
"""Guided walkthrough of the paper, section by section.

Runs the paper's own worked examples and mini-experiments in order, with
the text's claims checked live.  Think of it as the paper's narrative with
every number recomputed.

Run:  python examples/paper_walkthrough.py
"""

from repro import (
    BasicFXDistribution,
    FileSystem,
    FXDistribution,
    PartialMatchQuery,
    fx_strict_optimal_sufficient,
    is_perfect_optimal,
)
from repro.distribution.modulo import ModuloDistribution
from repro.core.bitops import xor_set, z_m
from repro.core.transforms import make_transform
from repro.experiments.cpu_table import render_cpu_table
from repro.experiments.response_tables import reproduce_table
from repro.util.tables import format_table


def section(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    # ------------------------------------------------------------------
    section("Section 2 - the XOR algebra (Lemma 1.1, Example 2)")
    print("Z_8 [+] 3 =", sorted(xor_set(3, z_m(8))), "== Z_8")

    # ------------------------------------------------------------------
    section("Section 3 - Basic FX (Table 1, Example 1)")
    fs = FileSystem.of(2, 8, m=4)
    basic = BasicFXDistribution(fs)
    rows = [
        [j1, [basic.device_of((j1, j2)) for j2 in range(8)]]
        for j1 in range(2)
    ]
    print(format_table(["J1", "devices for J2 = 0..7"], rows))
    query = PartialMatchQuery.from_dict(fs, {0: 1})
    print(
        f"query {query.describe()}: per-device loads "
        f"{basic.response_histogram(query)} -> strict optimal"
    )

    # ------------------------------------------------------------------
    section("Section 4 - field transformations (Examples 4, 5, 7)")
    print("IU1(f), F=8,  M=16:", make_transform("IU1", 8, 16).image())
    print("IU1(f), F=4,  M=16:", make_transform("IU1", 4, 16).image())
    print("IU2(f), F=2,  M=16:", make_transform("IU2", 2, 16).image())
    fs2 = FileSystem.of(2, 8, m=16)
    print(
        "\nBasic FX on F=(2,8), M=16 perfect optimal?",
        is_perfect_optimal(BasicFXDistribution(fs2)),
    )
    fixed = FXDistribution(fs2, transforms=["U", "I"])
    print(
        "after U-transforming the small field (X(f1) = {0, 8}):",
        is_perfect_optimal(fixed),
    )

    # ------------------------------------------------------------------
    section("Section 4.2 - the consolidated optimality rule")
    fs6 = FileSystem.uniform(6, 8, m=32)
    fx6 = FXDistribution(fs6)  # I,U,IU1 round robin
    examples = [
        frozenset({0}),           # one unspecified (Theorem 1)
        frozenset({0, 1}),        # pair with different methods (Theorem 4)
        frozenset({0, 3}),        # pair sharing the I method: not certified
        frozenset({0, 1, 2, 3}),  # four unspecified, covered by 5(a)
    ]
    rows = [
        [sorted(p), "yes" if fx_strict_optimal_sufficient(fx6, p) else "no"]
        for p in examples
    ]
    print(format_table(["unspecified fields", "certified optimal"], rows))

    # ------------------------------------------------------------------
    section("Section 5.1 - FX vs Modulo optimality (Figure 1 endpoint)")
    from repro.analysis.optim_prob import exact_fraction

    fs_small = FileSystem.uniform(6, 8, m=64)
    print(
        "all six fields small (F=8 < M=64):",
        f"FX {100 * exact_fraction(FXDistribution(fs_small)):.1f}% vs",
        f"Modulo {100 * exact_fraction(ModuloDistribution(fs_small)):.1f}%",
    )

    # ------------------------------------------------------------------
    section("Section 5.2.1 - Table 7 (average largest response size)")
    print(reproduce_table("table7").render())

    # ------------------------------------------------------------------
    section("Section 5.2.2 - CPU cycles (the 'one third of GDM' claim)")
    print(render_cpu_table("mc68000"))

    # ------------------------------------------------------------------
    section("Section 6 - beyond: general linear transforms")
    from repro.core.linear import random_matrix_search
    from repro.distribution.search import exhaustive_assignment_search

    hard = FileSystem.uniform(4, 4, m=32)
    families = exhaustive_assignment_search(hard)
    linear = random_matrix_search(hard, iterations=300, seed=1)
    print(
        f"{hard.describe()}: best of the paper's families "
        f"{100 * families.score:.2f}%, general GF(2) matrices "
        f"{100 * linear.score:.1f}%"
    )


if __name__ == "__main__":
    main()
