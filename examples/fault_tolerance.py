#!/usr/bin/env python3
"""Fault tolerance: chained replication over FX declustering.

Successor work to the paper (chained declustering) adds a backup copy of
every bucket on the next device over.  This example loads a replicated
file, kills a device mid-flight, and shows that (a) every record stays
retrievable, and (b) the failed device's read load lands on exactly one
neighbour instead of a dedicated mirror — the availability/balance
trade-off chained placement is known for.

Run:  python examples/fault_tolerance.py
"""

from repro import FileSystem, FXDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.query.partial_match import PartialMatchQuery
from repro.storage.replicated_file import DataUnavailableError, ReplicatedFile
from repro.util.tables import format_table

FS = FileSystem.of(8, 8, 8, m=8)


def main() -> None:
    rf = ReplicatedFile(ChainedReplicaScheme(FXDistribution(FS)))
    rf.insert_all([(i, i * 3, i * 7) for i in range(800)])
    rf.check_invariants()
    print(
        f"loaded {rf.record_count} logical records "
        f"({sum(d.record_count for d in rf.devices)} physical copies) "
        f"on {FS.m} devices"
    )

    scan = PartialMatchQuery.full_scan(FS)
    healthy = rf.degraded_histogram(scan)

    rf.fail_device(3)
    degraded = rf.degraded_histogram(scan)
    result = rf.execute(scan)
    print(
        f"\ndevice 3 failed: full scan still returns "
        f"{len(result.records)}/{rf.record_count} records "
        f"({result.served_by_backup} buckets served from backups)"
    )
    print(
        format_table(
            ["device", "buckets (healthy)", "buckets (device 3 down)"],
            [[d, healthy[d], degraded[d]] for d in range(FS.m)],
            title="Read-load profile",
        )
    )

    # Non-adjacent double failure still survives; adjacent does not.
    rf.fail_device(6)
    survivors = rf.execute(scan)
    print(
        f"\ndevices 3 and 6 failed (non-adjacent): "
        f"{len(survivors.records)} records still retrievable"
    )
    rf.restore_device(6)
    rf.fail_device(4)  # backup neighbour of the already-failed device 3
    try:
        rf.execute(scan)
    except DataUnavailableError as error:
        print(f"devices 3 and 4 failed (adjacent pair): {error}")


if __name__ == "__main__":
    main()
