#!/usr/bin/env python3
"""Main-memory database on a massively parallel machine (Butterfly-style).

Section 5.2.2's regime: hundreds of processing nodes, data in memory, so
the CPU cost of bucket distribution and inverse mapping dominates response
time.  This example sizes a 512-node machine (the paper's Table 9 file
system), prices address computation with the MC68000 cycle model, and runs
queries under the main-memory cost model.

Run:  python examples/main_memory_mmdb.py
"""

from repro import FileSystem, FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.analysis.cpu_cost import CpuCostModel
from repro.query.partial_match import PartialMatchQuery
from repro.storage.costs import MainMemoryCostModel
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile
from repro.util.tables import format_table

# Table 9's machine: 512 nodes, six hashed fields, all smaller than M.
FS = FileSystem.of(8, 8, 8, 16, 16, 16, m=512)


def main() -> None:
    methods = {
        "FX (I/U/IU2)": FXDistribution(FS, policy="paper", variant="IU2"),
        "GDM1": GDMDistribution.preset(FS, "GDM1"),
        "Modulo": ModuloDistribution(FS),
    }

    # ------------------------------------------------------------------
    # 1. Address computation cycles (the paper's 1/3 claim).
    # ------------------------------------------------------------------
    model = CpuCostModel.for_processor("mc68000")
    rows = [
        [
            name,
            model.address_cycles(method),
            model.inverse_step_cycles(method),
        ]
        for name, method in methods.items()
    ]
    print(
        format_table(
            ["method", "address cycles", "inverse-map cycles/step"],
            rows,
            title="MC68000 cycle counts (XOR 8, ADD 4, AND 4, shift 6+2n, MUL 70)",
        )
    )
    fx_cycles = model.address_cycles(methods["FX (I/U/IU2)"])
    gdm_cycles = model.address_cycles(methods["GDM1"])
    print(
        f"\nFX / GDM = {fx_cycles}/{gdm_cycles} = {fx_cycles / gdm_cycles:.2f} "
        "(the paper: 'about only one third')"
    )

    # ------------------------------------------------------------------
    # 2. Query execution with a per-method main-memory cost model: the
    #    per-bucket CPU price is the method's own inverse-mapping cost.
    # ------------------------------------------------------------------
    print("\nexecuting <*, *, *, J4, J5, J6> on each method...")
    rows = []
    for name, method in methods.items():
        cost = MainMemoryCostModel(
            cycles_per_bucket=float(model.inverse_step_cycles(method)) + 50.0,
            clock_mhz=8.0,
        )
        pf = PartitionedFile(method, cost_model=cost)
        for record_id in range(3000):
            pf.insert(
                (record_id, record_id * 3, record_id * 7,
                 record_id * 11, record_id * 13, record_id * 17)
            )
        query = PartialMatchQuery.from_dict(FS, {3: 5, 4: 9, 5: 2})
        result = QueryExecutor(pf).execute(query)
        rows.append(
            [
                name,
                result.largest_response,
                round(result.response_time_ms, 3),
                "yes" if result.strict_optimal else "no",
            ]
        )
    print(
        format_table(
            ["method", "largest response", "time (ms)", "strict optimal"],
            rows,
            title=f"512-node main-memory execution ({FS.describe()})",
        )
    )


if __name__ == "__main__":
    main()
