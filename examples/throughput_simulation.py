#!/usr/bin/env python3
"""Concurrent workload: declustering quality under queueing.

The paper evaluates one query at a time.  This example pushes a Poisson
stream of partial match queries through the discrete-event simulator and
shows the second-order cost of skew: a hot device delays not just its own
query but everything queued behind it, so FX's balanced loads translate
into lower latency *and* higher sustainable throughput.

Run:  python examples/throughput_simulation.py
"""

from repro import FileSystem, FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.costs import DiskCostModel
from repro.storage.simulator import ParallelQuerySimulator, poisson_arrivals
from repro.util.tables import format_table

FS = FileSystem.of(8, 8, 8, 8, m=16)
DISK = DiskCostModel(seek_ms=28.0, transfer_ms_per_bucket=2.0)


def main() -> None:
    methods = {
        "FX": FXDistribution(FS, policy="paper"),
        "Modulo": ModuloDistribution(FS),
        "GDM1": GDMDistribution.preset(FS, "GDM1"),
    }

    print(f"array: {FS.describe()}, disk model {DISK}")
    for rate in (2.0, 5.0, 10.0):
        rows = []
        for name, method in methods.items():
            workload = QueryWorkload(
                FS,
                WorkloadSpec(spec_probability=0.6, exclude_trivial=True, seed=7),
            )
            arrivals = poisson_arrivals(workload, 200, rate_qps=rate, seed=11)
            report = ParallelQuerySimulator(method, cost_model=DISK).run(arrivals)
            rows.append(
                [
                    name,
                    round(report.mean_latency_ms, 1),
                    round(report.max_latency_ms, 1),
                    round(report.mean_queueing_ms, 1),
                    round(report.throughput_qps, 2),
                    f"{100 * max(report.utilisation()):.0f}%",
                ]
            )
        print()
        print(
            format_table(
                ["method", "mean latency", "max latency",
                 "mean queueing", "throughput q/s", "hottest device"],
                rows,
                title=f"Poisson arrivals at {rate} queries/s (200 queries)",
            )
        )


if __name__ == "__main__":
    main()
