#!/usr/bin/env python3
"""Survey: every declustering method in the library on one small grid.

Runs the full optimality census (every one of the 2^n query patterns,
evaluated exactly) for FX, Modulo, GDM, random placement and the
[FaRC86]-style spanning-path declusterer, then prints the per-method
score board and the worst failures.

Run:  python examples/declustering_comparison.py
"""

from repro import FileSystem
from repro.core.fx import FXDistribution
from repro.core.optimality import optimality_report
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.distribution.spanning import SpanningPathDistribution
from repro.distribution.zorder import ZOrderDistribution
from repro.util.tables import format_table

# Small enough that even the non-separable methods can be censused
# exhaustively: 4 fields, 256 buckets, 8 devices.
FS = FileSystem.of(4, 4, 4, 4, m=8)


def main() -> None:
    methods = {
        "FX (paper policy)": FXDistribution(FS, policy="paper"),
        "FX (theorem9)": FXDistribution(FS, policy="theorem9"),
        "Modulo": ModuloDistribution(FS),
        "GDM (3,5,7,11)": GDMDistribution(FS, multipliers=(3, 5, 7, 11)),
        "Z-order": ZOrderDistribution(FS),
        "Spanning path": SpanningPathDistribution(FS, traversal="path"),
        "Spanning MST": SpanningPathDistribution(FS, traversal="mst"),
        "Random": RandomDistribution(FS, seed=2024),
    }

    rows = []
    reports = {}
    for name, method in methods.items():
        report = optimality_report(method)
        reports[name] = report
        rows.append(
            [
                name,
                f"{report.optimal_patterns}/{report.total_patterns}",
                f"{100 * report.optimal_fraction:.1f}%",
            ]
        )
    print(
        format_table(
            ["method", "optimal patterns", "fraction"],
            rows,
            title=f"Strict-optimality census on {FS.describe()}",
        )
    )

    print("\nworst failures per method (pattern, observed max, allowed max):")
    for name, report in reports.items():
        if not report.failures:
            print(f"  {name}: none - perfect optimal")
            continue
        pattern, worst, bound = report.failures[0]
        print(
            f"  {name}: unspecified {sorted(pattern)} -> "
            f"{worst} buckets on one device (allowed {bound})"
        )


if __name__ == "__main__":
    main()
