#!/usr/bin/env python3
"""Dynamic file growth: directory doubling under FX redistribution.

The paper's power-of-two field sizes come from dynamic/extendible hashing
directories that double as the file grows.  This example grows a file from
a 2x2 grid to thousands of buckets, watching (a) how FX keeps devices
balanced at every size, and (b) how few records each doubling actually
moves between devices.

Run:  python examples/dynamic_growth.py
"""

from repro.hashing.fields import FileSystem
from repro.storage.dynamic_file import DynamicPartitionedFile
from repro.util.tables import format_table


def main() -> None:
    dyn = DynamicPartitionedFile(
        FileSystem.of(2, 2, 2, m=8),
        max_occupancy=3.0,
        seed=42,
    )
    checkpoints = (100, 500, 2000, 8000)
    rows = []
    inserted = 0
    for target in checkpoints:
        while inserted < target:
            dyn.insert((inserted, inserted * 31, inserted * 101))
            inserted += 1
        loads = dyn.device_loads()
        mean = sum(loads) / len(loads)
        rows.append(
            [
                inserted,
                dyn.filesystem.describe(),
                round(dyn.occupancy(), 2),
                round(max(loads) / mean, 2),
            ]
        )
    print(
        format_table(
            ["records", "directory shape", "occupancy", "max/mean device load"],
            rows,
            title="Growth trajectory (threshold: 3 records/bucket)",
        )
    )

    print("\ndirectory doublings:")
    print(
        format_table(
            ["field", "size change", "records moved", "moved %"],
            [
                [
                    event.field_index,
                    f"{event.old_size} -> {event.new_size}",
                    event.records_moved,
                    f"{100 * event.moved_fraction:.1f}%",
                ]
                for event in dyn.doublings
            ],
        )
    )

    # Retrieval stays correct across all that reorganisation.
    sample = [(i, i * 31, i * 101) for i in (1, 777, 4242, 7999)]
    assert all(record in dyn.search({0: record[0]}) for record in sample)
    print("\nspot-checked retrieval after growth: OK")


if __name__ == "__main__":
    main()
