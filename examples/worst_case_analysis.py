#!/usr/bin/env python3
"""Worst-case analysis: certify a deployment before trusting it.

Averages are not a guarantee.  This example takes one configuration and
asks the sharp questions: which query pattern is worst, which *range box*
an adversary would pick, and whether the library's independent exact
engines agree on every answer.

Run:  python examples/worst_case_analysis.py
"""

from repro import FileSystem, FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.analysis.adversary import worst_box_search
from repro.core.optimality import optimality_report
from repro.distribution.zorder import ZOrderDistribution
from repro.experiments.verification import verify_method
from repro.util.tables import format_table

FS = FileSystem.of(16, 16, 4, m=8)


def main() -> None:
    methods = {
        "FX (theorem9)": FXDistribution(FS, policy="theorem9"),
        "Modulo": ModuloDistribution(FS),
        "Z-order": ZOrderDistribution(FS),
    }

    # ------------------------------------------------------------------
    # 1. Worst partial match pattern (exhaustive census).
    # ------------------------------------------------------------------
    rows = []
    for name, method in methods.items():
        report = optimality_report(method)
        if report.failures:
            pattern, worst, bound = report.failures[0]
            detail = f"unspecified {sorted(pattern)}: {worst} vs {bound}"
        else:
            detail = "none - perfect optimal"
        rows.append([name, f"{100 * report.optimal_fraction:.1f}%", detail])
    print(
        format_table(
            ["method", "optimal patterns", "worst pattern"],
            rows,
            title=f"Partial match census on {FS.describe()}",
        )
    )

    # ------------------------------------------------------------------
    # 2. Worst range box (adversarial search).
    # ------------------------------------------------------------------
    rows = []
    for name, method in methods.items():
        result = worst_box_search(method, restarts=5, seed=3)
        rows.append(
            [name, round(result.factor, 2), result.box.describe(),
             result.evaluations]
        )
    print()
    print(
        format_table(
            ["method", "worst load factor", "adversarial box", "evals"],
            rows,
            title="Adversarial range boxes (1.0 = never worse than optimal)",
        )
    )

    # ------------------------------------------------------------------
    # 3. Cross-engine certification of the winner.
    # ------------------------------------------------------------------
    print()
    print(verify_method(methods["FX (theorem9)"]).summary())


if __name__ == "__main__":
    main()
