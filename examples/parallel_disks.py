#!/usr/bin/env python3
"""Parallel disks: a parts catalog declustered over a disk array.

The scenario the paper's introduction motivates: a record file hashed on
several attributes, spread over parallel disks so that partial match
queries (e.g. "all records with supplier = S and colour = red") read from
every disk at once.  Compares FX against Modulo and GDM on realistic disk
timings, per query class.

Run:  python examples/parallel_disks.py
"""

from repro import FileSystem, FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.costs import DiskCostModel
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile
from repro.util.tables import format_table

# Catalog schema: (part_id, supplier, colour, warehouse).
# Field sizes reflect attribute cardinalities after hashing; the array has
# 16 disks, so supplier/colour/warehouse are all "small" fields (F < M).
FS = FileSystem.of(64, 8, 4, 8, m=16)

SUPPLIERS = [f"supplier-{i}" for i in range(40)]
COLOURS = ["red", "green", "blue", "black", "white", "grey"]
WAREHOUSES = [f"wh-{i}" for i in range(12)]


def build_catalog(method) -> PartitionedFile:
    pf = PartitionedFile(
        method, cost_model=DiskCostModel(seek_ms=28.0, transfer_ms_per_bucket=2.0)
    )
    for part_id in range(5000):
        pf.insert(
            (
                part_id,
                SUPPLIERS[part_id % len(SUPPLIERS)],
                COLOURS[(part_id * 7) % len(COLOURS)],
                WAREHOUSES[(part_id * 13) % len(WAREHOUSES)],
            )
        )
    return pf


def main() -> None:
    methods = {
        "FX": FXDistribution(FS, policy="theorem9"),
        "Modulo": ModuloDistribution(FS),
        "GDM(2,3,5,7)": GDMDistribution(FS, multipliers=(2, 3, 5, 7)),
    }
    files = {name: build_catalog(method) for name, method in methods.items()}
    print(f"catalog: {FS.describe()}, {files['FX'].record_count} records/method")

    # Three realistic query classes, by what the user pins down.
    query_classes = {
        "supplier + colour": {1: "supplier-7", 2: "red"},
        "colour only": {2: "blue"},
        "warehouse only": {3: "wh-3"},
    }

    rows = []
    for label, specified in query_classes.items():
        row = [label]
        for name, pf in files.items():
            result = QueryExecutor(pf).execute(pf.query(specified))
            row.append(round(result.response_time_ms, 1))
        rows.append(row)
    print()
    print(
        format_table(
            ["query class", *files.keys()],
            rows,
            title="Modelled response time (ms) on a 16-disk array",
        )
    )

    # A randomized mixed workload, reporting average largest response size
    # (the paper's section 5.2.1 metric).
    workload = QueryWorkload(
        FS, WorkloadSpec(spec_probability=0.5, exclude_trivial=True, seed=42)
    )
    queries = workload.take(300)
    rows = []
    for name, method in methods.items():
        average = sum(method.largest_response(q) for q in queries) / len(queries)
        optimal_hits = sum(method.is_strict_optimal_for(q) for q in queries)
        rows.append([name, round(average, 2), f"{100 * optimal_hits / len(queries):.0f}%"])
    print()
    print(
        format_table(
            ["method", "avg largest response", "strict optimal queries"],
            rows,
            title="Random workload (300 queries, p = 0.5)",
        )
    )


if __name__ == "__main__":
    main()
