"""Throughput of the serving tier, with and without request coalescing.

The front end (``repro.service``) promises that duplicate concurrent
queries share one device round-trip.  This benchmark measures what that
buys: closed-loop throughput at 2–16 client threads over a hot-skewed
workload, served twice — coalescing on and off — against identically
loaded files.  Every run also re-proves the correctness contract: the
request log replays serially with zero mismatches.

Two entry points:

* pytest-benchmark functions (collected with the other ``bench_*`` files)
  timing one coalesced multi-client load, and
* a script mode — ``python benchmarks/bench_service.py [--smoke]
  [--out BENCH_service.json]`` — that writes per-thread-count throughput,
  latency percentiles, and the device bucket-read totals to JSON,
  asserting that coalescing strictly reduces leader fetches whenever any
  request coalesced.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import obs
from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.service import LoadGenerator, LoadSpec, QueryService, ServiceConfig
from repro.storage.bucket_store import BucketStore
from repro.storage.parallel_file import PartitionedFile

FULL_CLIENTS = (2, 4, 8, 16)
SMOKE_CLIENTS = (2, 4)

FIELDS = (8, 8)
DEVICES = 8


class _SlowStore(BucketStore):
    """Small fixed per-bucket read delay, so concurrent duplicate queries
    actually overlap in flight (pure in-memory reads finish too fast to
    ever coalesce)."""

    delay_s = 0.0005

    def records_in(self, bucket):
        time.sleep(self.delay_s)
        return super().records_in(bucket)


def _service(coalesce: bool, clients: int) -> tuple[QueryService, list]:
    pf = PartitionedFile(FXDistribution(FileSystem.of(*FIELDS, m=DEVICES)),
                         store_factory=_SlowStore)
    records = [(i % 13, i % 7) for i in range(256)]
    pf.insert_all(records)
    config = ServiceConfig(
        max_concurrent=max(16, clients),
        queue_limit=4 * clients,
        cache_capacity=None,  # isolate coalescing from result caching
        coalesce=coalesce,
    )
    return QueryService(pf, config), records


def _spec(clients: int, requests: int) -> LoadSpec:
    return LoadSpec(
        clients=clients,
        requests_per_client=requests,
        seed=17,
        hot_fraction=0.8,  # duplicate-heavy: the traffic coalescing serves
        hot_pool=3,
    )


def _bucket_reads(service: QueryService) -> int:
    return sum(device.stats.bucket_reads for device in service.file.devices)


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_coalesced_hot_load(benchmark):
    obs.configure(enabled=True, reset=True)

    def run():
        service, __ = _service(coalesce=True, clients=4)
        report = LoadGenerator(service, _spec(clients=4, requests=25)).run()
        assert report.errors == []
        return report

    report = benchmark(run)
    assert report.status_counts().get("ok") == 100


def bench_uncoalesced_hot_load(benchmark):
    obs.configure(enabled=True, reset=True)

    def run():
        service, __ = _service(coalesce=False, clients=4)
        report = LoadGenerator(service, _spec(clients=4, requests=25)).run()
        assert report.errors == []
        return report

    report = benchmark(run)
    assert report.status_counts().get("ok") == 100


# ----------------------------------------------------------------------
# Script mode: write BENCH_service.json
# ----------------------------------------------------------------------
def _measure(clients: int, requests: int) -> dict:
    row: dict = {"clients": clients, "requests_per_client": requests}
    for label, coalesce in (("coalesced", True), ("uncoalesced", False)):
        obs.reset_telemetry()
        service, preloaded = _service(coalesce, clients)
        report = LoadGenerator(service, _spec(clients, requests)).run()
        assert report.errors == [], report.errors
        mismatches = report.verify(service.file.multikey_hash,
                                   initial_records=preloaded)
        assert mismatches == [], mismatches
        counters = obs.telemetry().metrics.snapshot().counters
        row[label] = {
            "throughput_qps": round(report.throughput_qps, 1),
            "p50_ms": round(report.latency_percentile(0.50), 4),
            "p99_ms": round(report.latency_percentile(0.99), 4),
            "coalesced_requests": report.coalesced,
            "leader_fetches": counters.get("service.leader_fetches", 0),
            "bucket_reads": _bucket_reads(service),
        }
    coalesced, uncoalesced = row["coalesced"], row["uncoalesced"]
    if coalesced["coalesced_requests"] > 0:
        assert (
            coalesced["leader_fetches"] < uncoalesced["leader_fetches"]
        ), "coalescing must reduce device round-trips when requests share"
    row["speedup"] = round(
        coalesced["throughput_qps"] / max(uncoalesced["throughput_qps"], 1e-9),
        3,
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer thread counts and requests for CI; same code paths",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 50; smoke 15)")
    args = parser.parse_args(argv)

    client_counts = SMOKE_CLIENTS if args.smoke else FULL_CLIENTS
    requests = args.requests or (15 if args.smoke else 50)
    result = {
        "mode": "smoke" if args.smoke else "full",
        "fields": list(FIELDS),
        "devices": DEVICES,
        "sweep": [_measure(clients, requests) for clients in client_counts],
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for row in result["sweep"]:
        print(
            f"{row['clients']:>3} clients: "
            f"{row['coalesced']['throughput_qps']:>8,.1f} qps coalesced "
            f"({row['coalesced']['coalesced_requests']} shared) vs "
            f"{row['uncoalesced']['throughput_qps']:>8,.1f} qps uncoalesced "
            f"-> x{row['speedup']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
