"""Cost of durability: WAL replay recovery time and scrub throughput.

The durability layer (``repro.durability``) adds three recurring costs to
a deployment: framing every mutation into the write-ahead log, replaying
that log after a crash, and the background scrub that verifies every page
checksum.  This benchmark measures all three against file size.

Two entry points:

* pytest-benchmark functions (collected with the other ``bench_*`` files)
  timing one crash-recovery replay and one full scrub sweep, and
* a script mode — ``python benchmarks/bench_recovery.py [--smoke]
  [--out BENCH_recovery.json]`` — that writes recovery time, replay rate
  and scrub page throughput per file size to JSON, asserting on every
  size that the recovered digest is byte-identical to the fault-free run
  (the same acceptance property ``tests/test_durability.py`` proves at
  every boundary).
"""

from __future__ import annotations

import argparse
import json
import time

from repro import obs
from repro.api import make_durable_file
from repro.durability import Scrubber, recover
from repro.errors import SimulatedCrashError
from repro.runtime import FaultInjector, FaultPlan

#: Per-mode record counts: replay time scales linearly in WAL entries,
#: scrub time in resident pages, so a small sweep is representative.
FULL_SIZES = (500, 2000, 8000)
SMOKE_SIZES = (100, 400)

FIELDS = (8, 8)
DEVICES = 8


def _records(count: int) -> list[tuple[int, int]]:
    return [(i % 8, (i // 8) % 8) for i in range(count)]


def _crashed_wal(records, boundary: int):
    durable = make_durable_file(
        "fx", fields=FIELDS, devices=DEVICES, crash_after=boundary,
        torn_tail=True,
    )
    try:
        durable.insert_all(records)
    except SimulatedCrashError:
        pass
    return durable.wal


def _fresh():
    return make_durable_file("fx", fields=FIELDS, devices=DEVICES)


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_wal_replay_recovery(benchmark):
    records = _records(400)
    wal_bytes = _crashed_wal(records, len(records)).to_bytes()

    def replay():
        return recover(wal_bytes, _fresh().file).entries_replayed

    obs.configure(enabled=True, reset=True)
    assert benchmark(replay) == len(records)


def bench_scrub_sweep_clean(benchmark):
    durable = _fresh()
    durable.insert_all(_records(400))
    scrubber = Scrubber(durable.file)
    obs.configure(enabled=True, reset=True)
    report = benchmark(scrubber.sweep)
    assert report.clean


# ----------------------------------------------------------------------
# Script mode: write BENCH_recovery.json
# ----------------------------------------------------------------------
def _measure_size(count: int, repeats: int) -> dict:
    records = _records(count)

    baseline = _fresh()
    baseline.insert_all(records)
    expected_digest = baseline.state_digest()

    # Crash at the end of the workload: the replay covers every entry.
    wal_bytes = _crashed_wal(records, count).to_bytes()
    replay_best = float("inf")
    for __ in range(repeats):
        fresh = _fresh()
        started = time.perf_counter()
        report = recover(wal_bytes, fresh.file)
        replay_best = min(replay_best, time.perf_counter() - started)
        assert report.entries_replayed == count
        assert fresh.state_digest() == expected_digest, (
            "recovery must be byte-identical to the fault-free run"
        )

    # Scrub a file with seeded corruption: detect + repair, then verify.
    scrub_best = float("inf")
    pages = bad = 0
    for __ in range(repeats):
        durable = _fresh()
        durable.insert_all(records)
        scrubber = Scrubber(durable.file)
        scrubber.inject(FaultInjector(FaultPlan.corrupt(0.05, seed=9), DEVICES))
        started = time.perf_counter()
        report = scrubber.sweep()
        scrub_best = min(scrub_best, time.perf_counter() - started)
        pages, bad = report.pages_checked, report.bad_pages
        assert report.healed, "every injected fault must be repairable"
        assert durable.state_digest() == expected_digest

    return {
        "records": count,
        "replay_seconds": replay_best,
        "replay_entries_per_sec": count / replay_best,
        "scrub_seconds": scrub_best,
        "scrub_pages_checked": pages,
        "scrub_bad_pages": bad,
        "scrub_pages_per_sec": pages / scrub_best,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI; same code paths and identity checks",
    )
    parser.add_argument("--out", default="BENCH_recovery.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    result = {
        "mode": "smoke" if args.smoke else "full",
        "fields": list(FIELDS),
        "devices": DEVICES,
        "sizes": [
            _measure_size(count, max(1, args.repeats)) for count in sizes
        ],
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for row in result["sizes"]:
        print(
            f"{row['records']:>6} records: replay "
            f"{row['replay_entries_per_sec']:,.0f} entries/s, scrub "
            f"{row['scrub_pages_per_sec']:,.0f} pages/s "
            f"({row['scrub_bad_pages']} repaired)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
