"""Throughput of the array-native batch engine vs per-query execution.

The engine (``repro.engine``) plans a whole batch of partial match
queries in one NumPy pass — per-query specified folds gathered through
the contribution tables, one ``searchsorted`` pair inverting the solve
field for every (query, device, combination) cell — and then touches
each present (device, bucket) pair once for the whole batch.  The serial
:class:`~repro.storage.executor.QueryExecutor` pays a Python-level
inverse-mapping loop and a full bucket scan per query.

This benchmark measures that gap at the acceptance scale — 2^18 buckets
(fields 64x64x64 on 16 devices) with batch sizes 16/64/256 — and
re-proves the contract while timing: every batched
:class:`~repro.storage.executor.ExecutionResult` is byte-identical to
the serial one (records, per-device counts, modelled times; only the
``mode`` provenance marker differs).  A second sweep runs the same
batches over the zero-copy :class:`~repro.durability.checksummed_store.
PackedChecksummedStore`, so the CRC-verified read path is covered by the
same identity assertion.

Two entry points:

* pytest-benchmark functions (collected with the other ``bench_*``
  files) timing one mid-sized batch, and
* a script mode — ``python benchmarks/bench_batchexec.py [--smoke]
  [--out BENCH_batchexec.json]`` — that writes the per-batch-size
  speedup sweep to JSON and asserts the >= 10x acceptance threshold
  (full mode only; smoke keeps the same code paths at toy scale).
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro import BatchEngine, make_method
from repro.durability.checksummed_store import PackedChecksummedStore
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile

FULL_FIELDS = (64, 64, 64)  # 2^18 buckets
FULL_DEVICES = 16
FULL_BATCH_SIZES = (16, 64, 256)
FULL_RECORDS = 2048

SMOKE_FIELDS = (8, 8, 8)
SMOKE_DEVICES = 8
SMOKE_BATCH_SIZES = (8, 16)
SMOKE_RECORDS = 256


def _loaded_file(fields, devices, records, seed, store_factory=None):
    method = make_method("fx", fields=fields, devices=devices)
    pf = (
        PartitionedFile(method, store_factory=store_factory)
        if store_factory is not None
        else PartitionedFile(method)
    )
    rng = random.Random(seed)
    pf.insert_all(
        [
            tuple(rng.randrange(size) for size in fields)
            for __ in range(records)
        ]
    )
    return pf


def _query_batch(pf, size, seed):
    """Mixed batch of heavy partial-match queries: 1–2 specified fields
    (the regime batching targets — light exact-match lookups are cheap
    either way), with ~10% duplicates as a realistic workload would have.
    """
    fields = pf.filesystem.field_sizes
    rng = random.Random(seed)
    queries = []
    for index in range(size):
        if queries and rng.random() < 0.1:
            queries.append(rng.choice(queries))
            continue
        n_spec = rng.choice((1, 1, 2))
        chosen = rng.sample(range(len(fields)), n_spec)
        queries.append(
            pf.query({i: rng.randrange(fields[i]) for i in chosen})
        )
    return queries


def assert_byte_identical(batched, serial):
    assert batched.records == serial.records
    assert batched.buckets_per_device == serial.buckets_per_device
    assert batched.response_time_ms == serial.response_time_ms
    assert batched.total_service_ms == serial.total_service_ms
    b, s = batched.to_dict(), serial.to_dict()
    b.pop("mode"), s.pop("mode")
    assert b == s


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_batched_engine_64(benchmark):
    pf = _loaded_file(SMOKE_FIELDS, SMOKE_DEVICES, SMOKE_RECORDS, seed=1)
    queries = _query_batch(pf, 64, seed=2)
    engine = BatchEngine(pf)
    report = benchmark(lambda: engine.execute(queries))
    assert len(report.results) == 64


def bench_serial_executor_64(benchmark):
    pf = _loaded_file(SMOKE_FIELDS, SMOKE_DEVICES, SMOKE_RECORDS, seed=1)
    queries = _query_batch(pf, 64, seed=2)
    executor = QueryExecutor(pf)
    results = benchmark(
        lambda: [executor.execute(query) for query in queries]
    )
    assert len(results) == 64


# ----------------------------------------------------------------------
# Script mode: write BENCH_batchexec.json
# ----------------------------------------------------------------------
def _measure(pf, packed, batch_size, seed) -> dict:
    queries = _query_batch(pf, batch_size, seed)
    serial = QueryExecutor(pf)
    engine = BatchEngine(pf)

    serial_s = float("inf")
    for __ in range(3):  # best-of-3 on both sides to tame timer noise
        started = time.perf_counter()
        serial_results = [serial.execute(query) for query in queries]
        serial_s = min(serial_s, time.perf_counter() - started)

    engine.execute(queries)  # warm present-set and solve-lookup caches
    batched_s = float("inf")
    for __ in range(3):
        started = time.perf_counter()
        report = engine.execute(queries)
        batched_s = min(batched_s, time.perf_counter() - started)

    for batched_result, serial_result in zip(report.results, serial_results):
        assert_byte_identical(batched_result, serial_result)

    # Same batch through the CRC-verified zero-copy store: identity again.
    packed_serial = QueryExecutor(packed)
    packed_queries = [
        packed.query(
            {
                i: value
                for i, value in enumerate(query.values)
                if value is not None
            }
        )
        for query in queries
    ]
    started = time.perf_counter()
    packed_report = BatchEngine(packed).execute(packed_queries)
    packed_s = time.perf_counter() - started
    for batched_result, query in zip(packed_report.results, packed_queries):
        assert_byte_identical(batched_result, packed_serial.execute(query))

    return {
        "batch_size": batch_size,
        "serial_qps": round(batch_size / serial_s, 1),
        "batched_qps": round(batch_size / batched_s, 1),
        "speedup": round(serial_s / batched_s, 2),
        "packed_crc_qps": round(batch_size / packed_s, 1),
        "planned_reads": report.planned_reads,
        "unique_reads": report.unique_reads,
        "sharing_factor": round(report.sharing_factor, 3),
        "duplicates_removed": report.duplicates_removed,
        "byte_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="toy filesystem for CI; same code paths, no 10x assertion",
    )
    parser.add_argument("--out", default="BENCH_batchexec.json")
    args = parser.parse_args(argv)

    if args.smoke:
        fields, devices = SMOKE_FIELDS, SMOKE_DEVICES
        batch_sizes, records = SMOKE_BATCH_SIZES, SMOKE_RECORDS
    else:
        fields, devices = FULL_FIELDS, FULL_DEVICES
        batch_sizes, records = FULL_BATCH_SIZES, FULL_RECORDS

    pf = _loaded_file(fields, devices, records, seed=1)
    packed = _loaded_file(
        fields, devices, records, seed=1,
        store_factory=PackedChecksummedStore,
    )
    bucket_count = 1
    for size in fields:
        bucket_count *= size
    result = {
        "mode": "smoke" if args.smoke else "full",
        "fields": list(fields),
        "devices": devices,
        "bucket_count": bucket_count,
        "records": records,
        "sweep": [
            _measure(pf, packed, batch_size, seed=100 + batch_size)
            for batch_size in batch_sizes
        ],
    }
    if not args.smoke:
        for row in result["sweep"]:
            assert row["speedup"] >= 10.0, (
                f"batch size {row['batch_size']}: speedup {row['speedup']}x "
                "below the 10x acceptance threshold"
            )
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for row in result["sweep"]:
        print(
            f"batch {row['batch_size']:>4}: "
            f"{row['batched_qps']:>10,.1f} q/s batched vs "
            f"{row['serial_qps']:>8,.1f} q/s serial -> x{row['speedup']} "
            f"(packed+CRC {row['packed_crc_qps']:,.1f} q/s, "
            f"sharing x{row['sharing_factor']})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
