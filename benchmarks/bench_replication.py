"""Extension benchmark: degraded-mode load under chained replication.

Measures execution with one failed device: chained placement should push
the failed device's share onto exactly one neighbour (load factor ~2x),
never onto a single full mirror of the whole array.
"""

from repro.core.fx import FXDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.replicated_file import ReplicatedFile
from repro.util.tables import format_table

FS = FileSystem.of(8, 8, 8, m=8)


def _loaded():
    rf = ReplicatedFile(ChainedReplicaScheme(FXDistribution(FS)))
    rf.insert_all([(i, i * 3, i * 7) for i in range(500)])
    return rf


def bench_degraded_execution(benchmark, show):
    rf = _loaded()
    rf.fail_device(3)
    query = PartialMatchQuery.full_scan(FS)
    result = benchmark(rf.execute, query)
    histogram = rf.degraded_histogram(query)
    assert histogram[3] == 0
    ideal = FS.bucket_count / FS.m
    # neighbour absorbs the failed share; everyone else stays at ideal
    assert histogram[4] == 2 * ideal
    assert all(h == ideal for i, h in enumerate(histogram) if i not in (3, 4))
    assert len(result.records) == 500
    show(
        format_table(
            ["device", "buckets served (device 3 failed)"],
            list(enumerate(histogram)),
            title=f"Degraded load on {FS.describe()}",
        )
    )


def bench_healthy_execution(benchmark):
    rf = _loaded()
    query = PartialMatchQuery.full_scan(FS)
    result = benchmark(rf.execute, query)
    assert result.served_by_backup == 0
