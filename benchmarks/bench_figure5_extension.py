""""Figure 5" (extension): searched linear transforms on the Figure 3 sweep.

Adds a third curve to the paper's FD/MD comparison: FX with GF(2)-linear
transforms found by random search.  The searched curve dominates the
published policy at every x — evidence for the section 6 conjecture that
more general transformations widen the optimal query class.
"""

from repro.experiments.figures import extension_figure


def bench_extension_figure(benchmark, show):
    series = benchmark(extension_figure, "figure3")
    fd = series.series["FD (FX)"]
    ld = series.series["LD (linear, searched)"]
    assert all(l >= f - 1e-9 for f, l in zip(fd, ld))   # LD dominates FD
    assert ld[4] == 100.0 and fd[4] < 100.0            # perfect one x further
    assert ld[-1] > fd[-1] + 5.0                        # clear gap at x = 6
    show(series.render())
