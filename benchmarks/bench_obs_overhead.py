"""Instrumentation overhead of the telemetry layer on the hot query path.

The observability subsystem (``repro.obs``) wraps the vectorised query
executor in spans and histogram observations.  This benchmark measures how
much that costs: it streams the same workload through
:class:`~repro.storage.executor.QueryExecutor` with telemetry enabled and
disabled and compares the best-of-N wall times.

Two entry points:

* pytest-benchmark functions (collected with the other ``bench_*`` files)
  timing the executor sweep under both telemetry settings, and
* a script mode — ``python benchmarks/bench_obs_overhead.py [--smoke]
  [--out BENCH_obs.json]`` — that writes the measured overhead to JSON.
  Full mode asserts the acceptance floor: enabling telemetry must cost
  < 5% on the vectorised engine path.  ``--smoke`` runs a smaller grid for
  CI and only checks that both paths execute and agree, because tiny
  absolute times make percentage overhead meaningless on shared runners.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import obs
from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile

#: Full mode: 8^5 buckets over 32 devices, enough work per query for the
#: per-span cost to be measured against real engine time.
FULL_FS = FileSystem.uniform(5, 8, m=32)
FULL_QUERIES = 400
#: Smoke mode: small grid, same code paths, fast enough for a CI step.
SMOKE_FS = FileSystem.uniform(3, 4, m=8)
SMOKE_QUERIES = 60

BENCH_FS = FileSystem.uniform(4, 8, m=16)


def _build(fs: FileSystem, n_queries: int):
    method = FXDistribution(fs)
    pf = PartitionedFile(method)
    workload = QueryWorkload(
        fs, WorkloadSpec(spec_probability=0.5, exclude_trivial=True, seed=7)
    )
    return QueryExecutor(pf), workload.take(n_queries)


def _sweep(executor: QueryExecutor, queries) -> int:
    total = 0
    for query in queries:
        total += executor.execute(query).largest_response
    return total


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_executor_telemetry_on(benchmark):
    executor, queries = _build(BENCH_FS, 50)
    obs.configure(enabled=True, reset=True)
    total = benchmark(_sweep, executor, queries)
    assert total > 0


def bench_executor_telemetry_off(benchmark):
    executor, queries = _build(BENCH_FS, 50)
    obs.configure(enabled=True, reset=True)
    try:
        obs.configure(enabled=False)
        total = benchmark(_sweep, executor, queries)
    finally:
        obs.configure(enabled=True)
    assert total > 0


# ----------------------------------------------------------------------
# Script mode: write BENCH_obs.json
# ----------------------------------------------------------------------
def _time_sweep(executor, queries, repeats: int) -> tuple[float, int]:
    best = float("inf")
    total = 0
    for __ in range(repeats):
        obs.reset_telemetry()
        started = time.perf_counter()
        total = _sweep(executor, queries)
        best = min(best, time.perf_counter() - started)
    return best, total


def _measure(fs: FileSystem, n_queries: int, repeats: int) -> dict:
    executor, queries = _build(fs, n_queries)
    # Warm the evaluator/inverse caches so both runs hit the same fast path.
    _sweep(executor, queries)

    obs.configure(enabled=False)
    try:
        off_seconds, off_total = _time_sweep(executor, queries, repeats)
    finally:
        obs.configure(enabled=True)
    on_seconds, on_total = _time_sweep(executor, queries, repeats)
    assert on_total == off_total, "telemetry changed query results"

    overhead = on_seconds / off_seconds - 1.0
    return {
        "filesystem": fs.describe(),
        "bucket_count": fs.bucket_count,
        "queries": n_queries,
        "repeats": repeats,
        "disabled_seconds": off_seconds,
        "enabled_seconds": on_seconds,
        "disabled_queries_per_sec": n_queries / off_seconds,
        "enabled_queries_per_sec": n_queries / on_seconds,
        "overhead_fraction": overhead,
        "overhead_percent": overhead * 100.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid for CI (correctness gate, no overhead floor)",
    )
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    fs = SMOKE_FS if args.smoke else FULL_FS
    n_queries = SMOKE_QUERIES if args.smoke else FULL_QUERIES
    result = _measure(fs, n_queries, max(1, args.repeats))
    result["mode"] = "smoke" if args.smoke else "full"
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(
        f"{result['mode']}: {result['queries']} queries on "
        f"{result['filesystem']}; disabled "
        f"{result['disabled_queries_per_sec']:,.0f}/s, enabled "
        f"{result['enabled_queries_per_sec']:,.0f}/s, overhead "
        f"{result['overhead_percent']:+.2f}% -> {args.out}"
    )
    if not args.smoke and result["overhead_fraction"] >= 0.05:
        print("FAIL: telemetry overhead above the 5% acceptance ceiling")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
