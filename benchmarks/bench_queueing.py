"""Extension benchmark: latency under a concurrent query stream.

Beyond the paper's one-query-at-a-time analysis: a Poisson stream through
the discrete-event simulator shows skew's queueing cost.  FX's mean latency
must not exceed Modulo's on the same arrival sequence.
"""

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.costs import DiskCostModel
from repro.storage.simulator import ParallelQuerySimulator, poisson_arrivals
from repro.util.tables import format_table

FS = FileSystem.of(8, 8, 8, 8, m=16)


def _arrivals():
    workload = QueryWorkload(
        FS, WorkloadSpec(spec_probability=0.6, exclude_trivial=True, seed=7)
    )
    return poisson_arrivals(workload, 150, rate_qps=8.0, seed=11)


def bench_fx_under_load(benchmark, show):
    arrivals = _arrivals()
    fx_sim = ParallelQuerySimulator(
        FXDistribution(FS), cost_model=DiskCostModel()
    )
    fx_report = benchmark(fx_sim.run, arrivals)
    modulo_report = ParallelQuerySimulator(
        ModuloDistribution(FS), cost_model=DiskCostModel()
    ).run(arrivals)
    assert fx_report.mean_latency_ms <= modulo_report.mean_latency_ms
    show(
        format_table(
            ["method", "mean latency (ms)", "mean queueing (ms)"],
            [
                ["FX", round(fx_report.mean_latency_ms, 1),
                 round(fx_report.mean_queueing_ms, 1)],
                ["Modulo", round(modulo_report.mean_latency_ms, 1),
                 round(modulo_report.mean_queueing_ms, 1)],
            ],
            title=f"150 queries at 8 q/s on {FS.describe()}",
        )
    )


def bench_modulo_under_load(benchmark):
    arrivals = _arrivals()
    sim = ParallelQuerySimulator(
        ModuloDistribution(FS), cost_model=DiskCostModel()
    )
    report = benchmark(sim.run, arrivals)
    assert len(report.queries) == 150
