"""Extension benchmark: shared bucket reads across a query batch.

A batch of overlapping partial match queries deduplicates device reads;
the sharing factor quantifies the saving versus query-at-a-time execution.
"""

from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.batch import BatchExecutor
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(8, 8, 8, m=8)


def _setup():
    pf = PartitionedFile(FXDistribution(FS))
    pf.insert_all([(i, i * 5, i * 11) for i in range(300)])
    workload = QueryWorkload(
        FS, WorkloadSpec(spec_probability=0.5, exclude_trivial=True, seed=3)
    )
    return pf, workload.take(24)


def bench_batched_execution(benchmark, show):
    pf, queries = _setup()
    executor = BatchExecutor(pf)
    report = benchmark(executor.execute, queries)
    assert report.sharing_factor > 1.0
    show(
        f"batch of {len(queries)} queries: {report.naive_bucket_reads} naive"
        f" reads -> {report.bucket_reads} deduplicated"
        f" (sharing factor {report.sharing_factor:.2f}x)"
    )


def bench_query_at_a_time(benchmark):
    from repro.storage.executor import QueryExecutor

    pf, queries = _setup()
    executor = QueryExecutor(pf)

    def run():
        return [executor.execute(q) for q in queries]

    results = benchmark(run)
    assert len(results) == len(queries)
