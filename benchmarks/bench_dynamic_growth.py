"""Extension benchmark: dynamic directory doubling under load.

Grows a file from a tiny grid to thousands of buckets and accounts the
reorganisation cost: with FX on identity-only (large) fields, doublings
past F >= M move zero records, because the extra directory bit is
truncated by T_M.
"""

from repro.hashing.fields import FileSystem
from repro.storage.dynamic_file import DynamicPartitionedFile
from repro.util.tables import format_table


def _grow():
    dyn = DynamicPartitionedFile(
        FileSystem.of(2, 2, m=8), max_occupancy=3.0, seed=42
    )
    dyn.insert_all([(i, i * 31) for i in range(3000)])
    return dyn


def bench_growth_run(benchmark, show):
    dyn = benchmark(_grow)
    assert dyn.record_count == 3000
    loads = dyn.device_loads()
    mean = sum(loads) / len(loads)
    assert max(loads) < 1.4 * mean
    # once both fields reach F >= M, further splits are free under FX
    late = [e for e in dyn.doublings if e.old_size >= dyn.filesystem.m]
    assert late and all(e.records_moved == 0 for e in late)
    show(
        format_table(
            ["field", "size change", "moved", "moved %"],
            [
                [e.field_index, f"{e.old_size}->{e.new_size}",
                 e.records_moved, f"{100 * e.moved_fraction:.1f}%"]
                for e in dyn.doublings
            ],
            title=f"Doublings while growing to {dyn.filesystem.describe()}",
        )
    )
