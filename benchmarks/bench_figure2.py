"""Figure 2: % strict-optimal queries, n = 10, pairwise FpFq >= M, I/U/IU1.

Ten fields: 1024 query patterns per point, eleven points per curve, all
evaluated exactly.  FX stays above 98%; Modulo ends near 1%.
"""

from repro.experiments.figures import reproduce_figure


def bench_figure2(benchmark, show):
    series = benchmark(reproduce_figure, "figure2")
    fd = series.series["FD (FX)"]
    md = series.series["MD (Modulo)"]
    assert fd[0] == 100.0 and md[0] == 100.0
    assert min(fd) > 98.0
    assert md[-1] < 2.0
    assert all(f >= m for f, m in zip(fd, md))
    show(series.render())
