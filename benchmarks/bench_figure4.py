"""Figure 4: % strict-optimal, n = 10, FpFq < M <= FpFqFr, I/U/IU2.

The widest sweep in the paper (ten fields, M = 512).  FX ends near 76%
with all ten fields small; Modulo near 1%.
"""

from repro.experiments.figures import reproduce_figure


def bench_figure4(benchmark, show):
    series = benchmark(reproduce_figure, "figure4")
    fd = series.series["FD (FX)"]
    md = series.series["MD (Modulo)"]
    assert fd[0] == 100.0
    assert 70.0 < fd[-1] < 80.0
    assert md[-1] < 2.0
    assert all(f >= m for f, m in zip(fd, md))
    show(series.render())
