"""Ablation: transform assignment policy (DESIGN.md design choice 2).

Compares the paper's round-robin assignment, the Theorem-9 size-sorted
recipe and searched assignments (the paper's section 6 future work) on two
four-small-field file systems.  Two findings:

* on the uniform system (4, 4, 4, 4) with M = 32 no assignment of the four
  published families is perfect optimal - consistent with [Sung87]'s
  impossibility result;
* on the mixed system (8, 4, 2, 8) with M = 64 exhaustive search *does*
  find a perfect optimal assignment (I, IU2, IU1, U), i.e. the paper's
  closing pessimism about L >= 4 is a worst-case statement, not a
  per-file-system one.
"""

from repro.analysis.optim_prob import exact_fraction
from repro.core.fx import FXDistribution
from repro.distribution.search import (
    exhaustive_assignment_search,
    hill_climb_assignment_search,
)
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

UNIFORM_FS = FileSystem.uniform(4, 4, m=32)
MIXED_FS = FileSystem.of(8, 4, 2, 8, m=64)


def _compare(fs):
    paper = exact_fraction(FXDistribution(fs, policy="paper"))
    theorem9 = exact_fraction(FXDistribution(fs, policy="theorem9"))
    searched = exhaustive_assignment_search(fs)
    climbed = hill_climb_assignment_search(fs, restarts=3, seed=0)
    return {
        "paper round-robin": paper,
        "theorem9 size-sorted": theorem9,
        "exhaustive search": searched.score,
        "hill climb": climbed.score,
    }


def bench_assignment_policies_uniform(benchmark, show):
    scores = benchmark(_compare, UNIFORM_FS)
    assert scores["exhaustive search"] >= scores["paper round-robin"] - 1e-12
    assert scores["exhaustive search"] >= scores["theorem9 size-sorted"] - 1e-12
    assert scores["hill climb"] >= scores["paper round-robin"] - 1e-12
    # no assignment of the published families is perfect here
    assert scores["exhaustive search"] < 1.0
    show(
        format_table(
            ["policy", "exact optimal fraction"],
            list(scores.items()),
            title=f"Assignment policies on {UNIFORM_FS.describe()}",
            float_digits=4,
        )
    )


def bench_assignment_search_finds_perfect_mixed(benchmark, show):
    result = benchmark(exhaustive_assignment_search, MIXED_FS)
    assert result.score == 1.0
    assert result.methods == ("I", "IU2", "IU1", "U")
    paper = exact_fraction(FXDistribution(MIXED_FS, policy="paper"))
    assert paper < 1.0
    show(
        f"On {MIXED_FS.describe()} search finds a perfect optimal "
        f"assignment {result.methods} (paper round-robin reaches "
        f"{100 * paper:.1f}%)."
    )
