"""Gateway throughput versus connection count over real loopback sockets.

The network gateway (``repro.gateway``) puts a length-framed JSON wire
protocol and per-tenant admission in front of the serving tier.  This
benchmark measures what that costs end to end: closed-loop loopback
throughput at 2–8 connections per tenant across 2 tenants, with every run
re-proving the correctness contract — each tenant's request log replays
serially with zero stale reads, and the drain is clean.

Two entry points:

* a pytest-benchmark function (collected with the other ``bench_*``
  files) timing one multi-tenant loopback load, and
* a script mode — ``python benchmarks/bench_gateway.py [--smoke]
  [--out BENCH_gateway.json]`` — that writes per-connection-count
  throughput and latency percentiles to JSON.
"""

from __future__ import annotations

import argparse
import json

from repro import obs
from repro.api import make_gateway
from repro.gateway import GatewayLoadSpec, run_loopback_load

FULL_CONNECTIONS = (2, 4, 8)
SMOKE_CONNECTIONS = (2, 4)

TENANTS = ("alpha", "beta")
FIELDS = (8, 8)
DEVICES = 8


def _run_load(connections: int, requests: int):
    """One measured loopback run; returns ``(report, counters)``."""
    obs.reset_telemetry()
    gateway = make_gateway(
        list(TENANTS),
        fields=FIELDS,
        devices=DEVICES,
        max_connections=4 * connections * len(TENANTS),
        max_concurrent=16,
        queue_limit=8 * connections,
    )
    address = gateway.start()
    try:
        report = run_loopback_load(
            address,
            list(gateway.tenants.values()),
            GatewayLoadSpec(
                connections_per_tenant=connections,
                requests_per_connection=requests,
                seed=17,
                write_every=5,
                hot_fraction=0.5,
                preload=16,
            ),
        )
    finally:
        clean = gateway.drain()
    assert report.errors == [], report.errors
    assert clean, "gateway drain left stragglers"
    mismatches = {
        name: bad for name, bad in report.verify().items() if bad
    }
    assert not mismatches, mismatches
    counters = obs.telemetry().metrics.snapshot().counters
    return report, counters


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def bench_gateway_loopback_load(benchmark):
    report, __ = benchmark(lambda: _run_load(connections=4, requests=10))
    assert report.completed > 0


# ----------------------------------------------------------------------
# Script mode: write BENCH_gateway.json
# ----------------------------------------------------------------------
def _measure(connections: int, requests: int) -> dict:
    report, counters = _run_load(connections, requests)
    latencies = sorted(
        record.latency_ms
        for tenant_report in report.per_tenant.values()
        for record in tenant_report.requests
    )

    def percentile(q: float) -> float:
        if not latencies:
            return 0.0
        rank = max(0, min(len(latencies) - 1, round(q * (len(latencies) - 1))))
        return latencies[rank]

    return {
        "connections_per_tenant": connections,
        "tenants": len(TENANTS),
        "total_connections": connections * len(TENANTS),
        "requests_per_connection": requests,
        "completed": report.completed,
        "throughput_qps": round(report.throughput_qps, 1),
        "p50_ms": round(percentile(0.50), 4),
        "p99_ms": round(percentile(0.99), 4),
        "accepted": counters.get("gateway.accepted", 0),
        "disconnected": counters.get("gateway.disconnected", 0),
        "stale_reads": 0,  # asserted zero in _run_load
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer connection counts and requests for CI; same code paths",
    )
    parser.add_argument("--out", default="BENCH_gateway.json")
    parser.add_argument(
        "--requests", type=int, default=None,
        help="requests per connection (default 40; smoke 12)",
    )
    args = parser.parse_args(argv)

    connection_counts = SMOKE_CONNECTIONS if args.smoke else FULL_CONNECTIONS
    requests = args.requests or (12 if args.smoke else 40)
    result = {
        "mode": "smoke" if args.smoke else "full",
        "tenants": list(TENANTS),
        "fields": list(FIELDS),
        "devices": DEVICES,
        "sweep": [
            _measure(connections, requests)
            for connections in connection_counts
        ],
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for row in result["sweep"]:
        print(
            f"{row['total_connections']:>3} connections "
            f"({row['connections_per_tenant']}/tenant x {row['tenants']}): "
            f"{row['throughput_qps']:>8,.1f} qps, "
            f"p50 {row['p50_ms']:.3f} ms, p99 {row['p99_ms']:.3f} ms, "
            f"0 stale reads"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
