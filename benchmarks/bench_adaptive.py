"""Adaptive declustering payoff: observed-mix load factor vs uniform-optimal.

The paper optimises transform assignments for the *uniform* query model;
``repro.adaptive`` re-optimises for whatever mix a deployment actually
observes.  This benchmark quantifies the payoff on the canonical
demonstration scenario — ``F=(2, 2, 2, 2), M=16``, where four small
fields make a perfect assignment impossible, so the uniform-optimal
choice must sacrifice *some* pattern — under a family of skewed mixes of
increasing concentration on the sacrificed pattern.  For each mix it
records the uniform-optimal baseline's mix-weighted expected load
factor, the adaptive plan's, the Doerr-style lower bound, and the
migration cost (fraction of buckets moved), then hot-swaps a durable
file and re-verifies optimality from telemetry.

The output JSON holds only mix-derived quantities (no timings), so it is
byte-identical per seed; the determinism is asserted in-bench by
replanning and re-swapping.  Timings are printed to stdout only.

Two entry points:

* pytest-benchmark functions (collected with the other ``bench_*``
  files) timing the adaptive search and one audited hot-swap, and
* a script mode — ``python benchmarks/bench_adaptive.py [--smoke]
  [--out BENCH_adaptive.json]`` — that writes the skew sweep to JSON.
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro import obs
from repro.adaptive import (
    EmpiricalQueryModel,
    adaptive_transform_search,
    apply_plan,
)
from repro.api import make_durable_file
from repro.core.fx import FXDistribution
from repro.distribution.search import exhaustive_assignment_search
from repro.hashing.fields import FileSystem

FIELDS = (2, 2, 2, 2)
DEVICES = 16
SEED = 11

#: Share of the mix concentrated on the pattern the uniform-optimal
#: assignment sacrifices (queries specifying only the last field).
FULL_SKEWS = (0.2, 0.4, 0.6, 0.8)
SMOKE_SKEWS = (0.2, 0.6)

RECORDS = 128


def _fs() -> FileSystem:
    return FileSystem.of(*FIELDS, m=DEVICES)


def _uniform_baseline(fs: FileSystem) -> FXDistribution:
    """The strongest mix-blind competitor: best assignment under p=0.5."""
    best = exhaustive_assignment_search(fs)
    return FXDistribution(fs, transforms=list(best.methods))


def _mix(skew: float) -> dict[str, int]:
    """A mix putting ``skew`` of the weight on the sacrificed pattern.

    The remainder spreads evenly over three patterns the uniform choice
    already serves optimally, so the baseline's expected load factor is
    exactly ``1 + skew`` and the adaptive target is 1.0.
    """
    hot = int(round(100 * skew))
    rest = (100 - hot) // 3
    return {
        "***1": hot,
        "**11": 100 - hot - 2 * rest,
        "*1*1": rest,
        "1**1": rest,
    }


def _durable(fs: FileSystem, baseline: FXDistribution):
    durable = make_durable_file(
        "fx",
        fields=fs.field_sizes,
        devices=fs.m,
        replicate=False,
        transforms=[t.method for t in baseline.transforms],
    )
    rng = random.Random(SEED)
    durable.insert_all(
        tuple(rng.randrange(size) for size in fs.field_sizes)
        for __ in range(RECORDS)
    )
    return durable


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_adaptive_search(benchmark):
    fs = _fs()
    baseline = _uniform_baseline(fs)
    model = EmpiricalQueryModel.from_counts(_mix(0.5), fs.n_fields)

    plan = benchmark(
        adaptive_transform_search, fs, model, baseline=baseline
    )
    assert plan.worthwhile
    assert plan.candidate.gap == 1.0


def bench_adaptive_hot_swap(benchmark):
    fs = _fs()
    baseline = _uniform_baseline(fs)
    model = EmpiricalQueryModel.from_counts(_mix(0.5), fs.n_fields)
    plan = adaptive_transform_search(fs, model, baseline=baseline)
    obs.configure(enabled=True, reset=True)

    def swap():
        return apply_plan(_durable(fs, baseline), plan, model)

    report = benchmark(swap)
    assert report.verified


# ----------------------------------------------------------------------
# Script mode: write BENCH_adaptive.json
# ----------------------------------------------------------------------
def _measure_skew(fs: FileSystem, baseline: FXDistribution, skew: float):
    """One sweep point; returns (deterministic row, timing row)."""
    model = EmpiricalQueryModel.from_counts(_mix(skew), fs.n_fields)

    started = time.perf_counter()
    plan = adaptive_transform_search(fs, model, baseline=baseline)
    search_seconds = time.perf_counter() - started

    obs.reset_telemetry()
    obs.configure(enabled=True)
    durable = _durable(fs, baseline)
    started = time.perf_counter()
    swap = apply_plan(durable, plan, model)
    swap_seconds = time.perf_counter() - started

    assert plan.worthwhile, f"adaptive must beat uniform at skew {skew}"
    assert swap.verified, "post-swap telemetry verification failed"
    assert swap.content_preserved
    assert swap.wal_moves == swap.records_moved

    row = {
        "skew": skew,
        "mix": model.frequencies(),
        "baseline": plan.to_dict()["baseline"],
        "candidate": plan.to_dict()["candidate"],
        "improvement": plan.to_dict()["improvement"],
        "moved_fraction": plan.to_dict()["moved_fraction"],
        "evaluations": plan.evaluations,
        "swap": swap.to_dict(),
    }
    timing = {
        "skew": skew,
        "search_seconds": search_seconds,
        "swap_seconds": swap_seconds,
    }
    return row, timing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer sweep points for CI; same code paths and assertions",
    )
    parser.add_argument("--out", default="BENCH_adaptive.json")
    args = parser.parse_args(argv)

    fs = _fs()
    baseline = _uniform_baseline(fs)
    skews = SMOKE_SKEWS if args.smoke else FULL_SKEWS

    sweep, timings = [], []
    for skew in skews:
        row, timing = _measure_skew(fs, baseline, skew)
        sweep.append(row)
        timings.append(timing)

    # Determinism: replanning and re-swapping the last point must
    # reproduce the deterministic row byte for byte.
    repeat, __ = _measure_skew(fs, baseline, skews[-1])
    assert json.dumps(repeat, sort_keys=True) == json.dumps(
        sweep[-1], sort_keys=True
    ), "adaptive sweep is not deterministic per seed"

    result = {
        "filesystem": fs.describe(),
        "seed": SEED,
        "records": RECORDS,
        "mode": "smoke" if args.smoke else "full",
        "deterministic_repeat": True,
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for row, timing in zip(sweep, timings):
        base = row["baseline"]["score"]["expected_load_factor"]
        cand = row["candidate"]["score"]["expected_load_factor"]
        bound = row["candidate"]["score"]["lower_bound"]
        print(
            f"skew {row['skew']:.1f}: E[LF] {base:.3f} -> {cand:.3f} "
            f"(bound {bound:.3f}), moves {100 * row['moved_fraction']:.0f}% "
            f"of buckets, search {timing['search_seconds']:.2f}s, "
            f"swap {timing['swap_seconds']:.2f}s"
        )
        assert cand < base, "adaptive must strictly beat uniform-optimal"
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
