"""Table 8: average largest response size, M = 64, six fields of size 8.

FX hits the optimal floor from k = 3 on; the paper's only FX loss is the
k = 2 row (2.4 vs GDM1's 2.1), which reproduces exactly.
"""

import pytest

from repro.experiments.response_tables import reproduce_table


def bench_table8(benchmark, show):
    table = benchmark(reproduce_table, "table8")
    assert table.column("Modulo") == (8.0, 48.0, 344.0, 2460.0, 18152.0)
    assert table.column("GDM1") == pytest.approx(
        (2.1, 10.2, 68.3, 520.5, 4114.0), abs=0.05
    )
    assert table.column("FX") == (2.4, 8.0, 64.0, 512.0, 4096.0)
    assert table.column("Optimal") == (1.0, 8.0, 64.0, 512.0, 4096.0)
    # the paper's noted exception: FX loses only the first row here
    fx, gdm1 = table.column("FX"), table.column("GDM1")
    assert fx[0] > gdm1[0]
    assert all(f <= g for f, g in zip(fx[1:], gdm1[1:]))
    show(table.render())
