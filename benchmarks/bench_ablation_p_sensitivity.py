"""Ablation: sensitivity of the optimality percentages to p.

The paper fixes the per-field specification probability at one value (all
patterns equally likely, i.e. p = 0.5).  This ablation sweeps p: FX
dominates at every p and stays above 93%, while Modulo collapses as p
falls (more unspecified fields per query), so the gap is widest for
wide-open workloads.
"""

from repro.analysis.optim_prob import exact_fraction
from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

FS = FileSystem.uniform(6, 8, m=64)  # the Figure 1 right-edge scenario
P_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)


def _sweep():
    fx = FXDistribution(FS)
    modulo = ModuloDistribution(FS)
    rows = []
    for p in P_VALUES:
        rows.append(
            (
                p,
                100.0 * exact_fraction(fx, p=p),
                100.0 * exact_fraction(modulo, p=p),
            )
        )
    return rows


def bench_p_sensitivity(benchmark, show):
    rows = benchmark(_sweep)
    for p, fd, md in rows:
        assert fd >= md          # FX dominates at every p
        assert fd > 93.0         # and stays high across the sweep
    # Modulo collapses as queries leave more fields unspecified (small p),
    # so the FX advantage shrinks monotonically as p grows
    gaps = [fd - md for __, fd, md in rows]
    assert gaps == sorted(gaps, reverse=True)
    show(
        format_table(
            ["p (field specified)", "FX %", "Modulo %"],
            rows,
            title=f"Optimality fraction vs p on {FS.describe()}",
        )
    )
