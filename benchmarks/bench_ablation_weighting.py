"""Ablation: per-pattern vs per-query averaging in Tables 7-9.

The paper's entries turn out to be unweighted per-pattern averages (see
DESIGN.md section 4b); with Table 9's mixed field sizes the two conventions
genuinely differ.  This benchmark computes both and asserts the identifying
fingerprints: unweighted reproduces the printed Modulo/Optimal cells,
weighted does not.
"""

import pytest

from repro.experiments.response_tables import reproduce_table


def bench_weighting_conventions(benchmark, show):
    unweighted = benchmark(reproduce_table, "table9", False)
    weighted = reproduce_table("table9", weighted=True)
    # fingerprints of the paper's convention
    assert unweighted.column("Modulo")[0] == pytest.approx(9.6, abs=0.05)
    assert unweighted.column("Optimal")[2] == pytest.approx(35.2, abs=0.05)
    assert weighted.column("Modulo")[0] != pytest.approx(9.6, abs=0.05)
    lines = ["k   unweighted-Optimal   weighted-Optimal"]
    for i, k in enumerate(unweighted.ks):
        lines.append(
            f"{k}   {unweighted.column('Optimal')[i]:>12.1f}   "
            f"{weighted.column('Optimal')[i]:>12.1f}"
        )
    show("\n".join(lines))
