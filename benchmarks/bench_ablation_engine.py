"""Ablation: convolution engine vs brute-force enumeration (choice 4).

Correctness of the engine is property-tested in tests/test_histograms.py;
this benchmark quantifies the speed gap on a mid-size query, which is why
exact sweeps over thousands of patterns are feasible at all.
"""

from repro.analysis.histograms import separable_response_histogram
from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery

FS = FileSystem.uniform(6, 8, m=32)
FX = FXDistribution(FS)
QUERY = PartialMatchQuery.from_dict(FS, {0: 3})  # 32768 qualified buckets


def _brute_force():
    counts = [0] * FS.m
    for bucket in QUERY.qualified_buckets():
        counts[FX.device_of(bucket)] += 1
    return counts


def bench_engine_convolution(benchmark):
    result = benchmark(separable_response_histogram, FX, QUERY)
    assert sum(result) == QUERY.qualified_count


def bench_engine_brute_force(benchmark):
    result = benchmark(_brute_force)
    assert result == separable_response_histogram(FX, QUERY)
