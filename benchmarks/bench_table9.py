"""Table 9: M = 512, sizes (8, 8, 8, 16, 16, 16), FX with I/U/IU2.

The large-machine scenario (Butterfly-scale M): every field is smaller than
M.  Modulo collapses (90404 vs optimal 4096 at k = 6); FX reaches the floor
for k >= 5 and stays within a factor ~2 of it elsewhere.
"""

import pytest

from repro.experiments.response_tables import reproduce_table


def bench_table9(benchmark, show):
    table = benchmark(reproduce_table, "table9")
    assert table.column("Modulo") == pytest.approx(
        (9.6, 91.2, 911.2, 9076.0, 90404.0), abs=0.05
    )
    assert table.column("GDM1") == pytest.approx(
        (1.7, 10.0, 90.3, 909.5, 9176.0), abs=0.05
    )
    assert table.column("GDM2")[4] == 4144.0
    assert table.column("FX")[3:] == (384.0, 4096.0)
    assert table.column("Optimal")[3:] == (384.0, 4096.0)
    # FX beats every other method from k = 3 on (paper's claim)
    fx = table.column("FX")
    for name in ("Modulo", "GDM1", "GDM2", "GDM3"):
        other = table.column(name)
        assert all(f <= o + 1e-9 for f, o in zip(fx[1:], other[1:]))
    show(table.render())
