"""Extension benchmark: the Table 7 comparison swept across machine sizes.

Tables 7-8 fix M at 32 and 64; this sweep extends the same file (six
fields of size 8) to M = 16..512, reporting the k = 3 average largest
response per method.

Finding: FX sits exactly on the optimal floor while pairs of fields can
cover the devices (M <= 64 here), then plateaus — and can even fall behind
GDM — once every field is far smaller than M.  That is precisely the
regime the paper's conclusion concedes ("does not guarantee strict optimal
distribution when the number of parallel devices are quite large and all
field sizes are much smaller"), now with numbers attached.
"""

from repro.analysis.response import (
    average_largest_response,
    optimal_largest_response,
)
from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

M_VALUES = (16, 32, 64, 128, 256, 512)


def _sweep():
    rows = []
    for m in M_VALUES:
        fs = FileSystem.uniform(6, 8, m=m)
        fx = FXDistribution(fs, policy="paper")
        modulo = ModuloDistribution(fs)
        gdm = GDMDistribution.preset(fs, "GDM1")
        rows.append(
            (
                m,
                average_largest_response(modulo, 3, weighted=False),
                average_largest_response(gdm, 3, weighted=False),
                average_largest_response(fx, 3, weighted=False),
                optimal_largest_response(fs, 3, weighted=False),
            )
        )
    return rows


def bench_m_sweep_k3(benchmark, show):
    rows = benchmark(_sweep)
    for m, modulo, gdm, fx, optimal in rows:
        assert optimal <= fx <= modulo
        if m <= 64:
            # pairs of fields cover the devices: FX is exactly optimal
            assert fx == optimal
    # the paper's own concession, quantified: at very large M the fixed
    # FX toolkit plateaus and GDM's trial-and-error multipliers edge ahead
    large = {m: (gdm, fx) for m, __, gdm, fx, __ in rows if m >= 128}
    assert all(gdm < fx for gdm, fx in large.values())
    show(
        format_table(
            ["M", "Modulo", "GDM1", "FX", "Optimal"],
            rows,
            title="k = 3 average largest response, F = 8 x 6 fields",
        )
    )
