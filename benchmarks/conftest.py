"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one paper artefact (a table, a figure or an
ablation) through the ``benchmark`` fixture, asserts the key golden facts,
and prints the rendered artefact — run with ``-s`` to see the tables.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print an artefact with a separating banner (visible under -s)."""

    def _show(text: str) -> None:
        print()
        print("=" * 72)
        print(text)
        print("=" * 72)

    return _show
