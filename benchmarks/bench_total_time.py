"""Extension benchmark: combined response-time model (sections 5.2.1+5.2.2).

Prices address computation, inverse mapping and local retrieval in MC68000
cycles for each method on the Table 7 file system.  GDM pays its multiply
on every inverse-mapping step, so its gap to FX grows with k.
"""

from repro.analysis.total_time import TotalTimeModel, total_time_table
from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem

FS = FileSystem.uniform(6, 8, m=32)


def bench_total_time_table(benchmark, show):
    methods = {
        "FX": FXDistribution(FS),
        "GDM1": GDMDistribution.preset(FS, "GDM1"),
        "Modulo": ModuloDistribution(FS),
    }
    text = benchmark(total_time_table, FS, methods, (1, 2, 3, 4))
    fx = TotalTimeModel(methods["FX"])
    gdm = TotalTimeModel(methods["GDM1"])
    gaps = [
        gdm.average_cycles(k) - fx.average_cycles(k) for k in (1, 2, 3, 4)
    ]
    assert all(g > 0 for g in gaps)
    assert gaps == sorted(gaps)
    show(text)
