"""Extension benchmark: vectorised bulk device assignment.

Bulk loading a file computes millions of bucket-to-device assignments; the
numpy path on SeparableMethod amortises the per-call overhead.  This
benchmark measures both paths on the Table 7 grid (32768 buckets).
"""

import numpy as np

from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem

FS = FileSystem.uniform(6, 8, m=32)
FX = FXDistribution(FS)
BUCKETS = np.array(list(FS.buckets()), dtype=np.int64)


def bench_bulk_vectorised(benchmark):
    devices = benchmark(FX.devices_of_array, BUCKETS)
    assert devices.shape == (FS.bucket_count,)
    assert devices.min() >= 0 and devices.max() < FS.m


def bench_bulk_scalar_loop(benchmark):
    bucket_tuples = [tuple(int(x) for x in b) for b in BUCKETS[:4096]]

    def run():
        return [FX.device_of(b) for b in bucket_tuples]

    result = benchmark(run)
    assert len(result) == 4096
