"""Section 5.2.2: CPU cycles for address computation, FX vs GDM vs Modulo.

Checks the paper's headline ("in MC68000 ... FX takes about only one third
of GDM") on the Table 7 scenario, and additionally measures real wall-clock
address-computation throughput of the Python implementations.
"""

import itertools

from repro.experiments.cpu_table import cpu_comparison, render_cpu_table
from repro.experiments.filesystems import table7_setup


def bench_cpu_cycle_model(benchmark, show):
    rows = benchmark(cpu_comparison, "mc68000")
    table7 = rows[0]
    assert table7.fx_cycles == 100       # 2 shifts + 2 (shift+xor) + 5 xor + and
    assert table7.gdm_cycles == 444      # 6 mul + 5 add + and
    assert table7.modulo_cycles == 24    # 5 add + and
    assert table7.fx_to_gdm < 0.4
    show(render_cpu_table("mc68000") + "\n\n" + render_cpu_table("i80286"))


def bench_address_throughput_fx(benchmark):
    setup = table7_setup()
    fx = setup.methods["FX"]
    buckets = list(itertools.islice(setup.filesystem.buckets(), 4096))
    benchmark(lambda: [fx.device_of(b) for b in buckets])


def bench_address_throughput_gdm(benchmark):
    setup = table7_setup()
    gdm = setup.methods["GDM1"]
    buckets = list(itertools.islice(setup.filesystem.buckets(), 4096))
    benchmark(lambda: [gdm.device_of(b) for b in buckets])


def bench_address_throughput_modulo(benchmark):
    setup = table7_setup()
    modulo = setup.methods["Modulo"]
    buckets = list(itertools.islice(setup.filesystem.buckets(), 4096))
    benchmark(lambda: [modulo.device_of(b) for b in buckets])
