"""Availability and latency versus wire-fault rate, invariants proven.

The chaos harness (``repro.chaos``) injects deterministic wire faults
(connection refusals, request/response resets, torn and delayed frames,
duplicated responses) between resilient clients and a WAL-durable
gateway, with a crash-restart in the middle of the run.  This benchmark
sweeps the per-kind fault rate and records what resilience costs: the
fraction of ops that still succeed (availability — expected 1.0 as long
as the retry budget outlasts the fault schedule), query latency
percentiles (inflated by retries and backoff), and retry/reconnect/dedup
totals.  Every measured run re-proves the chaos invariants — zero stale
reads, no lost or doubly-applied acknowledged write — and asserts the
canonical report digest is reproducible for the seed.

Two entry points:

* a pytest-benchmark function (collected with the other ``bench_*``
  files) timing one crash-restart chaos run, and
* a script mode — ``python benchmarks/bench_chaos.py [--smoke]
  [--out BENCH_chaos.json]`` — that writes the fault-rate sweep to JSON.
"""

from __future__ import annotations

import argparse
import json

from repro import obs
from repro.chaos import ChaosSpec, NetFaultPlan, run_chaos_load
from repro.gateway.tenant import TenantSpec
from repro.runtime import RetryPolicy

FULL_RATES = (0.0, 0.03, 0.06, 0.1)
SMOKE_RATES = (0.0, 0.06)

TENANTS = ("alpha", "beta")
FIELDS = (8, 8)
DEVICES = 8
SEED = 17

RETRY = RetryPolicy(max_attempts=6, base_delay_ms=2.0, max_delay_ms=25.0)


def _run_chaos(rate: float, requests: int, crash: bool):
    """One measured chaos run; returns the verified report."""
    obs.reset_telemetry()
    spec = ChaosSpec(
        connections_per_tenant=2,
        requests_per_connection=requests,
        seed=SEED,
        write_every=3,
        preload=4,
        faults=(
            NetFaultPlan.none()
            if rate == 0.0
            else NetFaultPlan.uniform(rate, seed=SEED, refuse_rate=rate)
        ),
        crash_at=0.5 if crash else None,
        torn_tail=crash,
        retry=RETRY,
        timeout_s=10.0,
    )
    report = run_chaos_load(
        [TenantSpec.of(name, FIELDS, DEVICES) for name in TENANTS], spec
    )
    violations = report.verify()
    assert violations == [], violations
    return report


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def bench_chaos_crash_restart_run(benchmark):
    report = benchmark(
        lambda: _run_chaos(rate=0.06, requests=8, crash=True)
    )
    assert report.crashes == 1
    assert report.total_ops > 0


# ----------------------------------------------------------------------
# Script mode: write BENCH_chaos.json
# ----------------------------------------------------------------------
def _measure(rate: float, requests: int, crash: bool) -> dict:
    report = _run_chaos(rate, requests, crash)
    digest = report.canonical_digest()
    latencies = sorted(
        record.latency_ms
        for tenant_report in report.per_tenant.values()
        for record in tenant_report.requests
    )

    def percentile(q: float) -> float:
        if not latencies:
            return 0.0
        rank = max(0, min(len(latencies) - 1, round(q * (len(latencies) - 1))))
        return latencies[rank]

    return {
        "fault_rate": rate,
        "crash_restart": crash,
        "ops": report.total_ops,
        "availability": round(report.availability, 6),
        "faults_injected": report.faults_injected,
        "retries": report.total_retries,
        "reconnects": report.total_reconnects,
        "dedup_reacks": report.total_deduped,
        "recovered_writes": sum(
            (info or {}).get("entries", 0)
            for info in report.recovered.values()
        ),
        "p50_ms": round(percentile(0.50), 4),
        "p99_ms": round(percentile(0.99), 4),
        "wall_s": round(report.wall_s, 4),
        "violations": 0,  # asserted empty in _run_chaos
        "canonical_digest": digest,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer fault rates and requests for CI; same code paths",
    )
    parser.add_argument("--out", default="BENCH_chaos.json")
    parser.add_argument(
        "--requests", type=int, default=None,
        help="ops per connection (default 16; smoke 8)",
    )
    args = parser.parse_args(argv)

    rates = SMOKE_RATES if args.smoke else FULL_RATES
    requests = args.requests or (8 if args.smoke else 16)
    sweep = [_measure(rate, requests, crash=True) for rate in rates]
    # Reproducibility spot-check: the faultiest run twice -> same digest.
    repeat = _measure(rates[-1], requests, crash=True)
    assert repeat["canonical_digest"] == sweep[-1]["canonical_digest"], (
        "chaos run is not deterministic per seed"
    )
    result = {
        "mode": "smoke" if args.smoke else "full",
        "tenants": list(TENANTS),
        "fields": list(FIELDS),
        "devices": DEVICES,
        "seed": SEED,
        "retry_max_attempts": RETRY.max_attempts,
        "deterministic_repeat": True,
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for row in result["sweep"]:
        print(
            f"fault rate {row['fault_rate']:>5.2f}: "
            f"availability {row['availability']:.3f}, "
            f"{row['faults_injected']:>3} faults, "
            f"{row['retries']:>3} retries, "
            f"{row['dedup_reacks']} dedup re-acks, "
            f"p50 {row['p50_ms']:.3f} ms, p99 {row['p99_ms']:.3f} ms, "
            f"0 violations"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
