"""Extension benchmark: box (range / IN-list) queries — section 6 direction.

The paper's conclusion asks how optimal distribution extends to "more
general type of queries".  This benchmark evaluates FX, Modulo, GDM and
Z-order on two range workloads, exactly (restricted-histogram convolution).

Findings:

* FX's partial-match dominance does NOT carry over to ranges: on random
  unaligned boxes the hash-style methods (FX/Modulo/GDM) sit within a few
  percent of each other.
* Locality-aware curves are no free lunch either: Z-order wins on aligned
  window sweeps but is the *worst* of the four on random unaligned boxes
  (its devices depend only on the lowest interleaved bits).  Extending
  provable optimality to boxes genuinely is open, as the paper says.
"""

import random

from repro.analysis.box import box_largest_response
from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.zorder import ZOrderDistribution
from repro.hashing.fields import FileSystem
from repro.query.box import BoxQuery
from repro.util.numbers import ceil_div
from repro.util.tables import format_table

FS = FileSystem.uniform(3, 16, m=8)


def _methods():
    return {
        "FX": FXDistribution(FS),
        "Modulo": ModuloDistribution(FS),
        "GDM(3,5,7)": GDMDistribution(FS, multipliers=(3, 5, 7)),
        "Z-order": ZOrderDistribution(FS),
    }


def _random_boxes(count=200, seed=1):
    rng = random.Random(seed)
    boxes = []
    for __ in range(count):
        spec = {}
        for i in range(FS.n_fields):
            if rng.random() < 0.6:
                lo = rng.randrange(16)
                hi = min(15, lo + rng.randrange(6))
                spec[i] = (lo, hi)
        boxes.append(BoxQuery.from_spec(FS, spec))
    return boxes


def _aligned_windows():
    """Power-of-two-aligned windows (the favourable case for curves)."""
    boxes = []
    for width in (2, 4, 8):
        for start in range(0, 16, width):
            boxes.append(
                BoxQuery.from_spec(
                    FS, {0: (start, start + width - 1), 1: (0, width - 1)}
                )
            )
    return boxes


def _average_load_factors(boxes):
    rows = []
    for name, method in _methods().items():
        total = 0.0
        for box in boxes:
            bound = ceil_div(box.qualified_count, FS.m)
            total += box_largest_response(method, box) / bound
        rows.append((name, total / len(boxes)))
    return rows


def bench_random_unaligned_boxes(benchmark, show):
    rows = benchmark(_average_load_factors, _random_boxes())
    factors = dict(rows)
    hash_like = [factors["FX"], factors["Modulo"], factors["GDM(3,5,7)"]]
    assert all(1.0 <= value < 1.15 for value in hash_like)
    assert max(hash_like) - min(hash_like) < 0.10
    # the curve is the worst of the four on scattered unaligned boxes
    assert factors["Z-order"] == max(factors.values())
    show(
        format_table(
            ["method", "avg load factor (200 random range boxes)"],
            rows,
            title=f"Unaligned range boxes on {FS.describe()}",
            float_digits=3,
        )
    )


def bench_aligned_window_boxes(benchmark, show):
    rows = benchmark(_average_load_factors, _aligned_windows())
    factors = dict(rows)
    # aligned windows are Z-order's home turf: it matches the best
    assert factors["Z-order"] == min(factors.values())
    show(
        format_table(
            ["method", "avg load factor (aligned windows)"],
            rows,
            title=f"Aligned window boxes on {FS.describe()}",
            float_digits=3,
        )
    )
