"""Section 5.2: inverse mapping must be fast on every device.

Benchmarks the algebraic per-device enumeration against filtering the full
qualified set, for FX and Modulo.  The algebraic path touches
|R(q)| / F_solved combinations instead of |R(q)| buckets.
"""

from repro.core.inverse import separable_qualified_on_device
from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery

FS = FileSystem.uniform(5, 8, m=32)
QUERY = PartialMatchQuery.from_dict(FS, {0: 1})


def _naive(method, device):
    return [
        b for b in QUERY.qualified_buckets() if method.device_of(b) == device
    ]


def bench_inverse_fx_algebraic(benchmark):
    fx = FXDistribution(FS)
    result = benchmark(lambda: list(separable_qualified_on_device(fx, 7, QUERY)))
    assert sorted(result) == sorted(_naive(fx, 7))


def bench_inverse_fx_naive_filter(benchmark):
    fx = FXDistribution(FS)
    benchmark(_naive, fx, 7)


def bench_inverse_modulo_algebraic(benchmark):
    modulo = ModuloDistribution(FS)
    result = benchmark(
        lambda: list(separable_qualified_on_device(modulo, 7, QUERY))
    )
    assert sorted(result) == sorted(_naive(modulo, 7))
