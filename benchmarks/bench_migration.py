"""Extension benchmark: re-declustering a live deployment.

Measures the exact planned moved-fraction computation (one convolution)
and a full live migration from Modulo to FX, and runs the cost/benefit
analysis an operator would consult first.
"""

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.storage.migration import Migration, moved_fraction, redecluster_analysis
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.uniform(4, 8, m=16)


def bench_planned_fraction_exact(benchmark):
    a = ModuloDistribution(FS)
    b = FXDistribution(FS)
    fraction = benchmark(moved_fraction, a, b)
    assert 0.0 < fraction <= 1.0


def bench_live_migration(benchmark, show):
    def run():
        pf = PartitionedFile(ModuloDistribution(FS))
        pf.insert_all([(i, i * 3, i * 7, i * 11) for i in range(1500)])
        report = Migration(pf, FXDistribution(FS)).apply()
        pf.check_invariants()
        return report

    report = benchmark(run)
    analysis = redecluster_analysis(ModuloDistribution(FS), FXDistribution(FS))
    assert analysis.worthwhile
    show(
        f"moved {report.buckets_moved} buckets / {report.records_moved} "
        f"records; planned fraction {analysis.moved_fraction:.2f}, "
        f"E[largest response] {analysis.expected_largest_before:.2f} -> "
        f"{analysis.expected_largest_after:.2f}, break-even after "
        f"~{analysis.break_even_queries:.0f} queries"
    )
