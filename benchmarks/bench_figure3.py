"""Figure 3: % strict-optimal, n = 6, FpFq < M <= FpFqFr, I/U/IU2.

The harder regime: no small *pair* can cover the devices, so FX leans on
the three-field IU2 machinery (Lemma 9.1 / Corollary 9.1).
"""

from repro.experiments.figures import reproduce_figure, reproduce_figure_exact


def bench_figure3(benchmark, show):
    series = benchmark(reproduce_figure, "figure3")
    fd = series.series["FD (FX)"]
    md = series.series["MD (Modulo)"]
    assert fd == (100.0, 100.0, 100.0, 100.0, 95.3125, 85.9375, 71.875)
    assert md[-1] < 15.0
    assert all(f >= m for f, m in zip(fd, md))
    exact = reproduce_figure_exact("figure3")
    assert exact.series["FD (FX)"] == fd
    show(series.render() + "\n\n" + exact.render())
