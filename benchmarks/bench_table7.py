"""Table 7: average largest response size, M = 32, six fields of size 8.

Regenerates every cell exactly (convolution engine) and checks the legible
paper values: the Modulo column digit-for-digit, GDM1/GDM3 to one decimal,
FX against the optimal floor from k = 3 on.
"""

import pytest

from repro.experiments.response_tables import reproduce_table


def bench_table7(benchmark, show):
    table = benchmark(reproduce_table, "table7")
    assert table.column("Modulo") == (8.0, 48.0, 344.0, 2460.0, 18152.0)
    assert table.column("GDM1") == pytest.approx(
        (3.3, 18.1, 130.5, 1026.3, 8196.0), abs=0.05
    )
    assert table.column("GDM3") == pytest.approx(
        (3.7, 18.9, 132.5, 1031.7, 8202.0), abs=0.05
    )
    assert table.column("FX") == (3.2, 16.0, 128.0, 1024.0, 8192.0)
    assert table.column("Optimal") == (2.0, 16.0, 128.0, 1024.0, 8192.0)
    show(table.render())
