"""Extension benchmark: subsumption-aware result caching.

A zipf-ish repetitive workload against the cached executor versus raw
execution; the cache's subsumption hits answer narrow queries from broad
cached entries without touching any device.
"""

from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.cache import CachedExecutor
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(8, 8, m=8)


def _setup():
    pf = PartitionedFile(FXDistribution(FS))
    pf.insert_all([(i, i * 13) for i in range(400)])
    # one broad query, many narrow refinements, with repetition
    queries = [PartialMatchQuery.full_scan(FS)]
    for v in range(8):
        queries.extend([PartialMatchQuery.from_dict(FS, {0: v})] * 3)
    return pf, queries


def bench_cached_workload(benchmark, show):
    pf, queries = _setup()

    def run():
        cached = CachedExecutor(pf, capacity=16)
        for query in queries:
            cached.execute(query)
        return cached

    cached = benchmark(run)
    assert cached.stats.hit_rate > 0.9  # everything after the scan is a hit
    show(
        f"{cached.stats.lookups} lookups: {cached.stats.exact_hits} exact "
        f"hits, {cached.stats.subsumption_hits} subsumption hits, "
        f"{cached.stats.misses} misses "
        f"(hit rate {100 * cached.stats.hit_rate:.0f}%)"
    )


def bench_uncached_workload(benchmark):
    pf, queries = _setup()
    executor = QueryExecutor(pf)

    def run():
        for query in queries:
            executor.execute(query)

    benchmark(run)
