"""Extension benchmark: convolution-engine scaling with machine size.

The paper motivates large machines (128-node Butterfly and beyond).  This
benchmark evaluates a full 2^n-pattern optimality census at M = 512, 2048
and 8192 devices — exact, in milliseconds, which is what made every other
experiment in this repository feasible.
"""

import pytest

from repro.analysis.optim_prob import exact_fraction
from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem


@pytest.mark.parametrize("m", [512, 2048, 8192])
def bench_census_at_scale(benchmark, m):
    fs = FileSystem.of(8, 8, 8, 16, 16, 16, m=m)
    fx = FXDistribution(fs, policy="paper", variant="IU2")
    fraction = benchmark(exact_fraction, fx)
    assert 0.0 < fraction <= 1.0
