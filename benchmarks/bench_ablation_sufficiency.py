"""Ablation: how conservative are the paper's sufficient conditions?

For each figure scenario, compares the fraction of patterns certified by
the section 4.2 rule against exact ground truth.  Finding: on all four
published scenarios the rule is *tight* (zero gap); a deliberately
adversarial assignment (all small fields on the same transform family)
shows the rule can also be tight in failure.
"""

import pytest

from repro.analysis.optim_prob import exact_fraction, fx_sufficient_fraction
from repro.core.fx import FXDistribution
from repro.experiments.filesystems import figure_scenario
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table


def _gaps():
    rows = []
    for figure_id in ("figure1", "figure2", "figure3", "figure4"):
        scenario = figure_scenario(figure_id)
        worst_gap = 0.0
        for fs in scenario.filesystems:
            fx = scenario.fx_builder(fs)
            gap = exact_fraction(fx) - fx_sufficient_fraction(fx)
            worst_gap = max(worst_gap, gap)
        rows.append((figure_id, worst_gap))
    return rows


def bench_sufficiency_gap(benchmark, show):
    rows = benchmark(_gaps)
    for figure_id, gap in rows:
        assert gap == pytest.approx(0.0, abs=1e-12), figure_id
    show(
        format_table(
            ["scenario", "max (exact - sufficient)"],
            rows,
            title="Tightness of the section 4.2 conditions",
            float_digits=4,
        )
    )


def bench_sufficiency_gap_exists_off_scenario(benchmark, show):
    """Off the published scenarios the rule can under-certify: an IU1+IU2
    pair it must skip is sometimes exactly optimal (cf. Theorem 3)."""

    def _measure():
        fs = FileSystem.of(8, 2, m=16)
        fx = FXDistribution(fs, transforms=["IU1", "IU2"])
        return exact_fraction(fx) - fx_sufficient_fraction(fx)

    gap = benchmark(_measure)
    assert gap > 0.0
    show(f"IU1+IU2 pair on F=(8,2), M=16: certification gap = {gap:.4f}")
