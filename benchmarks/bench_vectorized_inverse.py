"""Vectorised inverse mapping vs the reference iterator.

Two entry points:

* pytest-benchmark functions (collected with the other ``bench_*`` files)
  timing both paths on a small file system and asserting bit-identical
  output, and
* a script mode — ``python benchmarks/bench_vectorized_inverse.py
  [--smoke] [--out BENCH_inverse.json]`` — that measures buckets/sec for
  both paths over every device of a partial match query and writes the
  speedup to JSON.  Full mode uses a 2^18-bucket file system (the
  acceptance configuration: the array path must hold a >= 10x speedup
  there); ``--smoke`` shrinks the grid so CI can run it on every push and
  still fail loudly if the fast path stops matching the iterator.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.core.fx import FXDistribution
from repro.core.inverse import (
    separable_qualified_on_device,
    separable_qualified_on_device_array,
)
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery

#: Full mode: 8^6 = 2^18 buckets over 32 devices, one specified field.
FULL_FS = FileSystem.uniform(6, 8, m=32)
#: Smoke mode: 2^12 buckets — small enough for a CI step, same code paths.
SMOKE_FS = FileSystem.uniform(4, 8, m=16)

BENCH_FS = FileSystem.uniform(5, 8, m=32)
BENCH_QUERY = PartialMatchQuery.from_dict(BENCH_FS, {0: 1})


def _sweep_iterator(method, query) -> int:
    return sum(
        1
        for device in range(method.filesystem.m)
        for __ in separable_qualified_on_device(method, device, query)
    )


def _sweep_array(method, query) -> int:
    return sum(
        separable_qualified_on_device_array(method, device, query).shape[0]
        for device in range(method.filesystem.m)
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_inverse_array_fx(benchmark):
    fx = FXDistribution(BENCH_FS)
    total = benchmark(_sweep_array, fx, BENCH_QUERY)
    assert total == BENCH_QUERY.qualified_count


def bench_inverse_iterator_fx(benchmark):
    fx = FXDistribution(BENCH_FS)
    total = benchmark(_sweep_iterator, fx, BENCH_QUERY)
    assert total == BENCH_QUERY.qualified_count


def bench_inverse_array_modulo(benchmark):
    modulo = ModuloDistribution(BENCH_FS)
    total = benchmark(_sweep_array, modulo, BENCH_QUERY)
    assert total == BENCH_QUERY.qualified_count


# ----------------------------------------------------------------------
# Script mode: write BENCH_inverse.json
# ----------------------------------------------------------------------
def _check_bit_identical(method, query) -> None:
    for device in range(method.filesystem.m):
        expected = list(separable_qualified_on_device(method, device, query))
        got = separable_qualified_on_device_array(method, device, query)
        assert [tuple(row) for row in got.tolist()] == expected, (
            f"fast path diverged from iterator on device {device}"
        )


def _measure(fs: FileSystem, repeats: int) -> dict:
    fx = FXDistribution(fs)
    query = PartialMatchQuery.from_dict(fs, {0: 1})
    _check_bit_identical(fx, query)

    iter_seconds = []
    array_seconds = []
    buckets = query.qualified_count
    for __ in range(repeats):
        started = time.perf_counter()
        assert _sweep_iterator(fx, query) == buckets
        iter_seconds.append(time.perf_counter() - started)
        started = time.perf_counter()
        assert _sweep_array(fx, query) == buckets
        array_seconds.append(time.perf_counter() - started)
    iter_best = min(iter_seconds)
    array_best = min(array_seconds)
    return {
        "filesystem": fs.describe(),
        "bucket_count": fs.bucket_count,
        "query": query.describe(),
        "qualified_buckets": buckets,
        "repeats": repeats,
        "iterator_seconds": iter_best,
        "array_seconds": array_best,
        "iterator_buckets_per_sec": buckets / iter_best,
        "array_buckets_per_sec": buckets / array_best,
        "speedup": iter_best / array_best,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small file system for CI (correctness gate, no speedup floor)",
    )
    parser.add_argument("--out", default="BENCH_inverse.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    fs = SMOKE_FS if args.smoke else FULL_FS
    result = _measure(fs, max(1, args.repeats))
    result["mode"] = "smoke" if args.smoke else "full"
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(
        f"{result['mode']}: {result['qualified_buckets']} buckets on "
        f"{result['filesystem']}; iterator "
        f"{result['iterator_buckets_per_sec']:,.0f}/s, array "
        f"{result['array_buckets_per_sec']:,.0f}/s, "
        f"speedup {result['speedup']:.1f}x -> {args.out}"
    )
    if not args.smoke and result["speedup"] < 10.0:
        print("FAIL: full-mode speedup below the 10x acceptance floor")
        return 1
    if args.smoke and result["speedup"] < 1.0:
        # Even tiny grids should never be slower than the Python iterator.
        print("FAIL: smoke-mode fast path slower than the iterator")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
