"""Tables 1-6: regenerate the paper's worked example distributions.

Each benchmark recomputes one example table's full device column and checks
it cell-for-cell against the column printed in the paper.
"""

import pytest

from repro.experiments.golden import GOLDEN_TABLES, golden_table


@pytest.mark.parametrize("table_id", sorted(GOLDEN_TABLES))
def bench_example_table(benchmark, show, table_id):
    table = golden_table(table_id)
    computed = benchmark(table.computed_devices)
    assert computed == table.expected_devices
    if table.expected_modulo is not None:
        assert table.computed_modulo() == table.expected_modulo
    show(
        f"{table.caption}\n"
        f"buckets: {table.filesystem.bucket_count}, "
        f"devices match paper: yes"
    )
