"""Ablation: general linear transforms vs the paper's four families.

The paper's section 6 asks for "more general transformation functions".
Every published transform is a GF(2)-linear map on the field value's bits;
this benchmark searches random injective GF(2) matrices (scored exactly by
the rank criterion) and compares against the best assignment of the four
published families.

Finding: on the uniform four-small-field system (4, 4, 4, 4) with M = 32,
linear transforms reach a *perfect optimal* distribution while the best
I/U/IU1/IU2 assignment caps at 93.75% of patterns.
"""

from repro.analysis.optim_prob import exact_fraction
from repro.core.linear import random_matrix_search
from repro.distribution.search import exhaustive_assignment_search
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

FS = FileSystem.uniform(4, 4, m=32)


def bench_linear_vs_families(benchmark, show):
    linear = benchmark(random_matrix_search, FS, 500, 0.5, 1)
    families = exhaustive_assignment_search(FS)
    assert families.score < 1.0          # the four families cannot be perfect
    assert linear.score == 1.0           # random linear maps can
    # cross-check the linear result with the convolution engine
    assert exact_fraction(linear.build(FS)) == 1.0
    show(
        format_table(
            ["transform space", "best exact optimal fraction", "evaluations"],
            [
                ["I/U/IU1/IU2 (exhaustive)", families.score, families.evaluations],
                ["GF(2) linear (random search)", linear.score, linear.evaluations],
            ],
            title=f"Section 6 extension on {FS.describe()}",
            float_digits=4,
        )
    )


def bench_rank_criterion_throughput(benchmark):
    """The rank criterion is what makes matrix search cheap: census all
    2^n patterns of a 6-field system in one call."""
    from repro.core.fx import FXDistribution
    from repro.core.linear import linear_optimal_fraction, linearize

    fs = FileSystem.uniform(6, 8, m=32)
    matrices = linearize(FXDistribution(fs))
    fraction = benchmark(linear_optimal_fraction, fs, matrices)
    assert 0.0 < fraction <= 1.0
