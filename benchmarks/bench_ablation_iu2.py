"""Ablation: IU1 vs IU2 on the Table 9 file system (design choice 3).

The paper switches from IU1 to IU2 for Table 9 (M = 512, where field
squares stay below M).  This ablation quantifies what that buys: the
certified/exact optimal fraction and the k-sweep response sizes under both
variants.
"""

from repro.analysis.optim_prob import exact_fraction
from repro.analysis.response import average_largest_response
from repro.core.fx import FXDistribution
from repro.experiments.filesystems import table9_setup
from repro.util.tables import format_table


def _compare():
    fs = table9_setup().filesystem
    iu1 = FXDistribution(fs, policy="paper", variant="IU1")
    iu2 = FXDistribution(fs, policy="paper", variant="IU2")
    rows = []
    for name, fx in (("IU1", iu1), ("IU2", iu2)):
        responses = [
            average_largest_response(fx, k, weighted=False) for k in (3, 4, 5)
        ]
        rows.append((name, exact_fraction(fx), *responses))
    return rows


def bench_iu1_vs_iu2(benchmark, show):
    rows = benchmark(_compare)
    by_name = {row[0]: row for row in rows}
    # IU2 must not lose to IU1 on the scenario it was designed for
    assert by_name["IU2"][1] >= by_name["IU1"][1] - 1e-12
    show(
        format_table(
            ["variant", "optimal fraction", "k=3", "k=4", "k=5"],
            rows,
            title="IU1 vs IU2 on Table 9's file system",
            float_digits=3,
        )
    )
