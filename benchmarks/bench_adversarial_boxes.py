"""Extension benchmark: worst-case range queries per method.

Complements the average-case box numbers: adversarial hill climbing finds
each method's worst range box.  FX and GDM degrade gracefully; Z-order has
a catastrophic worst case (its device ignores high field bits entirely, so
an adversary confines the box to one low-bit residue class).
"""

from repro.analysis.adversary import worst_box_search
from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.zorder import ZOrderDistribution
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

FS = FileSystem.of(16, 16, m=8)


def _search_all():
    methods = {
        "FX": FXDistribution(FS),
        "Modulo": ModuloDistribution(FS),
        "GDM(3,5)": GDMDistribution(FS, multipliers=(3, 5)),
        "Z-order": ZOrderDistribution(FS),
    }
    rows = []
    for name, method in methods.items():
        result = worst_box_search(method, restarts=5, seed=1)
        rows.append((name, result.factor, result.box.describe()))
    return rows


def bench_worst_case_boxes(benchmark, show):
    rows = benchmark(_search_all)
    factors = {name: factor for name, factor, __ in rows}
    assert all(factor >= 1.0 for factor in factors.values())
    # the curve's worst case is the worst of the four
    assert factors["Z-order"] == max(factors.values())
    show(
        format_table(
            ["method", "worst load factor found", "worst box"],
            rows,
            title=f"Adversarial range boxes on {FS.describe()}",
            float_digits=2,
        )
    )
