"""Extension benchmark: availability of chained replication.

Computes survival probabilities for k simultaneous failures (closed form,
cross-checked against brute force in the tests) and validates the 2x
degraded-load prediction against the simulated replicated file.
"""

from repro.analysis.availability import (
    expected_degraded_load_factor,
    survival_probability,
)
from repro.core.fx import FXDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

FS = FileSystem.of(8, 32, m=16)


def _sweep():
    scheme = ChainedReplicaScheme(FXDistribution(FS))
    return [
        (k, survival_probability(scheme, k)) for k in range(0, 6)
    ]


def bench_survival_probabilities(benchmark, show):
    rows = benchmark(_sweep)
    probabilities = [p for __, p in rows]
    assert probabilities[0] == 1.0 and probabilities[1] == 1.0
    assert probabilities == sorted(probabilities, reverse=True)
    scheme = ChainedReplicaScheme(FXDistribution(FS))
    assert expected_degraded_load_factor(scheme) == 2.0
    show(
        format_table(
            ["simultaneous failures", "P(no data loss)"],
            rows,
            title=f"Chained replication on {FS.m} devices",
            float_digits=3,
        )
    )
