"""End-to-end substrate benchmark: insert and partial-match throughput.

Not a paper artefact per se, but the operational cost of the system the
paper's numbers sit on: multi-key hash, route, store, then execute a
partial match with inverse mapping on every simulated device.
"""

from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(16, 16, 16, m=8)
RECORDS = [(i, i * 31, f"name-{i % 101}") for i in range(2000)]


def _loaded():
    pf = PartitionedFile(FXDistribution(FS))
    pf.insert_all(RECORDS)
    return pf


def bench_insert_throughput(benchmark):
    pf = benchmark(_loaded)
    assert pf.record_count == len(RECORDS)


def bench_partial_match_execution(benchmark):
    pf = _loaded()
    executor = QueryExecutor(pf)
    query = pf.query({0: 1234})

    def run():
        return executor.execute(query)

    result = benchmark(run)
    assert sum(result.buckets_per_device) == query.qualified_count
