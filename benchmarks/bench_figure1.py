"""Figure 1: % strict-optimal queries, n = 6, pairwise FpFq >= M, I/U/IU1.

Sweeps the number of small fields from 0 to 6 and compares FX's section 4.2
conditions against Modulo's [DuSo82] condition, exactly as the paper did.
"""

from repro.experiments.figures import reproduce_figure, reproduce_figure_exact


def bench_figure1(benchmark, show):
    series = benchmark(reproduce_figure, "figure1")
    fd = series.series["FD (FX)"]
    md = series.series["MD (Modulo)"]
    # paper's qualitative shape: FX degrades gently, Modulo collapses
    assert fd == (100.0, 100.0, 100.0, 100.0, 98.4375, 96.875, 95.3125)
    assert md[-1] < 15.0
    assert all(f >= m for f, m in zip(fd, md))
    # the sufficient conditions are exact on this scenario
    exact = reproduce_figure_exact("figure1")
    assert exact.series["FD (FX)"] == fd
    show(series.render() + "\n\n" + exact.render())
