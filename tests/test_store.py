"""Tests for experiment artefact persistence (repro.experiments.store)."""

import json

import pytest

from repro.errors import AnalysisError
from repro.experiments.figures import reproduce_figure
from repro.experiments.response_tables import reproduce_table
from repro.experiments.store import (
    load_artifact,
    response_table_from_dict,
    response_table_to_dict,
    save_artifact,
    series_from_dict,
    series_to_dict,
)


@pytest.fixture(scope="module")
def table7():
    return reproduce_table("table7")


@pytest.fixture(scope="module")
def figure1():
    return reproduce_figure("figure1")


class TestResponseTableRoundTrip:
    def test_dict_round_trip(self, table7):
        restored = response_table_from_dict(response_table_to_dict(table7))
        assert restored == table7

    def test_file_round_trip(self, tmp_path, table7):
        path = tmp_path / "table7.json"
        save_artifact(path, table7)
        restored = load_artifact(path)
        assert restored.column("FX") == table7.column("FX")
        assert restored.filesystem == table7.filesystem

    def test_json_is_plain(self, table7):
        # must survive a strict json round trip (no custom types)
        data = json.loads(json.dumps(response_table_to_dict(table7)))
        assert data["kind"] == "response_table"

    def test_kind_mismatch_rejected(self, table7):
        data = response_table_to_dict(table7)
        data["kind"] = "optimality_series"
        with pytest.raises(AnalysisError):
            response_table_from_dict(data)

    def test_version_mismatch_rejected(self, table7):
        data = response_table_to_dict(table7)
        data["version"] = 99
        with pytest.raises(AnalysisError):
            response_table_from_dict(data)


class TestSeriesRoundTrip:
    def test_dict_round_trip(self, figure1):
        restored = series_from_dict(series_to_dict(figure1))
        assert restored == figure1

    def test_file_round_trip(self, tmp_path, figure1):
        path = tmp_path / "figure1.json"
        save_artifact(path, figure1)
        restored = load_artifact(path)
        assert restored.series == figure1.series


class TestDispatch:
    def test_unknown_kind_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "mystery", "version": 1}))
        with pytest.raises(AnalysisError):
            load_artifact(path)

    def test_unsupported_object_on_save(self, tmp_path):
        with pytest.raises(AnalysisError):
            save_artifact(tmp_path / "x.json", object())
