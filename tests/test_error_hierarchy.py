"""Every public entry point raises subclasses of ReproError."""

import pytest

from repro import errors
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    DataUnavailableError,
    DistributionError,
    FieldValueError,
    NotPowerOfTwoError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.hashing.fields import FileSystem

FS = FileSystem.of(4, 8, m=4)


class TestHierarchyShape:
    def test_every_exported_error_derives_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, ReproError), name

    def test_configuration_errors_stay_value_errors(self):
        """Compatibility contract: callers catching ValueError keep working."""
        for cls in (ConfigurationError, NotPowerOfTwoError, FieldValueError,
                    DistributionError, QueryError):
            assert issubclass(cls, ValueError), cls

    def test_storage_errors_stay_runtime_errors(self):
        assert issubclass(StorageError, RuntimeError)
        assert issubclass(DataUnavailableError, StorageError)
        assert issubclass(AnalysisError, RuntimeError)

    def test_data_unavailable_importable_from_both_homes(self):
        from repro.storage.replicated_file import (
            DataUnavailableError as reexported,
        )

        assert reexported is DataUnavailableError


class TestEntryPointsRaiseTyped:
    def test_filesystem_validation(self):
        with pytest.raises(NotPowerOfTwoError):
            FileSystem.of(3, 8, m=4)
        with pytest.raises(ConfigurationError):
            FileSystem.of(4, 8, m=5)

    def test_field_value_out_of_domain(self):
        from repro.distribution.gdm import GDMDistribution
        from repro.distribution.modulo import ModuloDistribution

        with pytest.raises(FieldValueError):
            ModuloDistribution(FS).field_contribution(0, 99)
        with pytest.raises(FieldValueError):
            GDMDistribution(FS, (3, 5)).field_contribution(1, -1)

    def test_bitops_and_numbers_raise_configuration_errors(self):
        from repro.core.bitops import truncate
        from repro.util.numbers import ceil_div, ilog2, modinv

        for call in (
            lambda: ilog2(0),
            lambda: ceil_div(1, 0),
            lambda: modinv(2, 4),
            lambda: truncate(-1, 4),
        ):
            with pytest.raises(ConfigurationError):
                call()
            with pytest.raises(ValueError):  # old contract still honoured
                call()

    def test_query_validation(self):
        from repro.query.partial_match import PartialMatchQuery

        with pytest.raises(QueryError):
            PartialMatchQuery.from_dict(FS, {7: 0})

    def test_cross_filesystem_query_rejected(self):
        from repro.core.fx import FXDistribution
        from repro.query.partial_match import PartialMatchQuery

        other = PartialMatchQuery.from_dict(FileSystem.of(4, 4, m=4), {0: 1})
        with pytest.raises(DistributionError):
            FXDistribution(FS).response_histogram(other)

    def test_double_failure_raises_data_unavailable(self):
        from repro.core.fx import FXDistribution
        from repro.distribution.replicated import ChainedReplicaScheme
        from repro.storage.replicated_file import ReplicatedFile

        rf = ReplicatedFile(ChainedReplicaScheme(FXDistribution(FS)))
        rf.insert_all([(i % 4, i % 8) for i in range(16)])
        rf.fail_device(0)
        rf.fail_device(1)
        with pytest.raises(DataUnavailableError):
            rf.search({})
        # and it is catchable as the generic library error
        with pytest.raises(ReproError):
            rf.search({})

    def test_analysis_errors(self):
        from repro.analysis.availability import (
            count_survivable_sets,
            reroute_histogram,
        )

        with pytest.raises(AnalysisError):
            count_survivable_sets(0, 1)
        with pytest.raises(AnalysisError):
            reroute_histogram([1, 1], {5})

    def test_one_except_clause_catches_everything(self):
        from repro.api import make_method
        from repro.runtime import FaultPlan, RetryPolicy

        attempts = (
            lambda: make_method("nope", fields=(4, 4), devices=4),
            lambda: FaultPlan(transient_error_rate=2.0),
            lambda: RetryPolicy(max_attempts=0),
            lambda: FileSystem.of(5, m=4),
        )
        for attempt in attempts:
            try:
                attempt()
            except ReproError:
                continue
            raise AssertionError(f"{attempt} did not raise a ReproError")
