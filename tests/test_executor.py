"""Integration tests: partial match execution end to end."""

import pytest

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.costs import DiskCostModel, UnitCostModel
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile


def _loaded_file(method_factory, m=4, n_records=200):
    fs = FileSystem.of(4, 8, m=m)
    pf = PartitionedFile(method_factory(fs), cost_model=UnitCostModel())
    pf.insert_all([(i, f"name-{i % 17}") for i in range(n_records)])
    return pf


class TestExecutionCorrectness:
    @pytest.mark.parametrize(
        "method_factory", [FXDistribution, ModuloDistribution]
    )
    def test_search_returns_all_matching_bucket_records(self, method_factory):
        pf = _loaded_file(method_factory)
        result = pf.search({0: 42})
        # ground truth: scan every device's store directly
        query = pf.query({0: 42})
        expected = []
        for device in pf.devices:
            for bucket in device.store.buckets():
                if query.matches(bucket):
                    expected.extend(device.store.records_in(bucket))
        assert sorted(map(str, result.records)) == sorted(map(str, expected))

    def test_inserted_record_is_findable(self):
        pf = _loaded_file(FXDistribution)
        pf.insert((999, "needle"))
        result = pf.search({0: 999, 1: "needle"})
        assert (999, "needle") in result.records

    def test_bucket_counts_sum_to_qualified(self):
        pf = _loaded_file(FXDistribution)
        result = pf.search({0: 5})
        query = pf.query({0: 5})
        assert sum(result.buckets_per_device) == query.qualified_count

    def test_exact_match_touches_one_device(self):
        pf = _loaded_file(FXDistribution)
        result = pf.search({0: 3, 1: "name-4"})
        assert sum(1 for c in result.buckets_per_device if c) == 1


class TestExecutionDiagnostics:
    def test_unit_cost_time_equals_largest_response(self):
        pf = _loaded_file(FXDistribution)
        query = pf.query({0: 7})
        result = QueryExecutor(pf).execute(query)
        assert result.response_time_ms == float(result.largest_response)

    def test_strict_optimal_flag_matches_method(self):
        pf = _loaded_file(FXDistribution)
        query = pf.query({0: 1})
        result = QueryExecutor(pf).execute(query)
        assert result.strict_optimal == pf.method.is_strict_optimal_for(query)

    def test_speedup_reflects_parallelism(self):
        pf = _loaded_file(FXDistribution, m=4)
        query = PartialMatchQuery.full_scan(pf.filesystem)
        result = QueryExecutor(pf).execute(query)
        # FX spreads the full scan perfectly: speedup == M
        assert result.speedup == pytest.approx(4.0)

    def test_summary_text(self):
        pf = _loaded_file(FXDistribution)
        result = pf.search({0: 2})
        text = result.summary()
        assert "records" in text
        assert "largest response" in text

    def test_speedup_degenerate_cases_reported_honestly(self):
        # Regression: zero response time with non-zero serial work used to
        # report a flat 1.0, hiding unbounded speedup behind "no speedup".
        from repro.storage.executor import ExecutionResult

        fs = FileSystem.of(4, 8, m=4)
        query = PartialMatchQuery.full_scan(fs)
        busy = ExecutionResult(
            query=query, response_time_ms=0.0, total_service_ms=7.5
        )
        assert busy.speedup == float("inf")
        idle = ExecutionResult(
            query=query, response_time_ms=0.0, total_service_ms=0.0
        )
        assert idle.speedup == 1.0
        assert idle.to_dict()["speedup"] == 1.0

    def test_disk_model_seek_included(self):
        fs = FileSystem.of(4, 8, m=4)
        pf = PartitionedFile(
            FXDistribution(fs),
            cost_model=DiskCostModel(seek_ms=10.0, transfer_ms_per_bucket=1.0),
        )
        pf.insert((0, "x"))
        query = PartialMatchQuery.full_scan(fs)
        result = QueryExecutor(pf).execute(query)
        # 32 buckets over 4 devices -> 8 per device -> 10 + 8 ms
        assert result.response_time_ms == pytest.approx(18.0)

    def test_empty_query_on_empty_file(self):
        fs = FileSystem.of(4, 8, m=4)
        pf = PartitionedFile(FXDistribution(fs))
        result = QueryExecutor(pf).execute(PartialMatchQuery.exact(fs, (0, 0)))
        assert result.records == []
        assert result.largest_response == 1  # one qualified bucket, one home


class TestCrossMethodComparison:
    def test_fx_response_never_worse_than_modulo_on_small_fields(self):
        """End-to-end restatement of the paper's section 5 comparison."""
        fs = FileSystem.of(4, 4, m=16)
        records = [(i, f"tag-{i % 13}") for i in range(300)]
        results = {}
        for name, factory in (
            ("fx", lambda f: FXDistribution(f, transforms=["I", "U"])),
            ("modulo", ModuloDistribution),
        ):
            pf = PartitionedFile(factory(fs), cost_model=UnitCostModel())
            pf.insert_all(records)
            query = PartialMatchQuery.full_scan(fs)
            results[name] = QueryExecutor(pf).execute(query).largest_response
        assert results["fx"] <= results["modulo"]
