"""Package-level sanity: public API surface and error hierarchy."""

import importlib

import pytest

import repro
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    DeviceFullError,
    DistributionError,
    FieldValueError,
    NotPowerOfTwoError,
    QueryError,
    ReproError,
    StorageError,
    TransformError,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        """The example in the package docstring must actually work."""
        fs = repro.FileSystem.of(2, 8, m=4)
        fx = repro.FXDistribution(fs)
        assert fx.device_of((1, 6)) == 3
        q = repro.PartialMatchQuery.from_dict(fs, {0: 1})
        assert fx.response_histogram(q) == [2, 2, 2, 2]

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.distribution",
            "repro.hashing",
            "repro.query",
            "repro.storage",
            "repro.analysis",
            "repro.experiments",
            "repro.util",
        ],
    )
    def test_subpackages_importable(self, module):
        importlib.import_module(module)

    def test_registry_covers_paper_methods(self):
        names = repro.available_methods()
        assert {"fx", "fx-basic", "modulo", "gdm"} <= set(names)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            NotPowerOfTwoError,
            FieldValueError,
            TransformError,
            DistributionError,
            QueryError,
            StorageError,
            DeviceFullError,
            AnalysisError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        # Configuration mistakes should answer to the stdlib idiom too.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(QueryError, ValueError)

    def test_not_power_of_two_carries_context(self):
        error = NotPowerOfTwoError("M", 12)
        assert error.name == "M"
        assert error.value == 12

    def test_library_raises_catchable_base(self):
        with pytest.raises(ReproError):
            repro.FileSystem.of(3, m=4)
