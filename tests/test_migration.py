"""Tests for online migration between distribution methods."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.errors import AnalysisError, StorageError
from repro.hashing.fields import FileSystem
from repro.storage.migration import Migration, moved_fraction
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(4, 8, m=8)


class TestMovedFraction:
    def test_identical_methods_move_nothing(self):
        assert moved_fraction(FXDistribution(FS), FXDistribution(FS)) == 0.0

    def test_filesystem_mismatch(self):
        other = FileSystem.of(4, 8, m=4)
        with pytest.raises(AnalysisError):
            moved_fraction(FXDistribution(FS), FXDistribution(other))

    @given(
        st.sampled_from(
            [
                ("fx-fx", lambda fs: FXDistribution(fs, policy="paper"),
                 lambda fs: FXDistribution(fs, policy="theorem9")),
                ("mod-gdm", ModuloDistribution,
                 lambda fs: GDMDistribution(fs, multipliers=(3, 5))),
            ]
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_separable_fast_path_matches_enumeration(self, case):
        __, build_a, build_b = case
        a, b = build_a(FS), build_b(FS)
        fast = moved_fraction(a, b)
        brute = sum(
            1 for bucket in FS.buckets()
            if a.device_of(bucket) != b.device_of(bucket)
        ) / FS.bucket_count
        assert fast == pytest.approx(brute)

    def test_cross_group_fallback_matches_enumeration(self):
        # FX (xor) vs Modulo (add): no shared group, so enumeration runs.
        a, b = FXDistribution(FS), ModuloDistribution(FS)
        brute = sum(
            1 for bucket in FS.buckets()
            if a.device_of(bucket) != b.device_of(bucket)
        ) / FS.bucket_count
        assert moved_fraction(a, b) == pytest.approx(brute)

    def test_non_separable_fallback(self):
        value = moved_fraction(FXDistribution(FS), RandomDistribution(FS, seed=1))
        assert 0.0 < value <= 1.0

    def test_enumeration_limit(self):
        big = FileSystem.of(2048, 1024, m=4)
        with pytest.raises(AnalysisError):
            moved_fraction(FXDistribution(big), RandomDistribution(big))


class TestMigrationApply:
    def _loaded(self, method):
        pf = PartitionedFile(method)
        pf.insert_all([(i, f"n{i % 5}") for i in range(150)])
        return pf

    def test_apply_switches_method_and_preserves_records(self):
        pf = self._loaded(ModuloDistribution(FS))
        target = FXDistribution(FS)
        report = Migration(pf, target).apply()
        assert pf.method is target
        assert pf.record_count == 150
        pf.check_invariants()
        assert report.buckets_moved + report.buckets_in_place > 0

    def test_search_still_works_after_migration(self):
        pf = self._loaded(ModuloDistribution(FS))
        before = sorted(map(str, pf.search({0: 7}).records))
        Migration(pf, FXDistribution(FS)).apply()
        after = sorted(map(str, pf.search({0: 7}).records))
        assert before == after

    def test_noop_migration_moves_nothing(self):
        method = FXDistribution(FS)
        pf = self._loaded(method)
        report = Migration(pf, FXDistribution(FS)).apply()
        assert report.buckets_moved == 0
        assert report.records_moved == 0
        assert report.moved_record_fraction == 0.0

    def test_planned_fraction_consistent_with_applied(self):
        pf = PartitionedFile(ModuloDistribution(FS))
        # diverse attributes so every grid bucket ends up occupied
        pf.insert_all([(i, f"n{i}") for i in range(600)])
        migration = Migration(pf, FXDistribution(FS))
        planned = migration.planned_fraction()
        report = migration.apply()
        occupied = report.buckets_moved + report.buckets_in_place
        # applied fraction is over *occupied* buckets; with the full grid
        # occupied the two fractions coincide exactly
        assert occupied == FS.bucket_count
        assert report.buckets_moved / occupied == pytest.approx(planned)

    def test_filesystem_mismatch_rejected(self):
        pf = self._loaded(FXDistribution(FS))
        other = FileSystem.of(4, 8, m=4)
        with pytest.raises(StorageError):
            Migration(pf, FXDistribution(other))

    def test_corrupted_file_detected(self):
        pf = self._loaded(FXDistribution(FS))
        # plant a bucket on the wrong device
        rogue_bucket = (0, 0)
        wrong = (pf.method.device_of(rogue_bucket) + 1) % FS.m
        pf.devices[wrong].insert(rogue_bucket, ("rogue",))
        with pytest.raises(StorageError):
            Migration(pf, ModuloDistribution(FS)).apply()

    def test_moves_listed(self):
        pf = self._loaded(ModuloDistribution(FS))
        report = Migration(pf, FXDistribution(FS)).apply()
        for bucket, origin, destination in report.moves:
            assert origin != destination
            assert pf.method.device_of(bucket) == destination


class TestRedeclusterAnalysis:
    def test_worthwhile_upgrade(self):
        from repro.storage.migration import redecluster_analysis

        fs = FileSystem.of(4, 4, m=16)
        analysis = redecluster_analysis(
            ModuloDistribution(fs), FXDistribution(fs, transforms=["I", "U"])
        )
        assert analysis.worthwhile
        assert analysis.expected_largest_after < analysis.expected_largest_before
        assert 0.0 < analysis.moved_fraction <= 1.0
        assert 0.0 < analysis.break_even_queries < float("inf")

    def test_pointless_migration_never_breaks_even(self):
        from repro.storage.migration import redecluster_analysis

        fs = FileSystem.of(4, 4, m=16)
        good = FXDistribution(fs, transforms=["I", "U"])
        bad = ModuloDistribution(fs)
        analysis = redecluster_analysis(good, bad)
        assert not analysis.worthwhile
        assert analysis.break_even_queries == float("inf")

    def test_identity_migration_breaks_even_immediately_or_never(self):
        from repro.storage.migration import redecluster_analysis

        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "U"])
        analysis = redecluster_analysis(fx, FXDistribution(fs, transforms=["I", "U"]))
        assert analysis.moved_fraction == 0.0
        # same expected response, zero cost: nothing to break even on
        assert analysis.break_even_queries == float("inf")


class TestZOrderMigrationMath:
    def test_zorder_fx_share_xor_group_fast_path(self):
        from repro.distribution.zorder import ZOrderDistribution

        a = ZOrderDistribution(FS)
        b = FXDistribution(FS)
        fast = moved_fraction(a, b)
        brute = sum(
            1 for bucket in FS.buckets()
            if a.device_of(bucket) != b.device_of(bucket)
        ) / FS.bucket_count
        assert fast == pytest.approx(brute)
