"""Tests for Basic and Extended FX distribution (paper sections 3-4)."""

import pytest

from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.core.transforms import IU1Transform, IdentityTransform
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.query.patterns import all_patterns, representative_query
from repro.util.numbers import ceil_div


class TestBasicFX:
    def test_paper_table1(self):
        fs = FileSystem.of(2, 8, m=4)
        fx = BasicFXDistribution(fs)
        expected = [0, 1, 2, 3, 0, 1, 2, 3, 1, 0, 3, 2, 1, 0, 3, 2]
        assert [fx.device_of(b) for b in fs.buckets()] == expected

    def test_device_is_truncated_xor(self):
        fs = FileSystem.of(8, 8, m=4)
        fx = BasicFXDistribution(fs)
        assert fx.device_of((5, 6)) == (5 ^ 6) & 3

    def test_example_1_strict_optimality(self):
        # Section 3: first field (001), second unspecified -> 2 per device.
        fs = FileSystem.of(2, 8, m=4)
        fx = BasicFXDistribution(fs)
        q = PartialMatchQuery.from_dict(fs, {0: 1})
        assert fx.response_histogram(q) == [2, 2, 2, 2]

    def test_theorem1_zero_and_one_optimal(self):
        """Theorem 1: Basic FX is always 0-optimal and 1-optimal."""
        for sizes, m in [((2, 8), 4), ((4, 4, 2), 16), ((8, 2, 4), 8)]:
            fs = FileSystem.of(*sizes, m=m)
            fx = BasicFXDistribution(fs)
            for pattern in all_patterns(fs.n_fields):
                if len(pattern) > 1:
                    continue
                q = representative_query(fs, pattern)
                assert fx.is_strict_optimal_for(q)

    def test_theorem2_large_unspecified_field(self):
        """Theorem 2: any unspecified field with F >= M makes FX optimal."""
        fs = FileSystem.of(2, 2, 16, m=16)
        fx = BasicFXDistribution(fs)
        for pattern in all_patterns(fs.n_fields):
            if 2 not in pattern:
                continue
            q = representative_query(fs, pattern)
            assert fx.is_strict_optimal_for(q)

    def test_not_optimal_when_all_unspecified_small(self):
        # Section 3's counterexample: example 1's file system with M = 16.
        fs = FileSystem.of(2, 8, m=16)
        fx = BasicFXDistribution(fs)
        q = PartialMatchQuery.full_scan(fs)
        assert not fx.is_strict_optimal_for(q)


class TestExtendedFX:
    def test_default_policy_is_paper(self):
        fs = FileSystem.uniform(6, 8, m=32)
        fx = FXDistribution(fs)
        assert fx.transform_methods() == ("I", "U", "IU1", "I", "U", "IU1")

    def test_field_transformation_fixes_small_fields(self):
        # Section 3's closing example: X(f1) = {0, 8} makes F=(2,8), M=16
        # perfect optimal.  U transformation realises exactly that map.
        fs = FileSystem.of(2, 8, m=16)
        fx = FXDistribution(fs, transforms=["U", "I"])
        from repro.core.optimality import is_perfect_optimal

        assert is_perfect_optimal(fx)

    def test_transform_objects_accepted(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(
            fs,
            transforms=[IdentityTransform(4, 16), IU1Transform(4, 16)],
        )
        assert fx.transform_methods() == ("I", "IU1")

    def test_transform_object_wrong_field_size(self):
        fs = FileSystem.of(4, 4, m=16)
        with pytest.raises(ConfigurationError):
            FXDistribution(fs, transforms=[IdentityTransform(8, 16),
                                           IU1Transform(4, 16)])

    def test_transform_object_wrong_m(self):
        fs = FileSystem.of(4, 4, m=16)
        with pytest.raises(ConfigurationError):
            FXDistribution(fs, transforms=[IdentityTransform(4, 8),
                                           IU1Transform(4, 8)])

    def test_transform_count_checked(self):
        fs = FileSystem.of(4, 4, m=16)
        with pytest.raises(ConfigurationError):
            FXDistribution(fs, transforms=["I"])

    def test_mixed_names_and_objects_rejected(self):
        fs = FileSystem.of(4, 4, m=16)
        with pytest.raises(ConfigurationError):
            FXDistribution(fs, transforms=["I", IU1Transform(4, 16)])

    def test_effective_methods_reported(self):
        # IU2 on F=8, M=16 collapses to IU1.
        fs = FileSystem.of(8, 8, m=16)
        fx = FXDistribution(fs, transforms=["I", "IU2"])
        assert fx.transform_methods() == ("I", "IU1")

    def test_describe_mentions_transforms(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "U"])
        assert "I,U" in fx.describe()


class TestFXPerfectOptimality:
    """Theorems 4-9: perfect optimality of the two- and three-small-field
    configurations, verified empirically over every pattern and value."""

    @pytest.mark.parametrize(
        "sizes,m,transforms",
        [
            ((4, 4), 16, ("I", "U")),       # Theorem 4
            ((4, 4), 16, ("I", "IU1")),     # Theorem 5
            ((4, 8), 16, ("U", "IU1")),     # Theorem 6
            ((8, 2), 16, ("I", "IU2")),     # Theorem 7
            ((4, 2), 16, ("U", "IU2")),     # Theorem 8
            ((4, 2, 2), 16, ("I", "U", "IU2")),  # Theorem 9 / Lemma 9.1
            ((8, 2, 4), 32, ("I", "U", "IU2")),  # Theorem 9, mixed sizes
        ],
    )
    def test_configuration_is_perfect_optimal(self, sizes, m, transforms):
        fs = FileSystem.of(*sizes, m=m)
        fx = FXDistribution(fs, transforms=list(transforms))
        for pattern in all_patterns(fs.n_fields):
            qualified = 1
            for i in pattern:
                qualified *= sizes[i]
            bound = ceil_div(qualified, m)
            worst = max(
                fx.largest_response(q)
                for q in _queries(fs, pattern)
            )
            assert worst <= bound, (pattern, worst, bound)

    def test_theorem9_policy_perfect_optimal_three_small(self):
        from repro.core.optimality import is_perfect_optimal

        fs = FileSystem.of(8, 2, 4, 32, m=32)
        fx = FXDistribution(fs, policy="theorem9")
        assert is_perfect_optimal(fx)

    def test_same_transform_twice_not_optimal(self):
        # Two I-transformed small fields collide: XOR of equal sets piles
        # onto device 0.
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "I"])
        q = PartialMatchQuery.full_scan(fs)
        assert not fx.is_strict_optimal_for(q)


def _queries(fs, pattern):
    from repro.query.patterns import queries_for_pattern

    return queries_for_pattern(fs, pattern)
