"""Tests for file-level statistics snapshots (repro.storage.stats)."""

from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.storage.paged_store import PagedBucketStore
from repro.storage.parallel_file import PartitionedFile
from repro.storage.stats import collect_stats

FS = FileSystem.of(4, 8, m=4)


def _loaded(store_factory=None, count=120):
    pf = PartitionedFile(FXDistribution(FS), store_factory=store_factory)
    pf.insert_all([(i, f"r{i}") for i in range(count)])
    return pf


class TestCollectStats:
    def test_totals_and_ordering(self):
        pf = _loaded()
        stats = collect_stats(pf)
        assert stats.total_records == 120
        assert [s.device_id for s in stats.devices] == list(range(FS.m))
        assert sum(s.records for s in stats.devices) == 120

    def test_balance_aggregates(self):
        pf = _loaded()
        stats = collect_stats(pf)
        assert stats.max_over_mean_records >= 1.0
        assert 0.0 <= stats.record_gini < 1.0

    def test_empty_file(self):
        pf = PartitionedFile(FXDistribution(FS))
        stats = collect_stats(pf)
        assert stats.total_records == 0
        assert stats.max_over_mean_records == 0.0
        assert stats.record_gini == 0.0

    def test_read_counters_flow_through(self):
        pf = _loaded()
        pf.search({0: 1})
        stats = collect_stats(pf)
        assert sum(s.bucket_reads for s in stats.devices) > 0
        assert sum(s.busy_time_ms for s in stats.devices) > 0.0

    def test_paged_store_reports_pages(self):
        pf = _loaded(store_factory=lambda: PagedBucketStore(page_capacity=2))
        stats = collect_stats(pf)
        assert all(s.pages is not None and s.pages > 0 for s in stats.devices)

    def test_plain_store_pages_none(self):
        stats = collect_stats(_loaded())
        assert all(s.pages is None for s in stats.devices)

    def test_render(self):
        pf = _loaded(store_factory=lambda: PagedBucketStore(page_capacity=2))
        text = collect_stats(pf).render()
        assert "balance max/mean" in text
        assert "pages" in text

    def test_render_plain_store_uses_dash(self):
        text = collect_stats(_loaded()).render()
        assert " -" in text
