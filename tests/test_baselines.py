"""Regression guard: fresh runs must match the stored baseline artefacts.

``data/baselines/*.json`` hold the reproduced tables and figures as of the
repository's release.  Any code change that silently shifts a number in the
evaluation fails here first, with a per-cell diff.
"""

import pathlib

import pytest

from repro.experiments.figures import reproduce_figure
from repro.experiments.response_tables import reproduce_table
from repro.experiments.store import load_artifact

BASELINE_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "data" / "baselines"
)


def test_baselines_present():
    names = {path.stem for path in BASELINE_DIR.glob("*.json")}
    assert {"table7", "table8", "table9"} <= names
    assert {"figure1", "figure2", "figure3", "figure4"} <= names


@pytest.mark.parametrize("table_id", ["table7", "table8", "table9"])
def test_tables_match_baseline(table_id):
    stored = load_artifact(BASELINE_DIR / f"{table_id}.json")
    fresh = reproduce_table(table_id)
    assert fresh.columns == stored.columns
    assert fresh.ks == stored.ks
    for row_index, (fresh_row, stored_row) in enumerate(
        zip(fresh.rows, stored.rows)
    ):
        for column, fresh_value, stored_value in zip(
            fresh.columns, fresh_row, stored_row
        ):
            assert fresh_value == pytest.approx(stored_value, rel=1e-12), (
                f"{table_id} k={fresh.ks[row_index]} column {column}: "
                f"{fresh_value} != baseline {stored_value}"
            )


@pytest.mark.parametrize(
    "figure_id", ["figure1", "figure2", "figure3", "figure4"]
)
def test_figures_match_baseline(figure_id):
    stored = load_artifact(BASELINE_DIR / f"{figure_id}.json")
    fresh = reproduce_figure(figure_id)
    assert fresh.x == stored.x
    assert set(fresh.series) == set(stored.series)
    for name, values in fresh.series.items():
        assert values == pytest.approx(stored.series[name], rel=1e-12), name
