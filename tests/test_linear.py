"""Tests for linear field transformations and the rank criterion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histograms import evaluator_for
from repro.analysis.optim_prob import exact_fraction
from repro.core.fx import FXDistribution
from repro.core.gf2 import GF2Matrix
from repro.core.linear import (
    LinearTransform,
    linear_optimal_fraction,
    linear_pattern_is_optimal,
    linearize,
    matrix_of_transform,
    random_matrix_search,
)
from repro.core.transforms import make_transform
from repro.errors import ConfigurationError, TransformError
from repro.hashing.fields import FileSystem
from repro.query.patterns import all_patterns


class TestMatrixOfTransform:
    @pytest.mark.parametrize(
        "family,f,m",
        [
            ("I", 4, 16),
            ("U", 4, 16),
            ("U", 2, 32),
            ("IU1", 8, 16),
            ("IU1", 4, 64),
            ("IU2", 2, 16),
            ("IU2", 4, 64),
            ("IU2", 8, 16),  # collapsed to IU1
        ],
    )
    def test_matrix_equals_function(self, family, f, m):
        """Every paper transform IS a linear map: matrix == function."""
        transform = make_transform(family, f, m)
        matrix = matrix_of_transform(transform)
        assert all(
            matrix.apply(v) == transform.apply(v) for v in range(f)
        )

    def test_large_field_identity_is_projection(self):
        transform = make_transform("I", 64, 8)
        matrix = matrix_of_transform(transform)
        assert all(matrix.apply(v) == (v & 7) for v in range(64))

    def test_linearize_covers_all_fields(self):
        fs = FileSystem.of(4, 32, 8, m=16)
        fx = FXDistribution(fs)
        matrices = linearize(fx)
        assert len(matrices) == 3
        assert all(m.n_rows == 4 for m in matrices)  # log2 16


class TestLinearTransform:
    def test_acts_like_its_matrix(self):
        matrix = GF2Matrix.from_rows([[1, 0], [1, 1], [0, 1], [0, 0]])
        t = LinearTransform(4, 16, matrix)
        assert t.image() == tuple(matrix.apply(v) for v in range(4))

    def test_injectivity_required(self):
        singular = GF2Matrix.from_rows([[1, 1], [0, 0], [0, 0], [0, 0]])
        with pytest.raises(TransformError):
            LinearTransform(4, 16, singular)

    def test_shape_checked(self):
        with pytest.raises(TransformError):
            LinearTransform(4, 16, GF2Matrix.identity(3))

    def test_random_is_injective(self):
        rng = random.Random(11)
        for __ in range(10):
            t = LinearTransform.random(8, 32, rng)
            assert len(set(t.image())) == 8

    def test_usable_inside_fx(self):
        fs = FileSystem.of(4, 4, m=16)
        rng = random.Random(5)
        fx = FXDistribution(
            fs,
            transforms=[
                LinearTransform.random(4, 16, rng),
                LinearTransform.random(4, 16, rng),
            ],
        )
        histogram = evaluator_for(fx).histogram(frozenset({0}))
        assert int(histogram.sum()) == 4

    def test_equality_and_hash(self):
        matrix = GF2Matrix.from_rows([[1, 0], [0, 1], [0, 0], [0, 0]])
        a = LinearTransform(4, 16, matrix)
        b = LinearTransform(4, 16, matrix)
        assert a == b and hash(a) == hash(b)


# Randomised agreement between the rank criterion and the engine ------------

_SIZES = st.sampled_from([2, 4, 8, 16])


@st.composite
def fx_instances(draw):
    n = draw(st.integers(2, 5))
    m = draw(st.sampled_from([4, 8, 16, 32]))
    sizes = [draw(_SIZES) for __ in range(n)]
    methods = [
        "I" if size >= m else draw(st.sampled_from(["I", "U", "IU1", "IU2"]))
        for size in sizes
    ]
    fs = FileSystem.of(*sizes, m=m)
    return FXDistribution(fs, transforms=methods)


class TestRankCriterion:
    @given(fx_instances())
    @settings(max_examples=50, deadline=None)
    def test_rank_criterion_equals_convolution_engine(self, fx):
        """Two fully independent exact evaluators must agree everywhere."""
        matrices = linearize(fx)
        evaluator = evaluator_for(fx)
        m = fx.filesystem.m
        for pattern in all_patterns(fx.filesystem.n_fields):
            assert linear_pattern_is_optimal(
                matrices, pattern, m
            ) == evaluator.is_strict_optimal(pattern)

    def test_empty_pattern_optimal(self):
        assert linear_pattern_is_optimal([], frozenset(), 8)

    def test_fraction_matches_exact_fraction(self):
        fs = FileSystem.of(4, 4, 8, m=16)
        fx = FXDistribution(fs, policy="paper")
        assert linear_optimal_fraction(fs, linearize(fx)) == pytest.approx(
            exact_fraction(fx)
        )

    def test_fraction_matrix_count_checked(self):
        fs = FileSystem.of(4, 4, m=16)
        with pytest.raises(ConfigurationError):
            linear_optimal_fraction(fs, [GF2Matrix.identity(4)])


class TestRandomMatrixSearch:
    def test_beats_paper_families_on_uniform_four_small(self):
        """Headline extension result: linear transforms reach perfect
        optimality where no I/U/IU1/IU2 assignment can (best 0.9375)."""
        fs = FileSystem.uniform(4, 4, m=32)
        result = random_matrix_search(fs, iterations=500, seed=1)
        assert result.score == 1.0
        # verified with the independent convolution engine:
        assert exact_fraction(result.build(fs)) == 1.0

    def test_large_fields_keep_identity(self):
        fs = FileSystem.of(4, 32, m=16)
        result = random_matrix_search(fs, iterations=5, seed=0)
        assert result.transforms[1].method == "I"

    def test_deterministic(self):
        fs = FileSystem.of(4, 4, m=16)
        a = random_matrix_search(fs, iterations=20, seed=9)
        b = random_matrix_search(fs, iterations=20, seed=9)
        assert a.score == b.score
        assert [t.matrix for t in a.transforms] == [
            t.matrix for t in b.transforms
        ]

    def test_iterations_positive(self):
        with pytest.raises(ConfigurationError):
            random_matrix_search(FileSystem.of(4, 4, m=16), iterations=0)

    def test_history_monotone(self):
        fs = FileSystem.uniform(4, 4, m=32)
        result = random_matrix_search(fs, iterations=100, seed=4)
        scores = [score for __, score in result.history]
        assert scores == sorted(scores)
