"""Tests for workload estimation (repro.query.estimator)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.estimator import estimate_workload
from repro.query.partial_match import PartialMatchQuery
from repro.query.workload import QueryWorkload, WorkloadSpec

FS = FileSystem.of(4, 4, 8, m=4)


class TestEstimation:
    def test_point_estimates(self):
        queries = [
            PartialMatchQuery.from_dict(FS, {0: 1}),
            PartialMatchQuery.from_dict(FS, {0: 2, 1: 3}),
            PartialMatchQuery.from_dict(FS, {0: 3}),
            PartialMatchQuery.from_dict(FS, {}),
        ]
        estimate = estimate_workload(queries)
        assert estimate.probabilities() == (0.75, 0.25, 0.0)
        assert estimate.samples == 4

    def test_intervals_contain_point_estimate(self):
        workload = QueryWorkload(FS, WorkloadSpec(seed=5))
        estimate = estimate_workload(workload.take(100))
        for f in estimate.fields:
            assert f.low <= f.probability <= f.high

    def test_intervals_shrink_with_samples(self):
        workload = QueryWorkload(FS, WorkloadSpec(seed=5))
        small = estimate_workload(workload.take(20))
        workload.reset()
        large = estimate_workload(workload.take(500))
        for s, l in zip(small.fields, large.fields):
            assert (l.high - l.low) < (s.high - s.low)

    def test_empty_sample_rejected(self):
        with pytest.raises(AnalysisError):
            estimate_workload([])

    def test_mixed_filesystems_rejected(self):
        other = FileSystem.of(4, 4, m=4)
        with pytest.raises(AnalysisError):
            estimate_workload(
                [
                    PartialMatchQuery.full_scan(FS),
                    PartialMatchQuery.full_scan(other),
                ]
            )


class TestIndependenceDiagnostic:
    def test_independent_workload_passes(self):
        workload = QueryWorkload(
            FS, WorkloadSpec(spec_probability=0.5, seed=9)
        )
        estimate = estimate_workload(workload.take(800))
        assert estimate.looks_independent(tolerance=0.08)

    def test_perfectly_correlated_fields_flagged(self):
        # fields 0 and 1 always specified together or not at all
        queries = []
        for i in range(50):
            if i % 2:
                queries.append(PartialMatchQuery.from_dict(FS, {0: 1, 1: 1}))
            else:
                queries.append(PartialMatchQuery.from_dict(FS, {2: 0}))
        estimate = estimate_workload(queries)
        assert not estimate.looks_independent(tolerance=0.1)
        assert estimate.max_pairwise_dependence == pytest.approx(0.25)

    @given(st.floats(0.1, 0.9))
    @settings(max_examples=10, deadline=None)
    def test_recovers_generator_probability(self, p):
        workload = QueryWorkload(
            FS, WorkloadSpec(spec_probability=p, seed=3)
        )
        estimate = estimate_workload(workload.take(600))
        for f in estimate.fields:
            assert f.low <= p <= f.high or abs(f.probability - p) < 0.08


class TestEndToEndWithDesign:
    def test_estimates_feed_the_optimiser(self):
        from repro.hashing.design import design_directory

        workload = QueryWorkload(
            FS, WorkloadSpec(spec_probability=(0.9, 0.5, 0.1), seed=7)
        )
        estimate = estimate_workload(workload.take(400))
        design = design_directory(estimate.probabilities(), total_bits=9)
        # the most-specified field gets the most bits
        assert design.bits[0] >= design.bits[1] >= design.bits[2]
