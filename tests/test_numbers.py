"""Unit and property tests for repro.util.numbers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.numbers import (
    ceil_div,
    egcd,
    ilog2,
    is_power_of_two,
    modinv,
    solve_linear_congruence,
)


class TestIsPowerOfTwo:
    def test_powers_accepted(self):
        assert all(is_power_of_two(1 << k) for k in range(20))

    def test_non_powers_rejected(self):
        assert not any(is_power_of_two(v) for v in (0, 3, 5, 6, 7, 9, 12, 100))

    def test_negative_rejected(self):
        assert not is_power_of_two(-4)

    def test_non_int_rejected(self):
        assert not is_power_of_two(4.0)


class TestIlog2:
    @pytest.mark.parametrize("exponent", range(0, 16))
    def test_exact_log(self, exponent):
        assert ilog2(1 << exponent) == exponent

    @pytest.mark.parametrize("value", [0, 3, -8, 12])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            ilog2(value)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_float_ceil(self, a, b):
        import math

        assert ceil_div(a, b) == math.ceil(a / b)


class TestEgcd:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        import math

        assert g == math.gcd(a, b)


class TestModinv:
    @given(st.integers(1, 10**4).filter(lambda v: v % 2 == 1),
           st.integers(1, 12))
    def test_inverse_of_odd_mod_power_of_two(self, a, bits):
        modulus = 1 << bits
        inv = modinv(a, modulus)
        assert (a * inv) % modulus == 1

    def test_missing_inverse_raises(self):
        with pytest.raises(ValueError):
            modinv(4, 16)


class TestSolveLinearCongruence:
    def test_known_solutions(self):
        assert solve_linear_congruence(4, 8, 16) == [2, 6, 10, 14]

    def test_no_solution(self):
        assert solve_linear_congruence(4, 6, 16) == []

    def test_zero_coefficient_all_solutions(self):
        assert solve_linear_congruence(0, 0, 4) == [0, 1, 2, 3]

    def test_zero_coefficient_no_solution(self):
        assert solve_linear_congruence(0, 3, 4) == []

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            solve_linear_congruence(1, 1, 0)

    @given(
        st.integers(0, 255),
        st.integers(0, 255),
        st.sampled_from([2, 4, 8, 16, 32, 64, 128, 256]),
    )
    def test_matches_brute_force(self, a, b, modulus):
        expected = [x for x in range(modulus) if (a * x) % modulus == b % modulus]
        assert solve_linear_congruence(a, b, modulus) == expected
