"""Tests for Z-order (bit-interleaving) declustering."""

import pytest

from repro.analysis.box import box_largest_response
from repro.analysis.histograms import evaluator_for
from repro.core.fx import FXDistribution
from repro.distribution.zorder import ZOrderDistribution, morton_positions
from repro.hashing.fields import FileSystem
from repro.query.box import BoxQuery
from repro.util.numbers import ceil_div, ilog2


def _morton(bucket, field_bits):
    """Reference Morton code: round-robin interleave, LSB first."""
    positions = morton_positions(list(field_bits))
    code = 0
    for i, value in enumerate(bucket):
        for j, position in enumerate(positions[i]):
            if (value >> j) & 1:
                code |= 1 << position
    return code


class TestMortonPositions:
    def test_equal_widths_strict_round_robin(self):
        assert morton_positions([2, 2]) == [[0, 2], [1, 3]]

    def test_unequal_widths_continue_cycling(self):
        # after field 1 runs out of bits, field 0 takes the remainder
        assert morton_positions([3, 1]) == [[0, 2, 3], [1]]

    def test_positions_partition_the_code(self):
        positions = morton_positions([3, 2, 1])
        flat = sorted(p for field in positions for p in field)
        assert flat == list(range(6))


class TestZOrderDevice:
    @pytest.mark.parametrize(
        "sizes,m", [((4, 4), 4), ((8, 2), 4), ((4, 8, 2), 16), ((16, 16), 8)]
    )
    def test_device_is_morton_mod_m(self, sizes, m):
        fs = FileSystem.of(*sizes, m=m)
        z = ZOrderDistribution(fs)
        field_bits = [ilog2(s) for s in sizes]
        for bucket in fs.buckets():
            assert z.device_of(bucket) == _morton(bucket, field_bits) % m

    def test_static_allocation_balanced(self):
        fs = FileSystem.of(8, 8, m=8)
        allocation = ZOrderDistribution(fs).distribute()
        loads = {len(buckets) for buckets in allocation}
        assert loads == {fs.bucket_count // fs.m}

    def test_registered(self):
        from repro.distribution.base import create_method

        fs = FileSystem.of(4, 4, m=4)
        assert isinstance(create_method("zorder", fs), ZOrderDistribution)

    def test_separable_engine_agrees_with_enumeration(self):
        fs = FileSystem.of(4, 8, m=8)
        z = ZOrderDistribution(fs)
        evaluator = evaluator_for(z)
        from repro.query.patterns import all_patterns, representative_query

        for pattern in all_patterns(fs.n_fields):
            query = representative_query(fs, pattern)
            naive = [0] * fs.m
            for bucket in query.qualified_buckets():
                naive[z.device_of(bucket)] += 1
            assert sorted(evaluator.histogram(pattern).tolist()) == sorted(naive)


class TestZOrderCharacter:
    """Z-order's signature trade-off: strong on ranges, weak on partial
    match with low-bit-sharing patterns, versus FX."""

    FS = FileSystem.of(16, 16, m=8)

    def test_contiguous_ranges_spread_perfectly(self):
        z = ZOrderDistribution(self.FS)
        # the aligned 4x2 sub-box matching the low interleaved bits
        # (positions 0..2 = f0 bits 0-1, f1 bit 0) is one Z-curve cell of
        # exactly M consecutive positions: every device holds one bucket
        for f0_start in (0, 4, 8, 12):
            for f1_start in (0, 2, 4, 6):
                box = BoxQuery.from_spec(
                    self.FS,
                    {0: (f0_start, f0_start + 3), 1: (f1_start, f1_start + 1)},
                )
                bound = ceil_div(box.qualified_count, self.FS.m)
                assert box_largest_response(z, box) == bound

    def test_sliding_windows_at_least_as_good_as_fx(self):
        z = ZOrderDistribution(self.FS)
        fx = FXDistribution(self.FS)
        z_total = fx_total = 0
        for start in range(0, 8):
            box = BoxQuery.from_spec(self.FS, {0: (start, start + 7)})
            z_total += box_largest_response(z, box)
            fx_total += box_largest_response(fx, box)
        assert z_total <= fx_total

    def test_partial_match_census_worse_than_fx(self):
        from repro.analysis.optim_prob import exact_fraction

        fs = FileSystem.uniform(4, 4, m=32)  # all fields small
        z_fraction = exact_fraction(ZOrderDistribution(fs))
        fx_fraction = exact_fraction(FXDistribution(fs, policy="paper"))
        assert z_fraction < fx_fraction
