"""Tests for repro.util.validation and repro.util.tables."""

import pytest

from repro.errors import ConfigurationError, NotPowerOfTwoError
from repro.util.tables import format_cell, format_table
from repro.util.validation import check_positive, check_power_of_two, check_range


class TestCheckPowerOfTwo:
    def test_accepts_and_returns(self):
        assert check_power_of_two("M", 64) == 64

    def test_rejects_with_parameter_name(self):
        with pytest.raises(NotPowerOfTwoError) as excinfo:
            check_power_of_two("field size", 12)
        assert "field size" in str(excinfo.value)
        assert excinfo.value.value == 12


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive("n", 3) == 3

    @pytest.mark.parametrize("value", [0, -1, True, 2.5, "3"])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive("n", value)


class TestCheckRange:
    def test_accepts_boundaries(self):
        assert check_range("v", 0, 4) == 0
        assert check_range("v", 3, 4) == 3

    @pytest.mark.parametrize("value", [-1, 4, 100])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            check_range("v", value, 4)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_range("v", True, 4)


class TestFormatCell:
    def test_float_digits(self):
        assert format_cell(3.14159, float_digits=2) == "3.14"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert "--" in lines[2]
        assert len(lines) == 5

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        text = format_table(["x"], [])
        assert "x" in text
