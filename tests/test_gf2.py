"""Tests for GF(2) linear algebra (repro.core.gf2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gf2 import GF2Matrix, parity
from repro.errors import ConfigurationError


def random_matrix(draw, max_dim=6):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(0, max_dim))
    rows = tuple(
        draw(st.integers(0, (1 << n_cols) - 1)) if n_cols else 0
        for __ in range(n_rows)
    )
    return GF2Matrix(rows, n_cols)


matrices = st.composite(random_matrix)()


class TestParity:
    @given(st.integers(0, 2**30))
    def test_matches_popcount(self, word):
        assert parity(word) == bin(word).count("1") % 2


class TestConstruction:
    def test_identity(self):
        eye = GF2Matrix.identity(3)
        assert eye.to_lists() == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_zero(self):
        assert GF2Matrix.zero(2, 3).rows == (0, 0)

    def test_from_rows(self):
        m = GF2Matrix.from_rows([[1, 0], [1, 1]])
        assert m.rows == (1, 3)

    def test_from_rows_ragged(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.from_rows([[1], [1, 0]])

    def test_from_rows_non_binary(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.from_rows([[2]])

    def test_row_outside_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix((4,), 2)

    def test_shift_matrix_is_multiplication_by_power_of_two(self):
        shift = GF2Matrix.shift(5, 3, 2)
        for v in range(8):
            assert shift.apply(v) == (v << 2) & 0b11111

    def test_shift_negative(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.shift(4, 4, -1)


class TestApply:
    @given(matrices, st.data())
    @settings(max_examples=50)
    def test_linearity(self, m, data):
        x = data.draw(st.integers(0, (1 << m.n_cols) - 1)) if m.n_cols else 0
        y = data.draw(st.integers(0, (1 << m.n_cols) - 1)) if m.n_cols else 0
        assert m.apply(x ^ y) == m.apply(x) ^ m.apply(y)

    def test_vector_out_of_space(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.identity(2).apply(4)

    def test_identity_acts_trivially(self):
        eye = GF2Matrix.identity(4)
        assert all(eye.apply(v) == v for v in range(16))


class TestAlgebra:
    @given(matrices)
    @settings(max_examples=50)
    def test_add_self_is_zero(self, m):
        assert m.add(m).rows == (0,) * m.n_rows

    def test_add_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.identity(2).add(GF2Matrix.identity(3))

    @given(matrices, st.data())
    @settings(max_examples=50)
    def test_multiply_matches_composition(self, m, data):
        inner = random_matrix(data.draw, max_dim=5)
        # align shapes: inner must map into m's domain
        if inner.n_rows != m.n_cols:
            inner = GF2Matrix.random(
                m.n_cols, inner.n_cols, random.Random(7)
            )
        product = m.multiply(inner)
        for v in range(1 << min(inner.n_cols, 6)):
            assert product.apply(v) == m.apply(inner.apply(v))

    def test_multiply_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.identity(2).multiply(GF2Matrix.identity(3))

    def test_hstack(self):
        left = GF2Matrix.from_rows([[1], [0]])
        right = GF2Matrix.from_rows([[0], [1]])
        assert left.hstack(right).to_lists() == [[1, 0], [0, 1]]

    def test_hstack_row_mismatch(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.identity(2).hstack(GF2Matrix.identity(3))


class TestRank:
    def test_identity_full_rank(self):
        assert GF2Matrix.identity(5).rank() == 5

    def test_zero_rank(self):
        assert GF2Matrix.zero(3, 3).rank() == 0

    def test_dependent_rows(self):
        m = GF2Matrix.from_rows([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
        assert m.rank() == 2  # third row is the sum of the first two

    @given(matrices)
    @settings(max_examples=50)
    def test_rank_matches_brute_force_row_span(self, m):
        span = {0}
        for row in m.rows:
            span |= {row ^ s for s in span}
        assert 1 << m.rank() == len(span)

    def test_is_injective(self):
        assert GF2Matrix.from_rows([[1, 0], [1, 1], [0, 0]]).is_injective()
        assert not GF2Matrix.from_rows([[1, 1], [0, 0]]).is_injective()


class TestRandomSampling:
    def test_full_column_rank_sampler(self):
        rng = random.Random(3)
        for __ in range(20):
            m = GF2Matrix.random_full_column_rank(5, 3, rng)
            assert m.rank() == 3

    def test_sampler_rejects_impossible_shape(self):
        with pytest.raises(ConfigurationError):
            GF2Matrix.random_full_column_rank(2, 3, random.Random(0))

    def test_column_accessor(self):
        m = GF2Matrix.from_rows([[1, 0], [1, 1]])
        assert m.column(0) == 0b11
        assert m.column(1) == 0b10
        with pytest.raises(ConfigurationError):
            m.column(2)
