"""Edge-path tests for the CLI: error handling and less-travelled flags."""

import pytest

from repro.cli import main


class TestErrorHandling:
    def test_repro_error_exits_with_code_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["census", "--fields", "6,4", "--devices", "16"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_search_rejects_bad_devices(self):
        with pytest.raises(SystemExit):
            main(["search", "--fields", "4,4", "--devices", "7"])


class TestLessTravelledFlags:
    def test_figure_with_custom_p(self, capsys):
        assert main(["figure", "figure1", "--p", "0.8"]) == 0
        assert "FD (FX)" in capsys.readouterr().out

    def test_report_stdout(self, capsys):
        assert main(["report", "--stdout", "--no-exact-figures"]) == 0
        out = capsys.readouterr().out
        assert "EXPERIMENTS" in out
        assert "Tables 1-6" in out

    def test_search_families_hill_climb_for_many_small_fields(self, capsys):
        # seven small fields: exhaustive (4^7) is skipped for hill climbing
        code = main(
            ["search", "--fields", "2,2,2,2,2,2,2", "--devices", "16"]
        )
        assert code == 0
        assert "hill climb" in capsys.readouterr().out

    def test_verify_with_theorem9_policy(self, capsys):
        assert main(
            ["verify", "--fields", "4,8,2", "--devices", "16",
             "--policy", "theorem9"]
        ) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_census_fx_with_default_transforms(self, capsys):
        code = main(
            ["census", "--fields", "8,8,32", "--devices", "16"]
        )
        assert code == 0

    def test_simulate_custom_seed_and_p(self, capsys):
        assert main(
            ["simulate", "--fields", "4,4", "--devices", "4",
             "--queries", "15", "--rate", "20", "--p", "0.7", "--seed", "3"]
        ) == 0
