"""Granular tests of the EXPERIMENTS.md report sections."""

from repro.experiments.runner import (
    _cpu_section,
    _extensions_section,
    _figure_section,
    _golden_section,
    _response_section,
    build_report,
)


class TestGoldenSection:
    def test_lists_all_six_tables_as_matching(self):
        text = "\n".join(_golden_section())
        for table_id in ("table1", "table2", "table3", "table4", "table5",
                         "table6"):
            assert table_id in text
        assert "| yes |" in text
        assert "| NO |" not in text


class TestResponseSection:
    def test_contains_paper_and_measured_cells(self):
        text = "\n".join(_response_section())
        assert "Table 7" in text and "Table 9" in text
        # Modulo k=6 cell of Table 7, paper and ours
        assert "18152 / 18152.0" in text
        # the deviation marker appears only on flagged cells
        assert "(*)" in text


class TestFigureSection:
    def test_without_exact_series(self):
        text = "\n".join(_figure_section(exact=False))
        assert "sufficient conditions" in text
        assert "- exact" not in text

    def test_with_exact_series_notes_tightness(self):
        text = "\n".join(_figure_section(exact=True))
        assert "tight" in text
        assert "% strict optimal" in text  # ASCII chart present


class TestCpuSection:
    def test_has_both_processors_and_claim(self):
        text = "\n".join(_cpu_section())
        assert "MC68000" in text and "i80286" in text
        assert "one third" in text


class TestExtensionsSection:
    def test_reports_both_findings_and_figure5(self):
        text = "\n".join(_extensions_section())
        assert "GF(2) linear transforms" in text
        assert "93.75%" in text
        assert "Figure 5" in text
        assert "LD (linear, searched)" in text


class TestFullReport:
    def test_sections_in_order(self):
        report = build_report(exact_figures=False)
        positions = [
            report.index("Tables 1-6"),
            report.index("Tables 7-9"),
            report.index("Figures 1-4"),
            report.index("CPU address computation"),
            report.index("Section 6 extensions"),
        ]
        assert positions == sorted(positions)
