"""Tests for the cross-engine verifier."""

import pytest

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import AnalysisError
from repro.experiments.verification import verify_method, verify_or_raise
from repro.hashing.fields import FileSystem


class TestVerifyMethod:
    def test_fx_all_three_engines_agree(self):
        fs = FileSystem.of(4, 8, 2, m=16)
        report = verify_method(FXDistribution(fs))
        assert report.consistent
        assert report.patterns_checked == 8
        assert report.brute_force_checked == 8
        assert report.rank_checked == 8

    def test_modulo_two_engines(self):
        fs = FileSystem.of(4, 4, m=8)
        report = verify_method(ModuloDistribution(fs))
        assert report.consistent
        assert report.rank_checked == 0  # rank criterion is FX-only

    def test_brute_force_limit_respected(self):
        fs = FileSystem.uniform(4, 8, m=16)
        report = verify_method(FXDistribution(fs), brute_force_limit=64)
        assert report.brute_force_checked < report.patterns_checked
        assert report.consistent

    def test_summary_text(self):
        fs = FileSystem.of(4, 4, m=8)
        text = verify_method(FXDistribution(fs)).summary()
        assert "CONSISTENT" in text

    def test_verify_or_raise_passes_on_clean_method(self):
        fs = FileSystem.of(4, 4, m=8)
        assert verify_or_raise(FXDistribution(fs)).consistent

    def test_verify_or_raise_detects_broken_engine(self, monkeypatch):
        fs = FileSystem.of(4, 4, m=8)
        fx = FXDistribution(fs)
        # sabotage the rank criterion path
        import repro.experiments.verification as verification

        monkeypatch.setattr(
            verification,
            "linear_pattern_is_optimal",
            lambda matrices, pattern, m: False,
        )
        with pytest.raises(AnalysisError):
            verify_or_raise(fx)


class TestVerifyCli:
    def test_cli_verify_fx(self, capsys):
        from repro.cli import main

        assert main(["verify", "--fields", "4,4", "--devices", "8"]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_cli_verify_modulo(self, capsys):
        from repro.cli import main

        code = main(
            ["verify", "--fields", "4,4", "--devices", "8",
             "--method", "modulo"]
        )
        assert code == 0
