"""Tests for the DistributionMethod interface, registry and baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution.base import (
    available_methods,
    create_method,
    register_method,
)
from repro.distribution.gdm import GDM_PRESETS, GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.distribution.spanning import SpanningPathDistribution
from repro.core.fx import FXDistribution
from repro.errors import ConfigurationError, DistributionError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery


FS = FileSystem.of(4, 8, m=8)

ALL_METHOD_FACTORIES = [
    lambda fs: FXDistribution(fs),
    lambda fs: ModuloDistribution(fs),
    lambda fs: GDMDistribution(fs, multipliers=tuple(range(3, 3 + fs.n_fields * 2, 2))),
    lambda fs: RandomDistribution(fs, seed=5),
    lambda fs: SpanningPathDistribution(fs),
]


class TestRegistry:
    def test_known_methods_registered(self):
        names = available_methods()
        for expected in ("fx", "fx-basic", "modulo", "gdm", "random", "spanning"):
            assert expected in names

    def test_create_method(self):
        method = create_method("modulo", FS)
        assert isinstance(method, ModuloDistribution)

    def test_create_with_kwargs(self):
        method = create_method("gdm", FS, multipliers=(3, 5))
        assert isinstance(method, GDMDistribution)

    def test_create_unknown(self):
        with pytest.raises(ConfigurationError):
            create_method("nope", FS)

    def test_register_requires_name(self):
        class Anonymous(ModuloDistribution):
            name = ""

        with pytest.raises(ConfigurationError):
            register_method(Anonymous)

    def test_register_rejects_duplicate(self):
        class Impostor(ModuloDistribution):
            name = "modulo"

        with pytest.raises(ConfigurationError):
            register_method(Impostor)


class TestDeviceRange:
    @pytest.mark.parametrize("factory", ALL_METHOD_FACTORIES)
    def test_all_devices_in_range(self, factory):
        method = factory(FS)
        for bucket in FS.buckets():
            assert 0 <= method.device_of(bucket) < FS.m


class TestDistribute:
    def test_partition_covers_every_bucket_once(self):
        allocation = ModuloDistribution(FS).distribute()
        seen = [b for device_buckets in allocation for b in device_buckets]
        assert sorted(seen) == sorted(FS.buckets())

    def test_distribute_respects_device_of(self):
        method = FXDistribution(FS)
        for device, buckets in enumerate(method.distribute()):
            assert all(method.device_of(b) == device for b in buckets)


class TestResponseHistogram:
    @pytest.mark.parametrize("factory", ALL_METHOD_FACTORIES)
    def test_histogram_sums_to_qualified_count(self, factory):
        method = factory(FS)
        query = PartialMatchQuery.from_dict(FS, {0: 1})
        histogram = method.response_histogram(query)
        assert sum(histogram) == query.qualified_count

    def test_separable_matches_naive_enumeration(self):
        method = FXDistribution(FS)
        for specified in ({}, {0: 2}, {1: 7}, {0: 3, 1: 0}):
            query = PartialMatchQuery.from_dict(FS, specified)
            naive = [0] * FS.m
            for bucket in query.qualified_buckets():
                naive[method.device_of(bucket)] += 1
            assert method.response_histogram(query) == naive

    def test_query_for_other_filesystem_rejected(self):
        method = ModuloDistribution(FS)
        other = FileSystem.of(4, 8, m=4)
        query = PartialMatchQuery.full_scan(other)
        with pytest.raises(DistributionError):
            method.response_histogram(query)


class TestModulo:
    def test_device_formula(self):
        modulo = ModuloDistribution(FS)
        assert modulo.device_of((3, 7)) == (3 + 7) % 8

    def test_sufficient_condition_one_unspecified(self):
        modulo = ModuloDistribution(FS)
        q = PartialMatchQuery.from_dict(FS, {1: 0})
        assert modulo.sufficient_condition_holds(q)

    def test_sufficient_condition_large_field(self):
        fs = FileSystem.of(4, 16, m=8)
        modulo = ModuloDistribution(fs)
        q = PartialMatchQuery.full_scan(fs)
        assert modulo.sufficient_condition_holds(q)

    def test_sufficient_condition_fails_small_fields(self):
        fs = FileSystem.of(4, 4, m=8)
        modulo = ModuloDistribution(fs)
        q = PartialMatchQuery.full_scan(fs)
        assert not modulo.sufficient_condition_holds(q)

    @given(st.sampled_from([2, 4, 8, 16]), st.sampled_from([2, 4, 8]))
    @settings(max_examples=20)
    def test_sufficient_condition_implies_optimal(self, f2, m):
        fs = FileSystem.of(4, f2, 8, m=m)
        modulo = ModuloDistribution(fs)
        from repro.query.patterns import all_patterns, representative_query

        for pattern in all_patterns(fs.n_fields):
            q = representative_query(fs, pattern)
            if modulo.sufficient_condition_holds(q):
                assert modulo.is_strict_optimal_for(q)


class TestGDM:
    def test_presets_exist(self):
        assert set(GDM_PRESETS) == {"GDM1", "GDM2", "GDM3"}

    def test_preset_prefix_for_fewer_fields(self):
        gdm = GDMDistribution.preset(FS, "GDM1")
        assert gdm.multipliers == (2, 3)

    def test_preset_unknown(self):
        with pytest.raises(ConfigurationError):
            GDMDistribution.preset(FS, "GDM9")

    def test_preset_too_many_fields(self):
        fs = FileSystem.uniform(7, 2, m=2)
        with pytest.raises(ConfigurationError):
            GDMDistribution.preset(fs, "GDM1")

    def test_multiplier_count_checked(self):
        with pytest.raises(ConfigurationError):
            GDMDistribution(FS, multipliers=(3,))

    def test_non_positive_multiplier_rejected(self):
        with pytest.raises(ConfigurationError):
            GDMDistribution(FS, multipliers=(0, 3))

    def test_device_formula(self):
        gdm = GDMDistribution(FS, multipliers=(3, 5))
        assert gdm.device_of((2, 7)) == (3 * 2 + 5 * 7) % 8

    def test_all_ones_equals_modulo(self):
        gdm = GDMDistribution(FS, multipliers=(1, 1))
        modulo = ModuloDistribution(FS)
        assert all(
            gdm.device_of(b) == modulo.device_of(b) for b in FS.buckets()
        )


class TestRandomDistribution:
    def test_deterministic_per_seed(self):
        a = RandomDistribution(FS, seed=1)
        b = RandomDistribution(FS, seed=1)
        assert all(a.device_of(x) == b.device_of(x) for x in FS.buckets())

    def test_seed_changes_layout(self):
        a = RandomDistribution(FS, seed=1)
        b = RandomDistribution(FS, seed=2)
        assert any(a.device_of(x) != b.device_of(x) for x in FS.buckets())

    def test_roughly_balanced(self):
        fs = FileSystem.of(32, 32, m=4)
        allocation = RandomDistribution(fs, seed=0).distribute()
        loads = [len(buckets) for buckets in allocation]
        mean = fs.bucket_count / fs.m
        assert all(0.5 * mean < load < 1.5 * mean for load in loads)


class TestSpanningPath:
    @pytest.mark.parametrize("traversal", ["path", "mst"])
    def test_partition_complete(self, traversal):
        fs = FileSystem.of(4, 4, m=4)
        method = SpanningPathDistribution(fs, traversal=traversal)
        allocation = method.distribute()
        assert sum(len(b) for b in allocation) == fs.bucket_count
        # round-robin dealing balances the static load perfectly
        assert max(len(b) for b in allocation) - min(len(b) for b in allocation) == 0

    def test_bad_traversal(self):
        with pytest.raises(ConfigurationError):
            SpanningPathDistribution(FS, traversal="bfs")

    def test_grid_cap(self):
        fs = FileSystem.of(256, 64, m=4)
        with pytest.raises(ConfigurationError):
            SpanningPathDistribution(fs)

    def test_walk_neighbours_land_on_distinct_devices(self):
        # The device map preserves walk order; round-robin dealing means
        # consecutive walk positions (the most similar buckets) never share
        # a device when M > 1.
        fs = FileSystem.of(4, 4, m=4)
        method = SpanningPathDistribution(fs)
        devices_in_walk_order = list(method._device_map.values())
        assert all(
            a != b
            for a, b in zip(devices_in_walk_order, devices_in_walk_order[1:])
        )
