"""Tests for the construction facade (repro.api) and deprecation shims."""

import warnings

import pytest

import repro
import repro.distribution as distribution
from repro.api import default_gdm_multipliers, make_method, method_names
from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.distribution.base import available_methods, create_method
from repro.distribution.gdm import GDMDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import ConfigurationError, ReproError
from repro.hashing.fields import FileSystem

FIELDS = (4, 8)
DEVICES = 8
FS = FileSystem.of(*FIELDS, m=DEVICES)


def _same_placement(a, b):
    return all(a.device_of(bucket) == b.device_of(bucket)
               for bucket in FS.buckets())


class TestMakeMethod:
    def test_covers_every_registered_name(self):
        names = method_names()
        assert set(available_methods()) <= set(names)
        assert "replicated" in names
        for name in names:
            built = make_method(name, fields=FIELDS, devices=DEVICES)
            assert built is not None

    @pytest.mark.parametrize("name", sorted(available_methods()))
    def test_identical_to_direct_constructor(self, name):
        """The facade must be behaviourally identical to the old
        constructors for every registered method name."""
        via_facade = make_method(name, fields=FIELDS, devices=DEVICES)
        if name == "gdm":
            direct = GDMDistribution(
                FS, multipliers=default_gdm_multipliers(FS.n_fields)
            )
        else:
            direct = create_method(name, FS)
        assert _same_placement(via_facade, direct)
        assert via_facade.describe() == direct.describe()

    def test_fx_options_forwarded(self):
        theorem9 = make_method(
            "fx", fields=FIELDS, devices=DEVICES, policy="theorem9"
        )
        assert _same_placement(theorem9, FXDistribution(FS, policy="theorem9"))
        basic = make_method("fx-basic", fields=FIELDS, devices=DEVICES)
        assert _same_placement(basic, BasicFXDistribution(FS))

    def test_gdm_explicit_multipliers_and_preset(self):
        explicit = make_method(
            "gdm", fields=FIELDS, devices=DEVICES, multipliers=(2, 3)
        )
        assert _same_placement(explicit, GDMDistribution(FS, (2, 3)))
        preset = make_method(
            "gdm", fields=FIELDS, devices=DEVICES, preset="GDM1"
        )
        assert _same_placement(preset, GDMDistribution.preset(FS, "GDM1"))

    def test_gdm_preset_and_multipliers_conflict(self):
        with pytest.raises(ConfigurationError):
            make_method("gdm", fields=FIELDS, devices=DEVICES,
                        preset="GDM1", multipliers=(2, 3))

    def test_replicated_over_named_base(self):
        scheme = make_method(
            "replicated", fields=FIELDS, devices=DEVICES,
            base="modulo", offset=3,
        )
        assert isinstance(scheme, ChainedReplicaScheme)
        assert scheme.offset == 3
        assert scheme.base.name == "modulo"

    def test_replicated_over_method_instance(self):
        fx = FXDistribution(FS)
        scheme = make_method(
            "replicated", fields=FIELDS, devices=DEVICES, base=fx
        )
        assert scheme.base is fx

    def test_replicated_rejects_foreign_base(self):
        other = FXDistribution(FileSystem.of(4, 4, m=4))
        with pytest.raises(ConfigurationError):
            make_method("replicated", fields=FIELDS, devices=DEVICES,
                        base=other)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="modulo"):
            make_method("nope", fields=FIELDS, devices=DEVICES)

    def test_unknown_option_raises_repro_error(self):
        with pytest.raises(ConfigurationError):
            make_method("modulo", fields=FIELDS, devices=DEVICES,
                        frobnicate=True)

    def test_everything_it_raises_is_a_repro_error(self):
        for call in (
            lambda: make_method("nope", fields=FIELDS, devices=DEVICES),
            lambda: make_method("fx", fields=(3, 8), devices=DEVICES),
            lambda: make_method("fx", fields=FIELDS, devices=7),
            lambda: make_method("gdm", fields=FIELDS, devices=DEVICES,
                                preset="GDM9"),
        ):
            with pytest.raises(ReproError):
                call()

    def test_exported_from_package_root(self):
        assert repro.make_method is make_method
        assert repro.method_names is method_names


class TestDeprecationShims:
    NAMES = sorted(distribution._DEPRECATED_CONSTRUCTORS)

    def _fresh(self, name):
        distribution._warned.discard(name)

    @pytest.mark.parametrize("name", NAMES)
    def test_old_import_warns_once_then_stays_silent(self, name):
        self._fresh(name)
        with pytest.warns(DeprecationWarning, match=name):
            first = getattr(distribution, name)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            second = getattr(distribution, name)
        assert first is second

    def test_shim_resolves_to_real_class(self):
        self._fresh("ModuloDistribution")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            from repro.distribution import ModuloDistribution
        from repro.distribution.modulo import (
            ModuloDistribution as canonical,
        )
        assert ModuloDistribution is canonical

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            distribution.NoSuchDistribution

    def test_concurrent_first_access_warns_exactly_once(self):
        """Racing threads resolving one deprecated name must produce one
        warning total — the _warned check-then-add is lock-protected."""
        import threading

        for name in self.NAMES:
            self._fresh(name)
        barrier = threading.Barrier(8)

        def resolve():
            barrier.wait()
            for name in self.NAMES:
                getattr(distribution, name)

        threads = [threading.Thread(target=resolve) for __ in range(8)]
        # One global recorder: warnings raised on worker threads all land
        # here, because catch_warnings swaps the process-wide showwarning.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == len(self.NAMES)
        warned_names = sorted(
            next(n for n in self.NAMES if n in str(w.message))
            for w in deprecations
        )
        assert warned_names == self.NAMES

    def test_dir_lists_deprecated_names(self):
        listed = dir(distribution)
        for name in self.NAMES:
            assert name in listed

    def test_package_root_import_is_silent_but_access_warns(self):
        import subprocess
        import sys

        # `import repro` itself must stay warning-free; only touching a
        # deprecated constructor attribute emits the DeprecationWarning.
        code = (
            "import warnings; warnings.simplefilter('error');"
            "import repro;"
            "import repro.api"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stderr

        code = (
            "import warnings; warnings.simplefilter('error');"
            "import repro; repro.ModuloDistribution"
        )
        completed = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
        )
        assert completed.returncode != 0
        assert "DeprecationWarning" in completed.stderr
        assert "make_method" in completed.stderr
