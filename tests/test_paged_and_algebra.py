"""Tests for paged bucket storage and the query algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QueryError, StorageError
from repro.hashing.fields import FileSystem
from repro.query.algebra import are_disjoint, intersect, subsumes
from repro.query.partial_match import PartialMatchQuery
from repro.storage.paged_store import PagedBucketStore


class TestPagedStoreBasics:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            PagedBucketStore(page_capacity=0)

    def test_insert_fills_then_overflows(self):
        store = PagedBucketStore(page_capacity=2)
        for i in range(5):
            store.insert((0,), i)
        assert store.pages_in((0,)) == 3
        assert store.records_in((0,)) == (0, 1, 2, 3, 4)
        assert store.record_count == 5
        store.check_invariants()

    def test_absent_bucket(self):
        store = PagedBucketStore()
        assert store.pages_in((9,)) == 0
        assert store.records_in((9,)) == ()
        assert not store.has_bucket((9,))

    def test_delete_leaves_hole_until_compaction(self):
        store = PagedBucketStore(page_capacity=2)
        for i in range(6):
            store.insert((0,), i)
        assert store.pages_in((0,)) == 3
        assert store.delete((0,), 0)
        assert store.delete((0,), 1)
        # first page now empty but still allocated
        assert store.pages_in((0,)) == 3
        assert store.occupancy() == pytest.approx(4 / 6)
        freed = store.compact()
        assert freed == 1
        assert store.pages_in((0,)) == 2
        store.check_invariants()

    def test_delete_last_record_drops_bucket(self):
        store = PagedBucketStore(page_capacity=2)
        store.insert((1,), "a")
        assert store.delete((1,), "a")
        assert not store.has_bucket((1,))
        assert store.bucket_count == 0

    def test_delete_missing(self):
        store = PagedBucketStore()
        store.insert((0,), "a")
        assert not store.delete((0,), "b")
        assert not store.delete((1,), "a")

    def test_holes_reused_by_insert(self):
        store = PagedBucketStore(page_capacity=2)
        for i in range(4):
            store.insert((0,), i)
        store.delete((0,), 0)
        store.insert((0,), 99)  # lands in the hole, no new page
        assert store.pages_in((0,)) == 2

    def test_average_chain_length(self):
        store = PagedBucketStore(page_capacity=2)
        for i in range(4):
            store.insert((0,), i)   # 2 pages
        store.insert((1,), "x")     # 1 page
        assert store.average_chain_length() == pytest.approx(1.5)
        assert PagedBucketStore().average_chain_length() == 0.0

    def test_clear(self):
        store = PagedBucketStore()
        store.insert((0,), "a")
        store.clear()
        assert store.record_count == 0
        assert store.page_count == 0

    def test_invariant_violation_detected(self):
        store = PagedBucketStore()
        store.insert((0,), "a")
        store._record_count = 7
        with pytest.raises(StorageError):
            store.check_invariants()

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 5)), max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_model_equivalence(self, ops):
        store = PagedBucketStore(page_capacity=3)
        model: dict[tuple, list[int]] = {}
        for is_insert, key in ops:
            bucket = (key,)
            if is_insert:
                store.insert(bucket, key)
                model.setdefault(bucket, []).append(key)
            else:
                expected = bool(model.get(bucket))
                assert store.delete(bucket, key) == expected
                if expected:
                    model[bucket].remove(key)
                    if not model[bucket]:
                        del model[bucket]
        store.check_invariants()
        assert store.record_count == sum(len(v) for v in model.values())
        for bucket, values in model.items():
            assert sorted(store.records_in(bucket)) == sorted(values)


class TestPagedDeviceIntegration:
    def test_device_cost_counts_pages(self):
        from repro.storage.costs import UnitCostModel
        from repro.storage.device import SimulatedDevice

        device = SimulatedDevice(
            0,
            cost_model=UnitCostModel(),
            store=PagedBucketStore(page_capacity=2),
        )
        for i in range(5):
            device.insert((0,), i)
        device.read_buckets([(0,)])
        assert device.stats.busy_time_ms == 3.0  # 3 pages, not 1 bucket

    def test_partitioned_file_with_paged_stores(self):
        from repro.core.fx import FXDistribution
        from repro.storage.parallel_file import PartitionedFile

        fs = FileSystem.of(4, 8, m=4)
        pf = PartitionedFile(
            FXDistribution(fs),
            store_factory=lambda: PagedBucketStore(page_capacity=4),
        )
        pf.insert_all([(i, f"v{i}") for i in range(100)])
        pf.check_invariants()
        result = pf.search({0: 3})
        assert result.records


FS = FileSystem.of(4, 4, m=4)


def _query(**kwargs):
    return PartialMatchQuery.from_dict(FS, kwargs)


class TestQueryAlgebra:
    def test_subsumes_reflexive(self):
        q = PartialMatchQuery.from_dict(FS, {0: 1})
        assert subsumes(q, q)

    def test_full_scan_subsumes_everything(self):
        scan = PartialMatchQuery.full_scan(FS)
        assert subsumes(scan, PartialMatchQuery.from_dict(FS, {0: 1, 1: 2}))

    def test_subsumption_matches_bucket_semantics(self):
        queries = [
            PartialMatchQuery.full_scan(FS),
            PartialMatchQuery.from_dict(FS, {0: 1}),
            PartialMatchQuery.from_dict(FS, {1: 2}),
            PartialMatchQuery.from_dict(FS, {0: 1, 1: 2}),
            PartialMatchQuery.from_dict(FS, {0: 3}),
        ]
        for general in queries:
            general_buckets = set(general.qualified_buckets())
            for specific in queries:
                specific_buckets = set(specific.qualified_buckets())
                assert subsumes(general, specific) == (
                    specific_buckets <= general_buckets
                )

    def test_intersection_matches_bucket_semantics(self):
        a = PartialMatchQuery.from_dict(FS, {0: 1})
        b = PartialMatchQuery.from_dict(FS, {1: 2})
        both = intersect(a, b)
        assert set(both.qualified_buckets()) == set(
            a.qualified_buckets()
        ) & set(b.qualified_buckets())

    def test_conflicting_queries_disjoint(self):
        a = PartialMatchQuery.from_dict(FS, {0: 1})
        b = PartialMatchQuery.from_dict(FS, {0: 2})
        assert intersect(a, b) is None
        assert are_disjoint(a, b)

    def test_intersection_commutative(self):
        a = PartialMatchQuery.from_dict(FS, {0: 1})
        b = PartialMatchQuery.from_dict(FS, {1: 3})
        assert intersect(a, b) == intersect(b, a)

    def test_cross_filesystem_rejected(self):
        other = FileSystem.of(4, 4, m=8)
        with pytest.raises(QueryError):
            subsumes(
                PartialMatchQuery.full_scan(FS),
                PartialMatchQuery.full_scan(other),
            )
