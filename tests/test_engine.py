"""The array-native batch engine: byte-identity with the serial path.

The engine's contract is absolute: for every query in a batch, the
assembled :class:`~repro.storage.executor.ExecutionResult` must match what
the serial :class:`~repro.storage.executor.QueryExecutor` produces — same
records in the same order, same per-device counts, same modelled times —
with only the ``mode`` provenance marker differing.  These tests pin that
contract with randomized property tests over filesystems, methods, query
mixes and interleaved writes, then cover the satellite surfaces: packed
signatures, dedupe/subsumption in the planner, zero-copy packed stores,
the batched cache path, the micro-batching service and the batched
optimality checker.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BatchEngine, BatchExecutor, make_method
from repro.core.inverse import bucket_strides, separable_qualified_flat_batch
from repro.durability.checksummed_store import PackedChecksummedStore
from repro.engine.signature import dedupe_queries, pack_queries, pack_query
from repro.errors import ConfigurationError, CorruptPageError
from repro.obs import reset_telemetry
from repro.obs.checker import ObservedOptimalityChecker
from repro.query.partial_match import PartialMatchQuery
from repro.service.frontend import QueryService, ServiceConfig
from repro.storage.batch import BatchPlanner
from repro.storage.cache import CachedExecutor
from repro.storage.executor import QueryExecutor
from repro.storage.paged_store import PackedPageStore, PagedBucketStore
from repro.storage.parallel_file import PartitionedFile

_METHODS = ["fx", "gdm", "modulo", "random"]
_SIZES = st.sampled_from([2, 4, 8])


@st.composite
def engine_cases(draw):
    """A loaded partitioned file plus a mixed query batch against it."""
    n = draw(st.integers(2, 4))
    sizes = tuple(draw(_SIZES) for __ in range(n))
    m = draw(st.sampled_from([2, 4, 8]))
    name = draw(st.sampled_from(_METHODS))
    method = make_method(name, fields=sizes, devices=m)
    pf = PartitionedFile(method)
    rng = random.Random(draw(st.integers(0, 2**20)))
    for __ in range(draw(st.integers(0, 120))):
        pf.insert(tuple(rng.randrange(s) for s in sizes))

    queries = []
    for __ in range(draw(st.integers(1, 12))):
        spec = {
            i: rng.randrange(sizes[i])
            for i in range(n)
            if rng.random() < 0.5
        }
        queries.append(pf.query(spec))
    # Force duplicates and a full scan into some batches.
    if draw(st.booleans()):
        queries.append(queries[0])
    if draw(st.booleans()):
        queries.append(pf.query({}))
    return pf, queries


def assert_results_identical(batched, serial):
    """Byte-identity modulo the ``mode`` provenance marker."""
    assert batched.records == serial.records
    assert batched.buckets_per_device == serial.buckets_per_device
    assert batched.largest_response == serial.largest_response
    assert batched.response_time_ms == serial.response_time_ms
    assert batched.total_service_ms == serial.total_service_ms
    assert batched.strict_optimal == serial.strict_optimal
    assert batched.mode == "batched" and serial.mode == "serial"
    b, s = batched.to_dict(), serial.to_dict()
    b.pop("mode"), s.pop("mode")
    assert b == s


class TestEngineByteIdentity:
    @given(engine_cases())
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_serial(self, case):
        pf, queries = case
        serial = QueryExecutor(pf)
        report = BatchEngine(pf).execute(queries)
        assert len(report.results) == len(queries)
        for query, result in zip(queries, report.results):
            assert_results_identical(result, serial.execute(query))

    @given(engine_cases())
    @settings(max_examples=20, deadline=None)
    def test_batch_matches_serial_after_interleaved_writes(self, case):
        pf, queries = case
        engine = BatchEngine(pf)
        serial = QueryExecutor(pf)
        engine.execute(queries)  # warm the present-set cache
        sizes = pf.filesystem.field_sizes
        rng = random.Random(7)
        for __ in range(5):
            pf.insert(tuple(rng.randrange(s) for s in sizes))
        report = engine.execute(queries)
        for query, result in zip(queries, report.results):
            assert_results_identical(result, serial.execute(query))

    @given(engine_cases())
    @settings(max_examples=20, deadline=None)
    def test_fetch_buckets_matches_collect(self, case):
        pf, queries = case
        per_query, version = BatchEngine(pf).fetch_buckets(queries)
        assert version == pf.write_version
        serial = QueryExecutor(pf)
        for query, buckets in zip(queries, per_query):
            records = []
            for bucket_records in buckets.values():
                records.extend(bucket_records)
            assert sorted(map(str, records)) == sorted(
                map(str, serial.execute(query).records)
            )
            assert all(buckets.values())  # non-empty buckets only

    def test_duplicates_share_one_plan(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        pf = PartitionedFile(method)
        pf.insert((1, 2))
        q = pf.query({0: 1})
        report = BatchEngine(pf).execute([q, q, q])
        assert report.duplicates_removed == 2
        assert [r.records for r in report.results] == [[(1, 2)]] * 3

    def test_sharing_is_reported(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        pf = PartitionedFile(method)
        pf.insert((1, 2))
        q = pf.query({0: 1})
        report = BatchEngine(pf).execute([q, q])
        assert report.naive_reads == 2 * q.qualified_count
        assert report.unique_reads == q.qualified_count
        assert report.sharing_factor == 2.0


class TestSignatures:
    @given(engine_cases())
    @settings(max_examples=25, deadline=None)
    def test_vectorized_packing_matches_scalar(self, case):
        pf, queries = case
        strides = bucket_strides(pf.filesystem)
        vector = pack_queries(queries, strides)
        scalar = [pack_query(q, strides) for q in queries]
        assert vector == scalar

    def test_signature_distinguishes_specified_zero_from_unspecified(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        fs = method.filesystem
        strides = bucket_strides(fs)
        zero = PartialMatchQuery.from_dict(fs, {0: 0})
        empty = PartialMatchQuery.from_dict(fs, {})
        assert pack_query(zero, strides) != pack_query(empty, strides)

    def test_dedupe_preserves_first_occurrence_order(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        pf = PartitionedFile(method)
        a, b = pf.query({0: 1}), pf.query({1: 2})
        distinct, slot_of = dedupe_queries(
            [a, b, a, a, b], bucket_strides(pf.filesystem)
        )
        assert distinct == [0, 1]
        assert slot_of == [0, 1, 0, 0, 1]


class TestBatchKernel:
    @given(engine_cases())
    @settings(max_examples=25, deadline=None)
    def test_flat_batch_matches_iterator(self, case):
        pf, queries = case
        method = pf.method
        if not hasattr(method, "qualified_on_device_array"):
            return
        strides = bucket_strides(pf.filesystem)
        by_pattern = {}
        for q in queries:
            by_pattern.setdefault(q.pattern, []).append(q)
        for group in by_pattern.values():
            flat, counts = separable_qualified_flat_batch(
                method, group, strides
            )
            offset = 0
            for g, query in enumerate(group):
                for device in range(pf.filesystem.m):
                    expected = [
                        int(strides @ row)
                        for row in (
                            tuple(bucket)
                            for bucket in method.qualified_on_device(
                                device, query
                            )
                        )
                    ]
                    take = int(counts[g, device])
                    assert flat[offset : offset + take].tolist() == expected
                    offset += take
            assert offset == flat.size


class TestPlannerDedupe:
    def test_duplicates_and_subsumption_counted(self):
        method = make_method("fx", fields=(8, 4), devices=4)
        pf = PartitionedFile(method)
        rng = random.Random(5)
        for __ in range(100):
            pf.insert((rng.randrange(8), rng.randrange(4)))
        full = pf.query({})
        narrow = pf.query({0: 3})
        planner = BatchPlanner(method)
        plan = planner.plan([full, narrow, narrow, pf.query({0: 3, 1: 1})])
        assert plan.duplicates_removed == 1
        assert plan.derived_from_subsumer == 2  # both narrow queries' slots
        serial = QueryExecutor(pf)
        report = BatchExecutor(pf).execute([full, narrow, narrow])
        for q, records in zip([full, narrow, narrow], report.records_per_query):
            assert sorted(map(str, records)) == sorted(
                map(str, serial.execute(q).records)
            )

    @given(engine_cases())
    @settings(max_examples=20, deadline=None)
    def test_batch_executor_unchanged_by_dedupe(self, case):
        pf, queries = case
        serial = QueryExecutor(pf)
        report = BatchExecutor(pf).execute(queries)
        for query, records in zip(queries, report.records_per_query):
            assert sorted(map(str, records)) == sorted(
                map(str, serial.execute(query).records)
            )


class TestPackedStores:
    @given(st.integers(0, 2**20), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_packed_store_matches_paged_store(self, seed, page_capacity):
        # The byte-packed store must mirror the tuple-paged store exactly:
        # same first-page-with-room placement, same record order, same
        # digest.  (A flat BucketStore differs legitimately — it has no
        # holes to reuse.)
        rng = random.Random(seed)
        packed = PackedPageStore(page_capacity=page_capacity)
        plain = PagedBucketStore(page_capacity=page_capacity)
        live = []
        for __ in range(200):
            op = rng.random()
            bucket = (rng.randrange(4), rng.randrange(4))
            if op < 0.6 or not live:
                record = (rng.randrange(100), "x" * rng.randrange(3))
                packed.insert(bucket, record)
                plain.insert(bucket, record)
                live.append((bucket, record))
            elif op < 0.85:
                victim, record = live.pop(rng.randrange(len(live)))
                assert packed.delete(victim, record) == plain.delete(
                    victim, record
                )
            else:
                records = [(rng.randrange(10),) for __ in range(3)]
                packed.replace_bucket(bucket, records)
                plain.replace_bucket(bucket, records)
                live = [(b, r) for b, r in live if b != bucket]
                live.extend((bucket, r) for r in records)
        assert packed.state_digest() == plain.state_digest()
        assert packed.record_count == plain.record_count
        for bucket in plain.buckets():
            assert packed.records_in(bucket) == plain.records_in(bucket)
            assert packed.pages_in(bucket) == plain.pages_in(bucket)
        packed.check_invariants()

    def test_page_views_are_zero_copy(self):
        store = PackedPageStore(page_capacity=2)
        store.insert((0,), (1, "a"))
        (view,) = store.page_views((0,))
        assert isinstance(view, memoryview) and view.readonly
        arr = store.page_array((0,), 0)
        assert arr.dtype.name == "uint8" and not arr.flags.writeable
        assert bytes(view) == arr.tobytes()

    @pytest.mark.parametrize("kind", ["tamper", "drop"])
    def test_checksummed_packed_store_detects_damage(self, kind):
        store = PackedChecksummedStore(page_capacity=2)
        store.insert((0,), (1, "a"))
        store.insert((0,), (2, "b"))
        assert store.verify_bucket((0,))
        store.corrupt_bucket((0,), kind=kind)
        assert not store.verify_bucket((0,))
        with pytest.raises(CorruptPageError):
            store.records_in((0,))
        store.replace_bucket((0,), [(3, "c")])  # repair path
        assert store.verify_bucket((0,))
        assert store.records_in((0,)) == ((3, "c"),)

    def test_engine_sees_dropped_packed_pages(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        pf = PartitionedFile(method, store_factory=PackedChecksummedStore)
        bucket = pf.insert((1, 2))
        engine = BatchEngine(pf)
        device = next(
            d for d in pf.devices if d.store.has_bucket(bucket)
        )
        device.store.corrupt_bucket(bucket, kind="drop")
        engine.invalidate()
        with pytest.raises(CorruptPageError):
            engine.execute([pf.query({0: 1})])

    @given(engine_cases())
    @settings(max_examples=15, deadline=None)
    def test_engine_identity_over_packed_store(self, case):
        pf, queries = case
        packed = PartitionedFile(
            pf.method, store_factory=PackedChecksummedStore
        )
        for device in pf.devices:
            for bucket in device.store.buckets():
                for record in device.store.records_in(bucket):
                    packed.insert(record)
        serial = QueryExecutor(packed)
        report = BatchEngine(packed).execute(queries)
        for query, result in zip(queries, report.results):
            assert_results_identical(result, serial.execute(query))


class TestBatchedCache:
    @given(engine_cases())
    @settings(max_examples=20, deadline=None)
    def test_lookup_batch_matches_serial_lookups(self, case):
        pf, queries = case
        batch_cache = CachedExecutor(pf, capacity=256)
        serial_cache = CachedExecutor(pf, capacity=256)
        batched = batch_cache.lookup_batch(queries)
        for query, lookup in zip(queries, batched):
            reference = serial_cache.lookup(query)
            got = [
                r
                for b, rs in lookup.buckets.items()
                if query.matches(b)
                for r in rs
            ]
            want = [
                r
                for b, rs in reference.buckets.items()
                if query.matches(b)
                for r in rs
            ]
            # Record order is a function of which entry answered (a
            # subsumption hit serves the subsumer entry's order) — that
            # varies with cache state in the serial path too, so the
            # invariant is the record multiset, not the sequence.
            assert sorted(map(str, got)) == sorted(map(str, want))
            assert lookup.version == reference.version

    def test_batched_fill_is_invalidated_by_writes(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        pf = PartitionedFile(method)
        pf.insert((1, 2))
        cache = CachedExecutor(pf, capacity=16)
        q = pf.query({0: 1})
        (first,) = cache.lookup_batch([q])
        assert first.hit == "miss"
        (again,) = cache.lookup_batch([q])
        assert again.hit == "exact"
        pf.insert((1, 3))
        (fresh,) = cache.lookup_batch([q])
        assert fresh.hit == "miss"
        assert sum(len(rs) for rs in fresh.buckets.values()) == 2


class TestBatchedService:
    def test_execute_many_matches_serial(self):
        method = make_method("fx", fields=(8, 4), devices=4)
        pf = PartitionedFile(method)
        rng = random.Random(2)
        for __ in range(150):
            pf.insert((rng.randrange(8), rng.randrange(4)))
        serial = QueryExecutor(pf)
        service = QueryService(pf, ServiceConfig(batch_max_size=8))
        queries = [pf.query({0: i}) for i in range(8)] + [pf.query({})]
        results = service.execute_many(queries)
        for query, result in zip(queries, results):
            assert result.ok and result.batched
            assert sorted(map(str, result.records)) == sorted(
                map(str, serial.execute(query).records)
            )

    def test_concurrent_requests_form_batches(self):
        method = make_method("fx", fields=(8, 4), devices=4)
        pf = PartitionedFile(method)
        rng = random.Random(3)
        for __ in range(100):
            pf.insert((rng.randrange(8), rng.randrange(4)))
        serial = QueryExecutor(pf)
        service = QueryService(
            pf,
            ServiceConfig(
                batch_max_size=4,
                batch_window_ms=25.0,
                max_concurrent=16,
                queue_limit=64,
            ),
        )
        queries = [pf.query({0: i % 8}) for i in range(12)]
        results = [None] * len(queries)

        def worker(i):
            results[i] = service.execute(queries[i])

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for query, result in zip(queries, results):
            assert result.ok and result.batched
            assert sorted(map(str, result.records)) == sorted(
                map(str, serial.execute(query).records)
            )

    def test_batched_reads_observe_completed_writes(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        pf = PartitionedFile(method)
        service = QueryService(pf, ServiceConfig(batch_max_size=2))
        q = pf.query({0: 1})
        assert service.execute_many([q])[0].records == []
        __, version = service.insert((1, 2))
        result = service.execute_many([q])[0]
        assert result.records == [(1, 2)]
        assert result.write_version >= version

    def test_batch_config_is_validated(self):
        method = make_method("fx", fields=(4, 4), devices=4)
        pf = PartitionedFile(method)
        with pytest.raises(ConfigurationError):
            QueryService(pf, ServiceConfig(batch_max_size=0))
        with pytest.raises(ConfigurationError):
            QueryService(pf, ServiceConfig(batch_window_ms=-1.0))


class TestBatchedChecker:
    @pytest.mark.parametrize("name", ["fx", "gdm", "modulo"])
    def test_batched_replay_agrees_with_serial(self, name):
        reset_telemetry()
        method = make_method(name, fields=(8, 4, 8), devices=8)
        fs = method.filesystem
        rng = random.Random(1)
        queries = [
            PartialMatchQuery.from_dict(
                fs,
                {
                    i: rng.randrange(fs.field_sizes[i])
                    for i in range(fs.n_fields)
                    if rng.random() < 0.5
                },
            )
            for __ in range(25)
        ]
        checker = ObservedOptimalityChecker(method)
        serial = checker.replay(queries)
        batched = checker.replay(queries, batched=True)
        assert batched.consistent and batched.all_strict_optimal == (
            serial.all_strict_optimal
        )
        assert [o.observed_per_device for o in batched.observations] == [
            o.observed_per_device for o in serial.observations
        ]
