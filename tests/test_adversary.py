"""Tests for the adversarial box search."""

import pytest

from repro.analysis.adversary import load_factor, worst_box_search
from repro.analysis.box import box_is_strict_optimal
from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.zorder import ZOrderDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.box import BoxQuery

FS = FileSystem.of(16, 16, m=8)


class TestLoadFactor:
    def test_optimal_box_factor_one(self):
        fx = FXDistribution(FS)
        box = BoxQuery.from_spec(FS, {})  # full scan: uniform
        assert load_factor(fx, box) == 1.0
        assert box_is_strict_optimal(fx, box)

    def test_factor_at_least_one_always(self):
        fx = FXDistribution(FS)
        for spec in ({}, {0: (3, 9)}, {0: 5, 1: (0, 2)}):
            assert load_factor(fx, BoxQuery.from_spec(FS, spec)) >= 1.0


class TestWorstBoxSearch:
    def test_finds_a_genuinely_bad_box_for_zorder(self):
        # Z-order's device ignores high field bits; an adversary exploits it.
        result = worst_box_search(ZOrderDistribution(FS), restarts=4, seed=1)
        assert result.factor > 1.5

    def test_deterministic_per_seed(self):
        a = worst_box_search(ModuloDistribution(FS), restarts=2, seed=7)
        b = worst_box_search(ModuloDistribution(FS), restarts=2, seed=7)
        assert a.factor == b.factor
        assert a.box == b.box

    def test_reported_factor_matches_reported_box(self):
        result = worst_box_search(FXDistribution(FS), restarts=3, seed=2)
        assert load_factor(FXDistribution(FS), result.box) == pytest.approx(
            result.factor
        )

    def test_history_monotone(self):
        result = worst_box_search(ModuloDistribution(FS), restarts=3, seed=3)
        scores = [score for __, score in result.history]
        assert scores == sorted(scores)

    def test_restarts_validated(self):
        with pytest.raises(AnalysisError):
            worst_box_search(FXDistribution(FS), restarts=0)

    def test_search_beats_random_sampling(self):
        """Hill climbing must find at least as bad a box as the random
        starting points alone (its first evaluations)."""
        import random

        method = ModuloDistribution(FS)
        rng = random.Random(11)
        random_worst = 1.0
        for __ in range(30):
            spec = {}
            for i, size in enumerate(FS.field_sizes):
                width = rng.randint(1, size)
                start = rng.randint(0, size - width)
                spec[i] = (start, start + width - 1)
            random_worst = max(
                random_worst, load_factor(method, BoxQuery.from_spec(FS, spec))
            )
        searched = worst_box_search(method, restarts=5, seed=11)
        assert searched.factor >= random_worst - 1e-9
