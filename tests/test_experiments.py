"""Tests for the reproduction harness: golden tables, Tables 7-9, figures."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cpu_table import cpu_comparison
from repro.experiments.figures import reproduce_figure, reproduce_figure_exact
from repro.experiments.filesystems import (
    figure_scenario,
    small_field_sweep_filesystem,
    table7_setup,
    table8_setup,
    table9_setup,
)
from repro.experiments.golden import GOLDEN_TABLES, golden_report, golden_table
from repro.experiments.response_tables import reproduce_table


class TestGoldenTables:
    def test_every_worked_example_matches_paper(self):
        """Tables 1-6 byte-for-byte."""
        for table_id, matches in golden_report():
            assert matches, f"{table_id} diverges from the paper"

    @pytest.mark.parametrize("table_id", sorted(GOLDEN_TABLES))
    def test_computed_devices_in_range(self, table_id):
        table = golden_table(table_id)
        m = table.filesystem.m
        assert all(0 <= d < m for d in table.computed_devices())

    def test_table2_modulo_column(self):
        table = golden_table("table2")
        assert table.computed_modulo() == table.expected_modulo

    def test_unknown_table(self):
        with pytest.raises(ConfigurationError):
            golden_table("table99")


class TestTableSetups:
    def test_table7_configuration(self):
        setup = table7_setup()
        assert setup.filesystem.field_sizes == (8,) * 6
        assert setup.filesystem.m == 32
        assert list(setup.methods) == ["Modulo", "GDM1", "GDM2", "GDM3", "FX"]
        assert setup.methods["FX"].transform_methods() == (
            "I", "U", "IU1", "I", "U", "IU1"
        )

    def test_table9_uses_iu2(self):
        setup = table9_setup()
        assert setup.filesystem.m == 512
        methods = setup.methods["FX"].transform_methods()
        assert methods == ("I", "U", "IU2", "I", "U", "IU2")

    def test_table8_m64(self):
        assert table8_setup().filesystem.m == 64


class TestReproduceTables:
    """Exact numeric agreement with the paper where the scan is legible."""

    def test_table7_key_rows(self):
        table = reproduce_table("table7")
        assert table.column("Modulo") == (8.0, 48.0, 344.0, 2460.0, 18152.0)
        assert table.column("GDM1") == pytest.approx(
            (3.3, 18.1, 130.5, 1026.3, 8196.0), abs=0.05
        )
        assert table.column("FX") == (3.2, 16.0, 128.0, 1024.0, 8192.0)
        assert table.column("Optimal") == (2.0, 16.0, 128.0, 1024.0, 8192.0)

    def test_table8_key_rows(self):
        table = reproduce_table("table8")
        assert table.column("Modulo") == (8.0, 48.0, 344.0, 2460.0, 18152.0)
        assert table.column("FX") == (2.4, 8.0, 64.0, 512.0, 4096.0)
        assert table.column("Optimal") == (1.0, 8.0, 64.0, 512.0, 4096.0)

    def test_table9_key_rows(self):
        table = reproduce_table("table9")
        assert table.column("Modulo") == pytest.approx(
            (9.6, 91.2, 911.2, 9076.0, 90404.0), abs=0.05
        )
        assert table.column("GDM1") == pytest.approx(
            (1.7, 10.0, 90.3, 909.5, 9176.0), abs=0.05
        )
        assert table.column("FX")[3:] == (384.0, 4096.0)
        assert table.column("Optimal")[3:] == (384.0, 4096.0)

    @pytest.mark.parametrize("table_id", ["table7", "table8", "table9"])
    def test_fx_at_most_gdm_everywhere_except_k2(self, table_id):
        """Paper: 'except for first row of table 8 and 9, FX gives smaller
        largest-response-size than the other methods'."""
        table = reproduce_table(table_id)
        fx = table.column("FX")
        for name in ("Modulo", "GDM1", "GDM2", "GDM3"):
            other = table.column(name)
            for row in range(1, len(fx)):  # skip k=2 (first row)
                assert fx[row] <= other[row] + 1e-9

    @pytest.mark.parametrize("table_id", ["table7", "table8", "table9"])
    def test_optimal_is_floor(self, table_id):
        table = reproduce_table(table_id)
        optimal = table.column("Optimal")
        for name in ("Modulo", "GDM1", "GDM2", "GDM3", "FX"):
            for ours, floor in zip(table.column(name), optimal):
                assert ours >= floor - 1e-9

    def test_unknown_table(self):
        with pytest.raises(ConfigurationError):
            reproduce_table("table10")


class TestFigureScenarios:
    def test_sweep_shapes(self):
        scenario = figure_scenario("figure1")
        assert len(scenario.filesystems) == 7
        assert scenario.filesystems[0].small_fields() == ()
        assert scenario.filesystems[6].small_fields() == tuple(range(6))

    def test_figure1_pairwise_product_condition(self):
        scenario = figure_scenario("figure1")
        fs = scenario.filesystems[6]
        sizes = fs.field_sizes
        assert all(
            sizes[i] * sizes[j] >= fs.m
            for i in range(6)
            for j in range(i + 1, 6)
        )

    def test_figure3_triple_condition(self):
        scenario = figure_scenario("figure3")
        fs = scenario.filesystems[6]
        sizes = fs.field_sizes
        assert all(
            sizes[i] * sizes[j] < fs.m for i in range(6) for j in range(i + 1, 6)
        )
        assert sizes[0] * sizes[1] * sizes[2] >= fs.m

    def test_unknown_figure(self):
        with pytest.raises(ConfigurationError):
            figure_scenario("figure9")

    def test_sweep_filesystem_validation(self):
        with pytest.raises(ConfigurationError):
            small_field_sweep_filesystem(4, 16, 16, 2)
        with pytest.raises(ConfigurationError):
            small_field_sweep_filesystem(4, 16, 4, 5)


class TestReproduceFigures:
    @pytest.mark.parametrize("figure_id", ["figure1", "figure3"])
    def test_monotone_structure(self, figure_id):
        series = reproduce_figure(figure_id)
        fd = series.series["FD (FX)"]
        md = series.series["MD (Modulo)"]
        assert fd[0] == 100.0 and md[0] == 100.0
        # FX dominates Modulo at every x
        assert all(f >= m_val for f, m_val in zip(fd, md))
        # Modulo decays sharply at the right edge
        assert md[-1] < 25.0
        # FX stays comparatively high
        assert fd[-1] > 50.0

    def test_exact_matches_sufficient_on_figure1(self):
        """Observed tightness: on the figure scenarios the section 4.2
        conditions are not just sound but exact."""
        sufficient = reproduce_figure("figure1")
        exact = reproduce_figure_exact("figure1")
        assert sufficient.series["FD (FX)"] == pytest.approx(
            exact.series["FD (FX)"]
        )

    def test_figure2_has_eleven_points(self):
        series = reproduce_figure("figure2")
        assert len(series.x) == 11


class TestCpuComparisonHarness:
    def test_paper_ratio_claim(self):
        rows = cpu_comparison("mc68000")
        assert all(row.fx_to_gdm < 0.4 for row in rows)


class TestRunnerReport:
    def test_build_report_contains_all_sections(self):
        from repro.experiments.runner import build_report

        report = build_report(exact_figures=False)
        assert "Tables 1-6" in report
        assert "Table 7" in report
        assert "Figure 4" in report
        assert "CPU address computation" in report

    def test_main_writes_file(self, tmp_path):
        from repro.experiments.runner import main

        out = tmp_path / "report.md"
        assert main(["--output", str(out), "--no-exact-figures"]) == 0
        assert out.exists()
        assert "EXPERIMENTS" in out.read_text()
