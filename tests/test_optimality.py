"""Tests for the empirical optimality checkers (repro.core.optimality)."""

import pytest

from repro.core.fx import FXDistribution
from repro.core.optimality import (
    is_k_optimal,
    is_perfect_optimal,
    is_strict_optimal,
    optimality_report,
    pattern_is_strict_optimal,
)
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery


class TestStrictOptimal:
    def test_single_query(self):
        fs = FileSystem.of(2, 8, m=4)
        fx = FXDistribution(fs)
        q = PartialMatchQuery.from_dict(fs, {0: 1})
        assert is_strict_optimal(fx, q)

    def test_pattern_level_separable(self):
        fs = FileSystem.of(4, 4, m=16)
        good = FXDistribution(fs, transforms=["I", "U"])
        bad = FXDistribution(fs, transforms=["I", "I"])
        assert pattern_is_strict_optimal(good, {0, 1})
        assert not pattern_is_strict_optimal(bad, {0, 1})

    def test_pattern_level_non_separable(self):
        fs = FileSystem.of(4, 4, m=4)
        random_method = RandomDistribution(fs, seed=3)
        # brute-force path must run and produce a boolean
        result = pattern_is_strict_optimal(random_method, {0})
        assert isinstance(result, bool)

    def test_work_limit_enforced(self):
        fs = FileSystem.of(16, 16, 16, m=4)
        random_method = RandomDistribution(fs)
        with pytest.raises(AnalysisError):
            pattern_is_strict_optimal(random_method, {0, 1}, work_limit=10)


class TestKOptimal:
    def test_k0_and_k1_always_hold_for_fx(self):
        # Theorem 1 via the public checker.
        fs = FileSystem.of(2, 4, 8, m=16)
        fx = FXDistribution(fs)
        assert is_k_optimal(fx, 0)
        assert is_k_optimal(fx, 1)

    def test_k2_fails_for_conflicting_transforms(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["U", "U"])
        assert not is_k_optimal(fx, 2)


class TestPerfectOptimal:
    def test_perfect_optimal_theorem4_config(self):
        fs = FileSystem.of(4, 4, m=16)
        assert is_perfect_optimal(FXDistribution(fs, transforms=["I", "U"]))

    def test_modulo_small_fields_not_perfect(self):
        fs = FileSystem.of(4, 4, m=16)
        assert not is_perfect_optimal(ModuloDistribution(fs))


class TestOptimalityReport:
    def test_counts_and_fraction(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "U"])
        report = optimality_report(fx)
        assert report.total_patterns == 4
        assert report.optimal_patterns == 4
        assert report.optimal_fraction == 1.0
        assert report.failures == []

    def test_failures_listed_worst_first(self):
        fs = FileSystem.of(8, 8, 8, m=16)
        fx = FXDistribution(fs, transforms=["I", "I", "I"])
        report = optimality_report(fx)
        assert report.optimal_fraction < 1.0
        overloads = [worst - bound for __, worst, bound in report.failures]
        assert overloads == sorted(overloads, reverse=True)

    def test_summary_text(self):
        fs = FileSystem.of(4, 4, m=16)
        report = optimality_report(ModuloDistribution(fs))
        assert "modulo" in report.summary()
        assert "%" in report.summary()

    def test_explicit_pattern_subset(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "U"])
        report = optimality_report(fx, patterns=[frozenset({0})])
        assert report.total_patterns == 1

    def test_non_separable_method_report(self):
        fs = FileSystem.of(4, 4, m=4)
        report = optimality_report(RandomDistribution(fs, seed=1))
        assert report.total_patterns == 4
        # random placement essentially never survives the full census
        assert report.optimal_fraction < 1.0

    def test_empty_report_fraction(self):
        fs = FileSystem.of(4, 4, m=16)
        report = optimality_report(
            FXDistribution(fs, transforms=["I", "U"]), patterns=[]
        )
        assert report.optimal_fraction == 1.0
