"""Algebraic laws every separable method must satisfy.

One parametrised suite over all five separable families (Basic FX,
Extended FX, Modulo, GDM, Z-order): fold consistency, histogram mass,
translation structure, bulk-path parity and uniform-field detection.
"""

import numpy as np
import pytest

from repro.analysis.histograms import evaluator_for, separable_response_histogram
from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.zorder import ZOrderDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.query.patterns import all_patterns, queries_for_pattern

FS = FileSystem.of(4, 16, 2, m=8)

SEPARABLE_FACTORIES = [
    ("fx-basic", BasicFXDistribution),
    ("fx-paper", lambda fs: FXDistribution(fs, policy="paper")),
    ("fx-theorem9", lambda fs: FXDistribution(fs, policy="theorem9")),
    ("modulo", ModuloDistribution),
    ("gdm", lambda fs: GDMDistribution(fs, multipliers=(3, 5, 7))),
    ("zorder", ZOrderDistribution),
]

IDS = [name for name, __ in SEPARABLE_FACTORIES]
FACTORIES = [factory for __, factory in SEPARABLE_FACTORIES]


@pytest.fixture(params=FACTORIES, ids=IDS)
def method(request):
    return request.param(FS)


class TestFoldConsistency:
    def test_device_of_equals_contribution_fold(self, method):
        m = FS.m
        for bucket in FS.buckets():
            contributions = [
                method.field_contribution(i, v) for i, v in enumerate(bucket)
            ]
            if method.combine == "xor":
                folded = 0
                for c in contributions:
                    folded ^= c
                folded &= m - 1
            else:
                folded = sum(contributions) % m
            assert method.device_of(bucket) == folded

    def test_contributions_in_device_space(self, method):
        for i, size in enumerate(FS.field_sizes):
            table = method.contribution_table(i)
            assert len(table) == size
            assert all(0 <= c < FS.m for c in table)


class TestHistogramLaws:
    def test_mass_conservation(self, method):
        for pattern in all_patterns(FS.n_fields):
            histogram = evaluator_for(method).histogram(pattern)
            expected = 1
            for i in pattern:
                expected *= FS.field_sizes[i]
            assert int(histogram.sum()) == expected

    def test_translation_structure(self, method):
        """Concrete queries of one pattern are translations of the base
        histogram — the exact statement behind pattern invariance."""
        pattern = frozenset({1, 2})
        base = evaluator_for(method).histogram(pattern)
        for query in queries_for_pattern(FS, pattern):
            histogram = np.asarray(method.response_histogram(query))
            assert sorted(histogram.tolist()) == sorted(base.tolist())

    def test_uniform_large_identity_field_detected(self, method):
        # field 1 has F = 16 >= M = 8; for methods whose contribution on it
        # covers Z_M uniformly, the single-field pattern must be uniform
        histogram = evaluator_for(method).histogram(frozenset({1}))
        table = method.contribution_table(1)
        counts = np.bincount(np.array(table), minlength=FS.m)
        assert histogram.tolist() == counts.tolist()


class TestBulkParity:
    def test_devices_of_array_matches_scalar(self, method):
        buckets = np.array(list(FS.buckets()), dtype=np.int64)
        vectorised = method.devices_of_array(buckets)
        scalar = [method.device_of(tuple(int(x) for x in b)) for b in buckets]
        assert vectorised.tolist() == scalar


class TestInverseMappingParity:
    def test_qualified_on_device_partitions(self, method):
        from repro.core.inverse import separable_qualified_on_device

        query = PartialMatchQuery.from_dict(FS, {0: 2})
        collected = []
        for device in range(FS.m):
            for bucket in separable_qualified_on_device(method, device, query):
                assert method.device_of(bucket) == device
                collected.append(bucket)
        assert sorted(collected) == sorted(query.qualified_buckets())


class TestSingleQueryHistogram:
    def test_separable_histogram_function(self, method):
        query = PartialMatchQuery.from_dict(FS, {1: 9})
        histogram = separable_response_histogram(method, query)
        naive = [0] * FS.m
        for bucket in query.qualified_buckets():
            naive[method.device_of(bucket)] += 1
        assert histogram == naive
