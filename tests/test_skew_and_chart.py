"""Tests for skew metrics and the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import render_chart, render_series
from repro.analysis.optim_prob import pattern_probability
from repro.analysis.query_model import IndependenceModel
from repro.analysis.skew import (
    expected_largest_response,
    expected_load_factor,
    gini,
    pattern_load_factor,
    skew_summary,
    static_balance,
)
from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.patterns import all_patterns
from repro.util.numbers import mix64


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_low_bits_avalanche(self):
        # consecutive inputs should not produce a fixed-stride pattern in
        # the low 4 bits (the bug class this mixer replaced)
        lows = [mix64(v) % 16 for v in range(64)]
        strides = {(b - a) % 16 for a, b in zip(lows, lows[1:])}
        assert len(strides) > 4

    def test_balanced_mod_small_powers(self):
        counts = [0] * 8
        for v in range(4096):
            counts[mix64(v) % 8] += 1
        assert max(counts) - min(counts) < 150


class TestGini:
    def test_equal_distribution_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_distribution_high(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            gini([])

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            gini([-1, 2])

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))


class TestLoadFactors:
    FS = FileSystem.of(4, 4, m=16)

    def test_perfect_method_factor_one(self):
        fx = FXDistribution(self.FS, transforms=["I", "U"])
        assert pattern_load_factor(fx, frozenset({0, 1})) == 1.0
        assert expected_load_factor(fx) == pytest.approx(1.0)

    def test_skewed_method_factor_above_one(self):
        modulo = ModuloDistribution(self.FS)
        assert pattern_load_factor(modulo, frozenset({0, 1})) > 1.0
        assert expected_load_factor(modulo) > 1.0

    def test_expected_largest_response_orders_methods(self):
        fx = FXDistribution(self.FS, transforms=["I", "U"])
        modulo = ModuloDistribution(self.FS)
        assert expected_largest_response(fx) < expected_largest_response(modulo)

    def test_p_extremes(self):
        fx = FXDistribution(self.FS, transforms=["I", "U"])
        # p = 1: always exact match -> largest response 1
        assert expected_largest_response(fx, p=1.0) == pytest.approx(1.0)
        # p = 0: always full scan -> 16/16 = 1 per device
        assert expected_largest_response(fx, p=0.0) == pytest.approx(1.0)


class TestStaticBalance:
    def test_separable_methods_perfectly_balanced(self):
        fs = FileSystem.of(8, 8, m=8)
        for method in (FXDistribution(fs), ModuloDistribution(fs)):
            ratio, g = static_balance(method)
            assert ratio == pytest.approx(1.0)
            assert g == pytest.approx(0.0)


class TestSkewSummary:
    def test_summary_fields(self):
        fs = FileSystem.of(4, 4, m=16)
        summary = skew_summary(FXDistribution(fs, transforms=["I", "U"]))
        assert summary.method_name == "fx"
        assert summary.worst_load_factor == 1.0
        assert summary.optimal_fraction == 1.0
        row = summary.row()
        assert row[0] == "fx"
        assert row[-1] == "100.0%"

    def test_modulo_summary_shows_skew(self):
        fs = FileSystem.of(4, 4, m=16)
        summary = skew_summary(ModuloDistribution(fs))
        assert summary.worst_load_factor > 1.0
        assert summary.optimal_fraction < 1.0

    def test_optimal_fraction_respects_p(self):
        """Regression: optimal_fraction was hardcoded to p=0.5 weights.

        On F=(2,2,2,2), M=16 the I,U,IU1,IU2 assignment is optimal on
        some patterns and not others, so the fraction must shift with p;
        verify it against the definition at p=0.25.
        """
        fs = FileSystem.of(2, 2, 2, 2, m=16)
        method = FXDistribution(fs, transforms=["I", "U", "IU1", "IU2"])
        exact = sum(
            pattern_probability(pattern, fs.n_fields, 0.25)
            for pattern in all_patterns(fs.n_fields)
            if pattern_load_factor(method, pattern) <= 1.0
        )
        summary = skew_summary(method, p=0.25)
        assert summary.optimal_fraction == pytest.approx(exact)
        # and the p=0.5 fraction is genuinely different on this method,
        # so the old hardcoded behaviour cannot sneak back in
        assert skew_summary(method, p=0.5).optimal_fraction != pytest.approx(
            exact
        )

    def test_p_weights_consistent_across_summary_fields(self):
        """All p-weighted fields of one summary use the same p."""
        fs = FileSystem.of(2, 2, 2, 2, m=16)
        method = FXDistribution(fs, transforms=["I", "U", "IU1", "IU2"])
        summary = skew_summary(method, p=0.25)
        assert summary.expected_largest_response == pytest.approx(
            expected_largest_response(method, p=0.25)
        )
        assert summary.expected_load_factor == pytest.approx(
            expected_load_factor(method, p=0.25)
        )

    def test_explicit_model_overrides_p(self):
        fs = FileSystem.of(2, 2, 2, 2, m=16)
        method = FXDistribution(fs, transforms=["I", "U", "IU1", "IU2"])
        model = IndependenceModel(0.3)
        assert skew_summary(
            method, p=0.9, model=model
        ).optimal_fraction == pytest.approx(
            skew_summary(method, p=0.3).optimal_fraction
        )
        assert expected_load_factor(
            method, p=0.9, model=model
        ) == pytest.approx(expected_load_factor(method, p=0.3))


class TestAsciiChart:
    def test_basic_render(self):
        text = render_chart([0, 1, 2], {"A": [0.0, 50.0, 100.0]}, height=8)
        lines = text.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + ticks + legend
        assert "* A" in lines[-1]
        assert "100.0" in lines[0]

    def test_two_series_get_distinct_markers(self):
        text = render_chart(
            [0, 1], {"A": [0.0, 1.0], "B": [1.0, 0.0]}, height=6
        )
        assert "* A" in text and "o B" in text

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            render_chart([0, 1], {"A": [1.0]})

    def test_empty_series(self):
        with pytest.raises(AnalysisError):
            render_chart([0], {})

    def test_height_minimum(self):
        with pytest.raises(AnalysisError):
            render_chart([0], {"A": [1.0]}, height=2)

    def test_too_many_series(self):
        series = {f"s{i}": [0.0] for i in range(7)}
        with pytest.raises(AnalysisError):
            render_chart([0], series)

    def test_flat_series_does_not_divide_by_zero(self):
        text = render_chart([0, 1], {"A": [5.0, 5.0]}, height=6)
        assert "*" in text

    def test_render_optimality_series(self):
        from repro.experiments.figures import reproduce_figure

        text = render_series(reproduce_figure("figure1"))
        assert "% strict optimal" in text
        assert "FD (FX)" in text
