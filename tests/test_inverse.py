"""Tests for algebraic inverse mapping (repro.core.inverse).

The defining property: for every device, the algebraic enumeration of its
qualified buckets must equal filtering ``R(q)`` by ``device_of`` — across
methods, file systems and query shapes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fx import FXDistribution
from repro.core.inverse import contribution_index, separable_qualified_on_device
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery


def _naive(method, device, query):
    return [
        bucket
        for bucket in query.qualified_buckets()
        if method.device_of(bucket) == device
    ]


def _method_factories():
    return [
        ("fx-paper", lambda fs: FXDistribution(fs)),
        ("fx-theorem9", lambda fs: FXDistribution(fs, policy="theorem9")),
        ("modulo", lambda fs: ModuloDistribution(fs)),
        (
            "gdm-odd",
            lambda fs: GDMDistribution(
                fs, multipliers=tuple(3 + 2 * i for i in range(fs.n_fields))
            ),
        ),
        (
            "gdm-even",  # even multipliers exercise non-injective solving
            lambda fs: GDMDistribution(
                fs, multipliers=tuple(2 + 2 * i for i in range(fs.n_fields))
            ),
        ),
    ]


FILESYSTEMS = [
    FileSystem.of(4, 8, m=8),
    FileSystem.of(2, 4, 8, m=4),
    FileSystem.of(16, 2, m=8),   # field larger than M
    FileSystem.of(4, 4, 4, m=16),
]


@pytest.mark.parametrize("name,factory", _method_factories())
@pytest.mark.parametrize("fs", FILESYSTEMS, ids=lambda fs: fs.describe())
def test_inverse_matches_naive_filter_all_patterns(name, factory, fs):
    method = factory(fs)
    from repro.query.patterns import all_patterns, representative_query

    for pattern in all_patterns(fs.n_fields):
        query = representative_query(fs, pattern)
        for device in range(fs.m):
            algebraic = sorted(
                separable_qualified_on_device(method, device, query)
            )
            assert algebraic == sorted(_naive(method, device, query))


@given(
    st.sampled_from(FILESYSTEMS),
    st.integers(0, 4),
    st.randoms(use_true_random=False),
)
@settings(max_examples=30, deadline=None)
def test_inverse_matches_naive_random_values(fs, method_index, rng):
    __, factory = _method_factories()[method_index]
    method = factory(fs)
    # Random query with random specified values.
    values = []
    for size in fs.field_sizes:
        values.append(rng.randrange(size) if rng.random() < 0.5 else None)
    query = PartialMatchQuery(fs, tuple(values))
    device = rng.randrange(fs.m)
    algebraic = sorted(separable_qualified_on_device(method, device, query))
    assert algebraic == sorted(_naive(method, device, query))


def test_inverse_partitions_qualified_buckets():
    fs = FileSystem.of(4, 8, m=8)
    fx = FXDistribution(fs)
    query = PartialMatchQuery.from_dict(fs, {0: 2})
    collected = []
    for device in range(fs.m):
        collected.extend(separable_qualified_on_device(fx, device, query))
    assert sorted(collected) == sorted(query.qualified_buckets())


def test_exact_match_query():
    fs = FileSystem.of(4, 8, m=8)
    fx = FXDistribution(fs)
    bucket = (3, 6)
    query = PartialMatchQuery.exact(fs, bucket)
    home = fx.device_of(bucket)
    for device in range(fs.m):
        found = list(separable_qualified_on_device(fx, device, query))
        assert found == ([bucket] if device == home else [])


def test_contribution_index_groups_values():
    fs = FileSystem.of(16, 2, m=8)  # identity on a large field: 2 values/slot
    fx = FXDistribution(fs)
    index = contribution_index(fx, 0)
    assert all(len(values) == 2 for values in index.values())
    assert sum(len(v) for v in index.values()) == 16


def test_method_level_entry_point():
    fs = FileSystem.of(4, 8, m=8)
    fx = FXDistribution(fs)
    query = PartialMatchQuery.from_dict(fs, {1: 3})
    assert sorted(fx.qualified_on_device(2, query)) == sorted(
        _naive(fx, 2, query)
    )
