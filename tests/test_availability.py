"""Tests for the replication availability analysis."""

import math
from itertools import combinations

import pytest

from repro.analysis.availability import (
    count_survivable_sets,
    expected_degraded_load_factor,
    survivable,
    survival_probability,
)
from repro.core.fx import FXDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem


def _scheme(m=8, offset=1):
    fs = FileSystem.of(4, m * 2, m=m)
    return ChainedReplicaScheme(FXDistribution(fs), offset=offset)


class TestSurvivable:
    def test_empty_set_survives(self):
        assert survivable(_scheme(), set())

    def test_single_failure_survives(self):
        scheme = _scheme()
        assert all(survivable(scheme, {d}) for d in range(8))

    def test_adjacent_pair_loses(self):
        assert not survivable(_scheme(), {3, 4})
        assert not survivable(_scheme(), {7, 0})  # wraps around

    def test_non_adjacent_pair_survives(self):
        assert survivable(_scheme(), {1, 5})

    def test_offset_respected(self):
        scheme = _scheme(offset=3)
        assert not survivable(scheme, {2, 5})   # 2 + 3 = 5
        assert survivable(scheme, {2, 4})

    def test_unknown_device(self):
        with pytest.raises(AnalysisError):
            survivable(_scheme(), {99})


class TestCountSurvivableSets:
    @pytest.mark.parametrize("m", [4, 8, 16])
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_matches_brute_force(self, m, k):
        scheme = _scheme(m=m)
        brute = sum(
            1
            for failed in combinations(range(m), k)
            if survivable(scheme, set(failed))
        )
        assert count_survivable_sets(m, k) == brute

    def test_over_half_is_zero(self):
        assert count_survivable_sets(8, 5) == 0

    def test_bad_inputs(self):
        with pytest.raises(AnalysisError):
            count_survivable_sets(0, 1)


class TestSurvivalProbability:
    def test_known_value(self):
        # m=8, k=2: 20 survivable of C(8,2)=28
        assert survival_probability(_scheme(), 2) == pytest.approx(20 / 28)

    def test_monotone_in_k(self):
        scheme = _scheme(m=16)
        probabilities = [survival_probability(scheme, k) for k in range(0, 6)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_non_coprime_offset_brute_force(self):
        scheme = _scheme(m=8, offset=2)  # gcd(2, 8) = 2: two cycles
        value = survival_probability(scheme, 2)
        brute = sum(
            1
            for failed in combinations(range(8), 2)
            if survivable(scheme, set(failed))
        ) / math.comb(8, 2)
        assert value == pytest.approx(brute)

    def test_k_range_checked(self):
        with pytest.raises(AnalysisError):
            survival_probability(_scheme(), 9)


class TestDegradedLoadFactor:
    def test_two_x(self):
        assert expected_degraded_load_factor(_scheme()) == 2.0

    def test_matches_simulated_degradation(self):
        """The analytic 2x must match the replicated file's observed
        degraded histogram under a balanced base method."""
        from repro.query.partial_match import PartialMatchQuery
        from repro.storage.replicated_file import ReplicatedFile

        fs = FileSystem.of(8, 8, m=8)
        scheme = ChainedReplicaScheme(FXDistribution(fs))
        rf = ReplicatedFile(scheme)
        query = PartialMatchQuery.full_scan(fs)
        healthy = rf.degraded_histogram(query)
        rf.fail_device(2)
        degraded = rf.degraded_histogram(query)
        assert degraded[3] == 2 * healthy[3]
