"""Tests confronting the theorem predicates with empirical ground truth.

The key soundness property: whenever the section 4.2 sufficient rule claims
a pattern is strict optimal, the exact convolution evaluator must agree —
across randomly drawn file systems and transform assignments.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histograms import evaluator_for
from repro.core.fx import FXDistribution
from repro.core.theorems import (
    fx_perfect_optimal_sufficient,
    fx_strict_optimal_sufficient,
    methods_differ,
    modulo_strict_optimal_sufficient,
    pair_condition,
    theorem1_applies,
    theorem2_applies,
    theorem3_uniform_subset_exists,
    triple_condition,
)
from repro.core.transforms import make_transform
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.query.patterns import all_patterns


class TestMethodsDiffer:
    def test_same_family_not_different(self):
        a = make_transform("U", 4, 16)
        b = make_transform("U", 2, 16)
        assert not methods_differ(a, b)

    def test_distinct_families_differ(self):
        a = make_transform("I", 4, 16)
        b = make_transform("U", 4, 16)
        assert methods_differ(a, b)

    def test_iu1_iu2_pair_excluded(self):
        a = make_transform("IU1", 4, 64)
        b = make_transform("IU2", 2, 64)
        assert b.effective_method == "IU2"
        assert not methods_differ(a, b)

    def test_collapsed_iu2_counts_as_iu1(self):
        # IU2 on F=8, M=16 degenerates to IU1; against a true IU1 the pair
        # is same-method.
        a = make_transform("IU2", 8, 16)
        b = make_transform("IU1", 4, 16)
        assert not methods_differ(a, b)


class TestBasicPredicates:
    def test_theorem1(self):
        assert theorem1_applies(set())
        assert theorem1_applies({3})
        assert not theorem1_applies({1, 2})

    def test_theorem2(self):
        fs = FileSystem.of(4, 32, m=16)
        assert theorem2_applies(fs, {1})
        assert not theorem2_applies(fs, {0})

    def test_pair_condition_product_requirement(self):
        fs = FileSystem.of(4, 4, m=32)
        fx = FXDistribution(fs, transforms=["I", "U"])
        assert pair_condition(fx, {0, 1}, require_product=False)
        assert not pair_condition(fx, {0, 1}, require_product=True)

    def test_triple_condition_requires_iu2_at_least_u(self):
        # IU2 field smaller than U field violates Lemma 9.1's ordering.
        fs = FileSystem.of(8, 4, 2, m=64)
        good = FXDistribution(fs, transforms=["I", "U", "IU2"])
        assert not triple_condition(good, {0, 1, 2}, require_product=False)
        swapped = FXDistribution(fs, transforms=["I", "IU2", "U"])
        assert triple_condition(swapped, {0, 1, 2}, require_product=False)


# Randomised soundness check -------------------------------------------------

_SIZES = st.sampled_from([2, 4, 8, 16])
_FAMILY = st.sampled_from(["I", "U", "IU1", "IU2"])


@st.composite
def fx_instances(draw):
    n = draw(st.integers(2, 5))
    m = draw(st.sampled_from([4, 8, 16, 32]))
    sizes = [draw(_SIZES) for __ in range(n)]
    methods = [
        "I" if size >= m else draw(_FAMILY) for size in sizes
    ]
    fs = FileSystem.of(*sizes, m=m)
    return FXDistribution(fs, transforms=methods)


class TestSufficiencySoundness:
    @given(fx_instances())
    @settings(max_examples=60, deadline=None)
    def test_sufficient_rule_never_overclaims(self, fx):
        """Section 4.2 rule => exact strict optimality, every pattern."""
        evaluator = evaluator_for(fx)
        for pattern in all_patterns(fx.filesystem.n_fields):
            if fx_strict_optimal_sufficient(fx, pattern):
                assert evaluator.is_strict_optimal(pattern), (
                    fx.describe(),
                    sorted(pattern),
                )

    @given(fx_instances())
    @settings(max_examples=30, deadline=None)
    def test_theorem3_check_never_overclaims(self, fx):
        evaluator = evaluator_for(fx)
        for pattern in all_patterns(fx.filesystem.n_fields):
            if theorem3_uniform_subset_exists(fx, pattern):
                assert evaluator.is_strict_optimal(pattern)

    def test_theorem3_catches_case_closed_form_excludes(self):
        """The constructive Theorem 3 search certifies an IU1+IU2 pair the
        closed-form rule must skip (section 4.2 bars the IU1/IU2 pairing
        from its pair conditions), because the pair's projection happens to
        spread uniformly: IU1(f,8|16) XOR 13 is disjoint from IU1(f,8|16).
        """
        fs = FileSystem.of(8, 2, m=16)
        fx = FXDistribution(fs, transforms=["IU1", "IU2"])
        pattern = frozenset({0, 1})
        assert not fx_strict_optimal_sufficient(fx, pattern)
        assert theorem3_uniform_subset_exists(fx, pattern)
        assert evaluator_for(fx).is_strict_optimal(pattern)


class TestModuloSufficiency:
    @given(
        st.lists(_SIZES, min_size=2, max_size=5),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_modulo_condition_never_overclaims(self, sizes, m):
        fs = FileSystem.of(*sizes, m=m)
        modulo = ModuloDistribution(fs)
        evaluator = evaluator_for(modulo)
        for pattern in all_patterns(fs.n_fields):
            if modulo_strict_optimal_sufficient(fs, pattern):
                assert evaluator.is_strict_optimal(pattern)


class TestPerfectOptimalitySummary:
    """Section 4.2: FX can always be perfect optimal when L <= 3."""

    @pytest.mark.parametrize(
        "sizes,m",
        [
            ((32, 32), 32),          # L = 0
            ((4, 32), 32),           # L = 1
            ((4, 8, 32), 32),        # L = 2
            ((4, 8, 16, 32), 32),    # L = 3
            ((2, 4, 8), 16),         # L = 3, no large fields
        ],
    )
    def test_theorem9_policy_certified_perfect(self, sizes, m):
        fs = FileSystem.of(*sizes, m=m)
        fx = FXDistribution(fs, policy="theorem9")
        assert fx_perfect_optimal_sufficient(fx)
        # and the certificate is truthful:
        evaluator = evaluator_for(fx)
        assert all(
            evaluator.is_strict_optimal(p) for p in all_patterns(fs.n_fields)
        )

    def test_four_small_fields_not_certified(self):
        # [Sung87]: no method is perfect optimal with L >= 4; the rule
        # correctly refuses to certify the all-unspecified pattern.
        fs = FileSystem.uniform(4, 4, m=32)
        fx = FXDistribution(fs, policy="paper")
        assert not fx_perfect_optimal_sufficient(fx)

    def test_fx_superset_of_modulo_claim(self):
        """Section 4.2's closing claim: the FX-optimal query set contains
        the Modulo-optimal set (power-of-two sizes and M)."""
        for sizes, m in [((4, 8, 32), 16), ((8, 8, 8), 32), ((2, 16, 4, 8), 8)]:
            fs = FileSystem.of(*sizes, m=m)
            fx = FXDistribution(fs, policy="paper")
            for pattern in all_patterns(fs.n_fields):
                if modulo_strict_optimal_sufficient(fs, pattern):
                    assert fx_strict_optimal_sufficient(fx, pattern)
