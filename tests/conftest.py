"""Shared pytest configuration: hypothesis profiles.

Default profile keeps the suite fast; ``HYPOTHESIS_PROFILE=thorough`` (used
in scheduled CI) multiplies example counts for the property tests, and
``HYPOTHESIS_PROFILE=smoke`` trims them for pre-commit runs.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    settings(deadline=None, suppress_health_check=[HealthCheck.too_slow]),
)
settings.register_profile(
    "thorough",
    settings(
        max_examples=400,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)
settings.register_profile(
    "smoke",
    settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
