"""Tests for the multi-tenant network gateway and the futures-first API.

Covers the wire protocol (framing, torn frames, oversized rejection,
versioned envelope), the server ops, per-tenant quotas and rate limits,
client-disconnect and graceful-drain semantics, the loopback multi-tenant
load test with serial-replay staleness verification, the
``QueryService`` futures surface, the ``make_gateway`` facade and the
``serve`` / ``gateway`` CLI exit semantics.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
import warnings

import pytest

import repro
from repro import obs
from repro.api import make_gateway, make_service
from repro.cli import main
from repro.envelope import SCHEMA_VERSION, check_version, versioned
from repro.errors import (
    ConfigurationError,
    FrameTooLargeError,
    ProtocolError,
    ReproError,
)
from repro.gateway import (
    FrameDecoder,
    Gateway,
    GatewayClient,
    GatewayConfig,
    GatewayLoadSpec,
    GatewayRequestError,
    TenantSpec,
    TokenBucket,
    encode_frame,
    recv_frame,
    run_loopback_load,
)
from repro.gateway import protocol
from repro.gateway.loadtest import _connection_ops
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.service.frontend import ServiceResult
from repro.service.loadgen import LoadReport, RequestRecord
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile


FIELDS = (4, 4)
DEVICES = 4


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    obs.reset_telemetry()
    yield
    obs.reset_telemetry()


@pytest.fixture
def gateway_factory():
    """Build started gateways and guarantee they are closed after the test."""
    gateways: list[Gateway] = []

    def build(tenants=("alpha", "beta"), **kwargs):
        kwargs.setdefault("fields", FIELDS)
        kwargs.setdefault("devices", DEVICES)
        kwargs.setdefault("cache_capacity", 16)
        if not isinstance(tenants, dict):
            tenants = list(tenants)
        gateway = make_gateway(tenants, **kwargs)
        gateways.append(gateway)
        address = gateway.start()
        return gateway, address

    yield build
    for gateway in gateways:
        gateway.close()


def _counters():
    return obs.telemetry().metrics.snapshot().counters


# ======================================================================
# Framing
# ======================================================================
class TestFraming:
    def test_round_trip(self):
        payload = versioned({"id": 1, "op": "ping"})
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(payload)) == [payload]
        assert decoder.buffered == 0

    def test_torn_frames_byte_at_a_time(self):
        payloads = [
            versioned({"id": i, "op": "ping", "pad": "x" * i})
            for i in range(5)
        ]
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        decoded: list[dict] = []
        for i in range(len(stream)):
            decoded.extend(decoder.feed(stream[i:i + 1]))
        assert decoded == payloads
        assert decoder.buffered == 0

    def test_many_frames_in_one_feed(self):
        payloads = [versioned({"id": i}) for i in range(8)]
        stream = b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(stream) == payloads

    def test_oversized_frame_rejected_from_header_alone(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        # Header declares a 1 GiB body; only 8 bytes ever arrive.
        header = struct.pack(">I", 1 << 30)
        with pytest.raises(FrameTooLargeError) as excinfo:
            decoder.feed(header + b"asdfasdf")
        assert excinfo.value.declared == 1 << 30
        assert excinfo.value.limit == 64
        # Bounded read: nothing close to the declared size was buffered.
        assert decoder.buffered <= len(header) + 8

    def test_undecodable_body_raises(self):
        bad = struct.pack(">I", 3) + b"{{{"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bad)

    def test_non_object_body_raises(self):
        bad = struct.pack(">I", 2) + b"[]"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bad)

    def test_decoder_requires_positive_cap(self):
        with pytest.raises(ProtocolError):
            FrameDecoder(max_frame_bytes=0)


# ======================================================================
# Versioned envelope — one schema shared by wire, results and obs export
# ======================================================================
class TestEnvelope:
    def test_versioned_leads_with_v_and_does_not_mutate(self):
        payload = {"op": "ping"}
        wrapped = versioned(payload)
        assert list(wrapped)[0] == "v"
        assert wrapped["v"] == SCHEMA_VERSION == 1
        assert "v" not in payload

    def test_check_version_rejects_bad_shapes(self):
        with pytest.raises(ProtocolError):
            check_version(["not", "a", "dict"], where="test")
        with pytest.raises(ProtocolError):
            check_version({"op": "ping"}, where="test")
        with pytest.raises(ProtocolError):
            check_version({"v": 2, "op": "ping"}, where="test")
        assert check_version(versioned({"op": "ping"}), where="test")[
            "op"
        ] == "ping"

    def test_execution_result_to_dict_is_versioned(self):
        service_file = PartitionedFile(
            __import__("repro.api", fromlist=["make_method"]).make_method(
                "fx", fields=FIELDS, devices=DEVICES
            )
        )
        service_file.insert((1, 2))
        result = QueryExecutor(service_file).execute(
            service_file.query({0: 1})
        )
        assert result.to_dict()["v"] == SCHEMA_VERSION

    def test_service_result_to_dict_is_versioned(self):
        service = make_service("fx", fields=FIELDS, devices=DEVICES)
        service.insert((1, 2))
        data = service.execute(service.file.query({0: 1})).to_dict()
        assert data["v"] == SCHEMA_VERSION
        assert "submit_version" in data

    def test_obs_export_records_are_versioned(self):
        with obs.trace_span("test.span", k=1):
            pass
        records = obs.telemetry().export_records()
        assert records
        assert all(record["v"] == SCHEMA_VERSION for record in records)
        assert records[-1]["type"] == "metrics"

    def test_wire_frames_are_versioned(self):
        request = protocol.request("ping", request_id=1)
        assert request["v"] == SCHEMA_VERSION
        assert protocol.ok_response(1, {})["v"] == SCHEMA_VERSION
        assert (
            protocol.error_response(1, "busy", "x")["v"] == SCHEMA_VERSION
        )

    def test_error_response_rejects_unknown_codes(self):
        with pytest.raises(ProtocolError):
            protocol.error_response(1, "nonsense", "x")


# ======================================================================
# Server operations over real sockets
# ======================================================================
class TestServerOps:
    def test_ping_and_stats(self, gateway_factory):
        __, address = gateway_factory()
        with GatewayClient(*address, tenant="alpha") as client:
            assert client.ping() is True
            stats = client.stats()
            assert stats["tenant"] == "alpha"
            assert stats["started"] is False  # lazy: no query served yet
            assert stats["write_version"] == 0
            client.insert((1, 2))
            stats = client.stats()
            assert stats["started"] is True
            assert stats["write_version"] == 1

    def test_query_matches_direct_service(self, gateway_factory):
        __, address = gateway_factory()
        records = [(i % 4, (i * 3) % 4) for i in range(12)]
        reference = make_service("fx", fields=FIELDS, devices=DEVICES)
        with GatewayClient(
            *address, tenant="alpha", fields=FIELDS, devices=DEVICES
        ) as client:
            for record in records:
                wire_bucket, wire_version = client.insert(record)
                ref_bucket, ref_version = reference.insert(record)
                assert wire_bucket == ref_bucket
                assert wire_version == ref_version
            for specified in ({0: 1}, {1: 2}, {0: 3, 1: 0}):
                result = client.query(specified)
                # The wire speaks hashed bucket coordinates — the
                # from_dict space — so compare against the same query.
                expected = reference.execute(
                    PartialMatchQuery.from_dict(
                        reference.file.filesystem, specified
                    )
                )
                assert result.status == "ok"
                assert sorted(result.records) == sorted(expected.records)
                assert result.write_version == expected.write_version

    def test_batch(self, gateway_factory):
        __, address = gateway_factory()
        with GatewayClient(
            *address, tenant="alpha", fields=FIELDS, devices=DEVICES
        ) as client:
            for i in range(8):
                client.insert((i % 4, i % 4))
            results = client.batch([{0: 1}, {1: 3}, {0: 0, 1: 0}])
            assert [r.status for r in results] == ["ok", "ok", "ok"]

    def test_unknown_tenant(self, gateway_factory):
        __, address = gateway_factory()
        with GatewayClient(*address, tenant="nobody") as client:
            with pytest.raises(GatewayRequestError) as excinfo:
                client.query({0: 1})
            assert excinfo.value.code == "unknown_tenant"
        assert _counters().get("gateway.unknown_tenant") == 1

    def test_unknown_op(self, gateway_factory):
        __, address = gateway_factory()
        with GatewayClient(*address, tenant="alpha") as client:
            with pytest.raises(GatewayRequestError) as excinfo:
                client.call(protocol.request("warp", tenant="alpha"))
            assert excinfo.value.code == "unknown_op"

    def test_wrong_envelope_version_gets_bad_version(self, gateway_factory):
        __, address = gateway_factory()
        with socket.create_connection(address, timeout=5) as sock:
            sock.sendall(
                encode_frame({"v": 99, "id": 1, "op": "ping"})
            )
            response = recv_frame(sock)
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_version"

    def test_missing_op_gets_bad_request(self, gateway_factory):
        __, address = gateway_factory()
        with socket.create_connection(address, timeout=5) as sock:
            sock.sendall(encode_frame(versioned({"id": 1})))
            response = recv_frame(sock)
        assert response["error"]["code"] == "bad_request"

    def test_garbage_frame_gets_bad_frame_and_close(self, gateway_factory):
        __, address = gateway_factory()
        with socket.create_connection(address, timeout=5) as sock:
            sock.sendall(struct.pack(">I", 4) + b"}}{{")
            response = recv_frame(sock)
            assert response["error"]["code"] == "bad_frame"
            # The stream is poisoned: the server closes the connection.
            assert sock.recv(1) == b""

    def test_oversized_client_frame_rejected_bounded(self, gateway_factory):
        __, address = gateway_factory(max_frame_bytes=256)
        with socket.create_connection(address, timeout=5) as sock:
            sock.sendall(struct.pack(">I", 1 << 30))
            response = recv_frame(sock)
            assert response["error"]["code"] == "bad_frame"
            assert sock.recv(1) == b""
        assert _counters().get("gateway.oversized_frames") == 1

    def test_query_against_wrong_domain_is_bad_request(self, gateway_factory):
        __, address = gateway_factory()
        with GatewayClient(*address, tenant="alpha") as client:
            with pytest.raises(GatewayRequestError) as excinfo:
                client.query({0: 999})
            assert excinfo.value.code == "bad_request"

    def test_per_request_span_and_counters(self, gateway_factory):
        __, address = gateway_factory()
        with GatewayClient(*address, tenant="alpha") as client:
            client.insert((1, 1))
            client.query({0: 1})
        counters = _counters()
        assert counters.get("gateway.accepted") == 2
        assert counters.get("gateway.requests") == 2
        histograms = obs.telemetry().metrics.snapshot().histograms
        assert "gateway.latency_ms{tenant=alpha}" in histograms
        spans = [
            record
            for record in obs.telemetry().export_records()
            if record.get("name") == "gateway.request"
        ]
        assert len(spans) == 2


# ======================================================================
# Tenant gate: quotas, rate limits, inflight caps
# ======================================================================
class TestTenantGate:
    def test_quota_sheds_exactly_the_excess(self, gateway_factory):
        quota, excess = 6, 3
        __, address = gateway_factory(
            tenants={"alpha": {"request_quota": quota}, "beta": {}},
        )
        shed = 0
        with GatewayClient(*address, tenant="alpha") as client:
            for __i in range(quota + excess):
                try:
                    client.insert((1, 1))
                except GatewayRequestError as error:
                    assert error.code == "shed"
                    shed += 1
        assert shed == excess
        counters = _counters()
        assert counters.get("gateway.shed") == excess
        assert counters.get("gateway.shed{tenant=alpha}") == excess
        assert counters.get("gateway.accepted") == quota

    def test_quota_does_not_leak_across_tenants(self, gateway_factory):
        __, address = gateway_factory(
            tenants={"alpha": {"request_quota": 1}, "beta": {}},
        )
        with GatewayClient(*address, tenant="beta") as client:
            for __i in range(5):
                client.insert((1, 1))
        assert _counters().get("gateway.shed") is None

    def test_zero_rate_bucket_allows_exactly_the_burst(self, gateway_factory):
        burst = 4
        __, address = gateway_factory(
            tenants={"alpha": {"rate_per_s": 0.0, "burst": burst}},
        )
        limited = 0
        with GatewayClient(*address, tenant="alpha") as client:
            for __i in range(burst + 3):
                try:
                    client.insert((1, 1))
                except GatewayRequestError as error:
                    assert error.code == "rate_limited"
                    limited += 1
        assert limited == 3
        assert _counters().get("gateway.rate_limited") == 3

    def test_token_bucket_refills_continuously(self):
        clock = [0.0]
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=lambda: clock[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock[0] = 0.5  # 1 token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_max_inflight_sheds_concurrent_excess(self, gateway_factory):
        gateway, address = gateway_factory(
            tenants={"alpha": {"max_inflight": 1}},
        )
        tenant = gateway.tenants["alpha"]
        service = tenant.service
        gate = threading.Event()
        fetch = type(service)._fetch

        def slow_fetch(self, query):
            gate.wait(timeout=10)
            return fetch(self, query)

        service._fetch = slow_fetch.__get__(service)
        first = GatewayClient(*address, tenant="alpha",
                              fields=FIELDS, devices=DEVICES)
        error_codes: list[str] = []
        try:
            blocked = threading.Thread(
                target=lambda: first.query({0: 1}), daemon=True
            )
            blocked.start()
            deadline = time.time() + 5
            while tenant.inflight < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert tenant.inflight == 1
            with GatewayClient(*address, tenant="alpha") as second:
                try:
                    second.insert((1, 1))
                except GatewayRequestError as error:
                    error_codes.append(error.code)
            gate.set()
            blocked.join(timeout=10)
        finally:
            gate.set()
            first.close()
        assert error_codes == ["shed"]

    def test_tenant_spec_validation(self):
        with pytest.raises(ConfigurationError):
            TenantSpec.of("", fields=FIELDS, devices=DEVICES)
        with pytest.raises(ConfigurationError):
            TenantSpec.of("a", fields=FIELDS, devices=DEVICES, burst=0)
        with pytest.raises(ConfigurationError):
            TenantSpec.of("a", fields=FIELDS, devices=DEVICES,
                          request_quota=-1)


# ======================================================================
# Disconnects, backpressure and graceful drain
# ======================================================================
class TestLifecycle:
    def _gate_fetch(self, service):
        """Block the service's bucket fetch until the event is set."""
        gate = threading.Event()
        fetch = type(service)._fetch

        def slow_fetch(self, query):
            gate.wait(timeout=10)
            return fetch(self, query)

        service._fetch = slow_fetch.__get__(service)
        return gate

    def test_busy_reject_beyond_max_connections(self, gateway_factory):
        __, address = gateway_factory(max_connections=1)
        first = GatewayClient(*address, tenant="alpha")
        try:
            assert first.ping()
            with socket.create_connection(address, timeout=5) as sock:
                response = recv_frame(sock)
                assert response["error"]["code"] == "busy"
        finally:
            first.close()
        assert _counters().get("gateway.busy_rejected") == 1

    def test_disconnect_midflight_leader_still_serves_followers(
        self, gateway_factory
    ):
        gateway, address = gateway_factory(tenants=("alpha",))
        tenant = gateway.tenants["alpha"]
        with GatewayClient(*address, tenant="alpha") as seeder:
            bucket, __v = seeder.insert((1, 2))
        gate = self._gate_fetch(tenant.service)

        specified = {0: bucket[0]}
        leader = socket.create_connection(address, timeout=5)
        leader.sendall(
            encode_frame(
                protocol.request(
                    "query",
                    request_id=1,
                    tenant="alpha",
                    specified={str(k): v for k, v in specified.items()},
                )
            )
        )
        deadline = time.time() + 5
        while tenant.inflight < 1 and time.time() < deadline:
            time.sleep(0.01)
        assert tenant.inflight == 1

        follower = GatewayClient(
            *address, tenant="alpha", fields=FIELDS, devices=DEVICES
        )
        follower_result: list = []
        follower_thread = threading.Thread(
            target=lambda: follower_result.append(follower.query(specified)),
            daemon=True,
        )
        follower_thread.start()
        deadline = time.time() + 5
        while tenant.inflight < 2 and time.time() < deadline:
            time.sleep(0.01)

        # RST the leader's connection while its request is in flight.
        leader.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            struct.pack("ii", 1, 0),
        )
        leader.close()
        gate.set()
        follower_thread.join(timeout=10)
        follower.close()

        assert follower_result and follower_result[0].status == "ok"
        assert sorted(follower_result[0].records) == [(1, 2)]
        deadline = time.time() + 5
        while not _counters().get("gateway.disconnected") and (
            time.time() < deadline
        ):
            time.sleep(0.01)
        assert _counters().get("gateway.disconnected", 0) >= 1

    def test_graceful_drain_finishes_inflight_requests(self, gateway_factory):
        gateway, address = gateway_factory(tenants=("alpha",))
        tenant = gateway.tenants["alpha"]
        with GatewayClient(*address, tenant="alpha") as seeder:
            bucket, __v = seeder.insert((2, 3))
        gate = self._gate_fetch(tenant.service)

        client = GatewayClient(
            *address, tenant="alpha", fields=FIELDS, devices=DEVICES
        )
        results: list = []
        request_thread = threading.Thread(
            target=lambda: results.append(client.query({0: bucket[0]})),
            daemon=True,
        )
        request_thread.start()
        deadline = time.time() + 5
        while tenant.inflight < 1 and time.time() < deadline:
            time.sleep(0.01)
        assert tenant.inflight == 1

        drain_outcome: list[bool] = []
        drain_thread = threading.Thread(
            target=lambda: drain_outcome.append(gateway.drain(timeout_s=10)),
            daemon=True,
        )
        drain_thread.start()
        time.sleep(0.2)  # drain is now waiting on the in-flight worker
        gate.set()
        drain_thread.join(timeout=15)
        request_thread.join(timeout=10)
        client.close()

        # The accepted in-flight request was answered, the drain was clean,
        # and new connections are refused afterwards.
        assert results and results[0].status == "ok"
        assert sorted(results[0].records) == [(2, 3)]
        assert drain_outcome == [True]
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=1)
        assert _counters().get("gateway.drains") == 1

    def test_drain_retires_tenant_services(self, gateway_factory):
        gateway, address = gateway_factory(tenants=("alpha",))
        with GatewayClient(*address, tenant="alpha") as client:
            client.insert((1, 1))
        service = gateway.tenants["alpha"].service
        assert gateway.drain() is True
        with pytest.raises(RuntimeError):
            service.submit(service.file.query({0: 1}))

    def test_context_manager_starts_and_closes(self):
        gateway = make_gateway(["solo"], fields=FIELDS, devices=DEVICES)
        with gateway as gw:
            with GatewayClient(*gw.address, tenant="solo") as client:
                assert client.ping()
        with pytest.raises(OSError):
            socket.create_connection(gateway.address, timeout=1)


# ======================================================================
# Loopback multi-tenant load + staleness verification
# ======================================================================
class TestLoopbackLoad:
    def test_connection_ops_are_deterministic(self):
        fs = FileSystem.of(*FIELDS, m=DEVICES)
        spec = GatewayLoadSpec(write_every=3, batch_every=5)
        first = _connection_ops(fs, "alpha", 0, spec)
        second = _connection_ops(fs, "alpha", 0, spec)
        assert first == second
        # Different tenants and connections get different streams.
        assert first != _connection_ops(fs, "beta", 0, spec)
        assert first != _connection_ops(fs, "alpha", 1, spec)

    def test_multi_tenant_load_has_zero_stale_reads(self, gateway_factory):
        gateway, address = gateway_factory(tenants=("alpha", "beta"))
        spec = GatewayLoadSpec(
            connections_per_tenant=4,  # 2 tenants x 4 = 8 concurrent conns
            requests_per_connection=15,
            write_every=3,
            batch_every=7,
            preload=8,
            hot_fraction=0.3,
        )
        report = run_loopback_load(
            address, list(gateway.tenants.values()), spec
        )
        assert not report.errors
        assert report.completed > 0
        assert set(report.per_tenant) == {"alpha", "beta"}
        mismatches = report.verify()
        assert all(not bad for bad in mismatches.values()), mismatches
        assert gateway.drain() is True
        data = report.to_dict()
        assert data["v"] == 1
        assert set(data["tenants"]) == {"alpha", "beta"}

    def test_quota_sheds_match_counters_under_load(self, gateway_factory):
        spec = GatewayLoadSpec(
            connections_per_tenant=2,
            requests_per_connection=6,
            preload=2,
        )
        total = spec.preload + (
            spec.connections_per_tenant * spec.requests_per_connection
        )
        excess = 4
        gateway, address = gateway_factory(
            tenants={
                "alpha": {"request_quota": total - excess},
                "beta": {},
            },
        )
        report = run_loopback_load(
            address, list(gateway.tenants.values()), spec
        )
        assert not report.errors
        assert sum(report.rejections["alpha"].values()) == excess
        assert report.rejections["alpha"].get("shed") == excess
        assert not any(report.rejections.get("beta", {}).values())
        counters = _counters()
        assert counters.get("gateway.shed") == excess
        assert counters.get("gateway.shed{tenant=alpha}") == excess
        # Every non-shed request was admitted and served.
        assert counters.get("gateway.accepted") == 2 * total - excess
        assert all(not bad for bad in report.verify().values())

    def test_refuses_tenants_with_existing_writes(self, gateway_factory):
        """verify() replays from write version 1, so a tenant written to
        outside the load run would make the proof vacuously fail — the
        harness refuses it up front instead."""
        gateway, address = gateway_factory(tenants=("alpha", "beta"))
        with GatewayClient(*address, tenant="alpha") as client:
            client.insert((1, 2))
        with pytest.raises(ConfigurationError, match="write_version"):
            run_loopback_load(
                address,
                list(gateway.tenants.values()),
                GatewayLoadSpec(
                    connections_per_tenant=1, requests_per_connection=1
                ),
            )


# ======================================================================
# The futures-first service surface
# ======================================================================
class TestFuturesSurface:
    def test_submit_returns_future_matching_execute(self):
        service = make_service("fx", fields=FIELDS, devices=DEVICES)
        service.insert((1, 2))
        query = service.file.query({0: 1})
        future = service.submit(query)
        result = future.result(timeout=10)
        assert result.status == "ok"
        assert sorted(result.records) == sorted(
            service.execute(query).records
        )

    def test_submit_many_and_submit_insert(self):
        service = make_service("fx", fields=FIELDS, devices=DEVICES)
        bucket, version = service.submit_insert((3, 3)).result(timeout=10)
        assert version == 1
        queries = [service.file.query({0: 3}), service.file.query({1: 3})]
        results = service.submit_many(queries).result(timeout=10)
        assert [r.status for r in results] == ["ok", "ok"]
        assert all((3, 3) in r.records for r in results)

    def test_shutdown_retires_the_pool(self):
        service = make_service("fx", fields=FIELDS, devices=DEVICES)
        service.submit_insert((1, 1)).result(timeout=10)
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit(service.file.query({0: 1}))
        with pytest.raises(RuntimeError):
            service.submit_insert((2, 2))
        # The blocking path still works: execute() runs inline.
        assert service.execute(service.file.query({0: 1})).status == "ok"

    def test_submit_workers_config_validated(self):
        with pytest.raises(ReproError):
            make_service(
                "fx", fields=FIELDS, devices=DEVICES, submit_workers=0
            )

    def test_concurrent_submits_coalesce(self):
        service = make_service(
            "fx", fields=FIELDS, devices=DEVICES, cache_capacity=None
        )
        service.insert((1, 2))
        query = service.file.query({0: 1})
        futures = [service.submit(query) for __ in range(16)]
        results = [f.result(timeout=10) for f in futures]
        assert all(r.status == "ok" for r in results)
        assert all(sorted(r.records) == [(1, 2)] for r in results)


# ======================================================================
# The make_gateway facade
# ======================================================================
class TestMakeGateway:
    def test_accepts_names_mapping_and_specs(self):
        by_names = make_gateway(["a", "b"], fields=FIELDS, devices=DEVICES)
        assert sorted(by_names.tenants) == ["a", "b"]
        by_mapping = make_gateway(
            {"a": {"request_quota": 5}, "b": {}},
            fields=FIELDS,
            devices=DEVICES,
        )
        assert by_mapping.tenants["a"].spec.request_quota == 5
        spec = TenantSpec.of("solo", fields=FIELDS, devices=DEVICES)
        by_spec = make_gateway([spec])
        assert by_spec.tenants["solo"].spec is spec

    def test_per_tenant_overrides_beat_defaults(self):
        gateway = make_gateway(
            {"big": {"fields": (8, 8), "devices": 8}, "small": {}},
            fields=FIELDS,
            devices=DEVICES,
        )
        assert gateway.tenants["big"].spec.fields == (8, 8)
        assert gateway.tenants["small"].spec.fields == FIELDS

    def test_service_options_flow_to_tenant_services(self):
        gateway = make_gateway(
            ["a"], fields=FIELDS, devices=DEVICES, max_concurrent=3,
            coalesce=False,
        )
        service = gateway.tenants["a"].service
        assert service.config.max_concurrent == 3
        assert service.config.coalesce is False

    def test_rejects_unknown_service_options(self):
        with pytest.raises(ConfigurationError):
            make_gateway(
                ["a"], fields=FIELDS, devices=DEVICES, warp_speed=9
            )

    def test_rejects_bad_service_defaults_eagerly(self):
        """Tenant services build lazily, but a bad serving knob must fail
        at make_gateway time, not as per-request wire errors later."""
        with pytest.raises(ConfigurationError, match="'a'.*max_concurrent"):
            make_gateway(
                ["a"], fields=FIELDS, devices=DEVICES, max_concurrent=0
            )
        with pytest.raises(ConfigurationError, match="'bad'.*submit_workers"):
            make_gateway(
                {
                    "ok": {},
                    "bad": {"service": {"submit_workers": 0}},
                },
                fields=FIELDS,
                devices=DEVICES,
            )

    def test_requires_fields_and_devices(self):
        with pytest.raises(ConfigurationError):
            make_gateway(["a"])

    def test_rejects_bad_tenant_entries(self):
        with pytest.raises(ConfigurationError):
            make_gateway([42], fields=FIELDS, devices=DEVICES)

    def test_start_true_binds(self):
        gateway = make_gateway(
            ["a"], fields=FIELDS, devices=DEVICES, start=True
        )
        try:
            host, port = gateway.address
            assert port > 0
        finally:
            gateway.close()

    def test_gateway_config_validation(self):
        with pytest.raises(ConfigurationError):
            GatewayConfig(max_connections=0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(drain_timeout_s=0)
        with pytest.raises(ConfigurationError):
            Gateway([])


# ======================================================================
# Deprecated top-level constructor imports
# ======================================================================
class TestDeprecatedTopLevel:
    def test_warns_once_then_resolves(self):
        repro._warned.discard("ModuloDistribution")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cls = repro.ModuloDistribution
            repro.ModuloDistribution
        from repro.distribution.modulo import ModuloDistribution

        assert cls is ModuloDistribution
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_all_deprecated_names_still_in_dir(self):
        names = dir(repro)
        for name in repro._DEPRECATED_CONSTRUCTORS:
            assert name in names

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing


# ======================================================================
# CLI exit semantics
# ======================================================================
class TestCli:
    def test_serve_fails_on_shed_with_structured_error(
        self, monkeypatch, capsys
    ):
        from repro.service import loadgen

        def fake_run(self):
            fs = self.service.file.filesystem
            query = PartialMatchQuery.from_dict(fs, {0: 1})
            shed = ServiceResult(
                status="shed", query=query, records=[],
                write_version=-1, submit_version=0,
            )
            return LoadReport(
                spec=self.spec,
                wall_s=0.01,
                requests=[RequestRecord(0, 0, query, shed, 1.0)],
            )

        monkeypatch.setattr(loadgen.LoadGenerator, "run", fake_run)
        rc = main(
            ["serve", "--fields", "4,4", "--devices", "4",
             "--clients", "1", "--requests", "1", "--json"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        error = json.loads(captured.err)
        assert error["v"] == 1
        assert error["error"]["code"] == "degraded_load"
        assert error["error"]["shed"] == 1

    def test_serve_allow_degraded_tolerates_shed(self, monkeypatch, capsys):
        from repro.service import loadgen

        def fake_run(self):
            fs = self.service.file.filesystem
            query = PartialMatchQuery.from_dict(fs, {0: 1})
            shed = ServiceResult(
                status="shed", query=query, records=[],
                write_version=-1, submit_version=0,
            )
            return LoadReport(
                spec=self.spec,
                wall_s=0.01,
                requests=[RequestRecord(0, 0, query, shed, 1.0)],
            )

        monkeypatch.setattr(loadgen.LoadGenerator, "run", fake_run)
        rc = main(
            ["serve", "--fields", "4,4", "--devices", "4",
             "--clients", "1", "--requests", "1", "--json",
             "--allow-degraded"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.err == ""

    def test_serve_clean_run_exits_zero(self, capsys):
        rc = main(
            ["serve", "--fields", "4,4", "--devices", "4",
             "--clients", "2", "--requests", "5", "--verify", "--json"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        data = json.loads(captured.out)
        assert data["shed"] == 0 and data["timeout"] == 0

    def test_gateway_cli_loopback_verifies(self, capsys):
        rc = main(
            ["gateway", "--fields", "4,4", "--devices", "4",
             "--tenants", "alpha,beta", "--connections", "2",
             "--requests", "5", "--preload", "2", "--verify", "--json"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        data = json.loads(captured.out)
        assert data["v"] == 1
        assert data["clean_drain"] is True
        assert data["replay_mismatches"] == {}
        assert set(data["tenants"]) == {"alpha", "beta"}

    def test_gateway_cli_quota_rejections_counted(self, capsys):
        rc = main(
            ["gateway", "--fields", "4,4", "--devices", "4",
             "--tenants", "solo", "--connections", "1",
             "--requests", "4", "--preload", "0", "--quota", "2",
             "--write-every", "0", "--json"]
        )
        captured = capsys.readouterr()
        assert rc == 0  # quota sheds are expected behaviour, not failures
        data = json.loads(captured.out)
        assert data["rejections"]["solo"]["shed"] == 2
