"""The paper's lemma inventory as executable property tests.

Each lemma of sections 3-4 is restated against this library's primitives
and checked over its full (power-of-two bounded) hypothesis space.  Lemmas
1.1 and 4.1 also live in :mod:`repro.core.bitops`; the rest are stated here
directly in terms of transforms and distributions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitops import xor_set, z_m
from repro.core.fx import FXDistribution
from repro.core.optimality import is_perfect_optimal
from repro.core.transforms import IU1Transform, IU2Transform, UTransform
from repro.hashing.fields import FileSystem


def _small_cases(max_m_bits=9):
    cases = []
    for m_bits in range(1, max_m_bits + 1):
        for f_bits in range(0, m_bits):
            cases.append((1 << f_bits, 1 << m_bits))
    return cases


small_cases = st.sampled_from(_small_cases())


class TestLemma11:
    """Z_M [+] k == Z_M (restated here for completeness; see test_bitops)."""

    @given(st.sampled_from([2, 4, 8, 16, 32, 64]), st.data())
    def test_xor_permutes_device_space(self, m, data):
        k = data.draw(st.integers(0, m - 1))
        assert xor_set(k, z_m(m)) == z_m(m)


class TestLemma51:
    """IU1 is an injective function into Z_M."""

    @given(small_cases)
    def test_injective(self, case):
        f, m = case
        image = IU1Transform(f, m).image()
        assert len(set(image)) == f and all(0 <= v < m for v in image)


class TestLemma52:
    """I + IU1 on two small fields with F_i >= F_k is perfect optimal."""

    @pytest.mark.parametrize(
        "fi,fk,m", [(4, 2, 8), (4, 4, 16), (8, 2, 16), (8, 8, 32)]
    )
    def test_perfect_optimal(self, fi, fk, m):
        fs = FileSystem.of(fi, fk, m=m)
        assert is_perfect_optimal(FXDistribution(fs, transforms=["I", "IU1"]))


class TestLemma53And54:
    """Exactly one IU1 image element per aligned interval of width M/F."""

    @given(small_cases)
    def test_one_per_interval(self, case):
        f, m = case
        d = m // f
        image = IU1Transform(f, m).image()
        assert sorted(v // d for v in image) == list(range(f))


class TestLemma61:
    """U(f_j) [+] (J*d_j + c) == U(f_j) + c for 0 <= c < d_j."""

    @given(small_cases, st.data())
    @settings(max_examples=60)
    def test_shifted_coset(self, case, data):
        f, m = case
        d = m // f
        j_value = data.draw(st.integers(0, f - 1))
        c = data.draw(st.integers(0, d - 1))
        u_image = set(UTransform(f, m).image())
        shifted = xor_set(j_value * d + c, u_image)
        expected = {v + c for v in u_image}
        assert shifted == expected


class TestLemma62:
    """K1 = K2 (mod d_j) <=> K1 ^ K1*d_k = K2 ^ K2*d_k (mod d_j)."""

    @given(
        st.sampled_from([2, 4, 8, 16, 32]),
        st.sampled_from([2, 4, 8, 16, 32]),
        st.integers(0, 63),
        st.integers(0, 63),
    )
    @settings(max_examples=100)
    def test_equivalence(self, dj, dk, k1, k2):
        lhs = (k1 % dj) == (k2 % dj)
        rhs = ((k1 ^ (k1 * dk)) % dj) == ((k2 ^ (k2 * dk)) % dj)
        assert lhs == rhs


class TestLemma71And72:
    """IU2 is injective into Z_M with one element per d1-interval."""

    @given(small_cases)
    def test_injective_and_spread(self, case):
        f, m = case
        transform = IU2Transform(f, m)
        image = transform.image()
        assert len(set(image)) == f
        d1 = m // f
        assert sorted(v // d1 for v in image) == list(range(f))

    @given(small_cases)
    def test_collapses_to_iu1_iff_square_large(self, case):
        f, m = case
        transform = IU2Transform(f, m)
        if f * f >= m:
            assert transform.image() == IU1Transform(f, m).image()
        elif f > 1:
            assert transform.image() != IU1Transform(f, m).image()


class TestLemma81:
    """K1 = K2 (mod d_j) <=> IU2-style double shift preserves residues:
    K1 ^ K1*d_k2 ^ K1*d_k1 = K2 ^ K2*d_k2 ^ K2*d_k1 (mod d_j)."""

    @given(
        st.sampled_from([2, 4, 8, 16]),
        st.sampled_from(_small_cases(max_m_bits=7)),
        st.data(),
    )
    @settings(max_examples=100)
    def test_equivalence(self, dj, case, data):
        f, m = case
        d_k1 = m // f
        d_k2 = d_k1 // f if f * f < m else 0
        k1 = data.draw(st.integers(0, f - 1))
        k2 = data.draw(st.integers(0, f - 1))
        lhs = (k1 % dj) == (k2 % dj)
        left = (k1 ^ (k1 * d_k2) ^ (k1 * d_k1)) % dj
        right = (k2 ^ (k2 * d_k2) ^ (k2 * d_k1)) % dj
        assert lhs == (left == right)


class TestLemma91:
    """I + U + IU2 on three small fields is perfect optimal when (1) some
    pair's product reaches M, or (2) F_IU2 >= F_U and F_IU2^2 < M."""

    @pytest.mark.parametrize(
        "sizes,transforms",
        [
            # condition (1): F_i * F_j >= M
            ((8, 4, 4), ("I", "U", "IU2")),   # 8*4 = 32 >= 16? M=16 below
            # condition (2): F_k >= F_j, F_k^2 < M
            ((4, 2, 2), ("I", "U", "IU2")),
            ((8, 2, 4), ("I", "U", "IU2")),
        ],
    )
    def test_perfect_optimal_m16(self, sizes, transforms):
        fs = FileSystem.of(*sizes, m=16)
        fx = FXDistribution(fs, transforms=list(transforms))
        assert is_perfect_optimal(fx)

    def test_ordering_violation_can_fail(self):
        """Putting IU2 on a *smaller* field than U can break optimality —
        the ordering in Lemma 9.1's second condition is essential."""
        fs = FileSystem.of(8, 4, 2, m=64)
        violating = FXDistribution(fs, transforms=["I", "IU2", "U"])
        conforming = FXDistribution(fs, transforms=["I", "U", "IU2"])
        # the conforming assignment puts IU2 on the size-2 field, which is
        # smaller than U's size-4 field -> it is the violating one; swap:
        assert is_perfect_optimal(violating)   # IU2 on 4 >= U on 2: fine
        assert not is_perfect_optimal(conforming)  # IU2 on 2 < U on 4


class TestSung87Boundary:
    """Four small fields: the all-unspecified pattern defeats the paper's
    round-robin assignment (consistent with [Sung87])."""

    def test_round_robin_fails_somewhere(self):
        fs = FileSystem.uniform(4, 4, m=32)
        fx = FXDistribution(fs, policy="paper")
        assert not is_perfect_optimal(fx)
