"""Tests for per-field hash functions and multi-key hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FieldValueError
from repro.hashing.fields import FileSystem
from repro.hashing.hash_functions import (
    FibonacciFieldHash,
    IntegerRangeHash,
    StringFieldHash,
)
from repro.hashing.multikey import MultiKeyHash


class TestFibonacciFieldHash:
    @given(st.integers(-(2**40), 2**40))
    def test_in_range(self, value):
        h = FibonacciFieldHash(16, seed=3)
        assert 0 <= h(value) < 16

    def test_deterministic(self):
        assert FibonacciFieldHash(16, seed=1)(42) == FibonacciFieldHash(16, seed=1)(42)

    def test_seed_changes_output_somewhere(self):
        a = FibonacciFieldHash(256, seed=1)
        b = FibonacciFieldHash(256, seed=2)
        assert any(a(v) != b(v) for v in range(100))

    def test_spreads_consecutive_keys(self):
        # Small consecutive inputs should hit many distinct slots.
        h = FibonacciFieldHash(64)
        slots = {h(v) for v in range(256)}
        assert len(slots) >= 48

    def test_field_size_one(self):
        assert FibonacciFieldHash(1)(123456) == 0

    def test_rejects_non_int(self):
        with pytest.raises(FieldValueError):
            FibonacciFieldHash(16)("text")

    def test_rejects_bool(self):
        with pytest.raises(FieldValueError):
            FibonacciFieldHash(16)(True)


class TestIntegerRangeHash:
    def test_order_preserving(self):
        h = IntegerRangeHash(4, low=0, high=100)
        values = [h(v) for v in range(0, 100, 10)]
        assert values == sorted(values)

    def test_slices_evenly(self):
        h = IntegerRangeHash(4, low=0, high=8)
        assert [h(v) for v in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_out_of_range_rejected(self):
        h = IntegerRangeHash(4, low=10, high=20)
        with pytest.raises(FieldValueError):
            h(20)

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegerRangeHash(4, low=5, high=5)


class TestStringFieldHash:
    @given(st.text(max_size=50))
    def test_in_range(self, text):
        assert 0 <= StringFieldHash(32)(text) < 32

    def test_deterministic_across_instances(self):
        assert StringFieldHash(64, seed=9)("abc") == StringFieldHash(64, seed=9)("abc")

    def test_rejects_non_str(self):
        with pytest.raises(FieldValueError):
            StringFieldHash(16)(5)


class TestMultiKeyHash:
    def test_bucket_of_shape(self):
        fs = FileSystem.of(4, 8, m=4)
        mkh = MultiKeyHash.default(fs, seed=7)
        bucket = mkh.bucket_of((10, "ann"))
        fs.check_bucket(bucket)

    def test_record_arity_checked(self):
        fs = FileSystem.of(4, 8, m=4)
        mkh = MultiKeyHash.default(fs)
        with pytest.raises(FieldValueError):
            mkh.bucket_of((1,))

    def test_partial_bucket(self):
        fs = FileSystem.of(4, 8, m=4)
        mkh = MultiKeyHash.default(fs)
        partial = mkh.partial_bucket({1: "xyz"})
        assert set(partial) == {1}
        assert 0 <= partial[1] < 8

    def test_partial_consistent_with_full(self):
        fs = FileSystem.of(4, 8, m=4)
        mkh = MultiKeyHash.default(fs, seed=5)
        record = (99, "item")
        bucket = mkh.bucket_of(record)
        assert mkh.partial_bucket({0: 99})[0] == bucket[0]
        assert mkh.partial_bucket({1: "item"})[1] == bucket[1]

    def test_mismatched_hash_sizes_rejected(self):
        fs = FileSystem.of(4, 8, m=4)
        with pytest.raises(ConfigurationError):
            MultiKeyHash(fs, [FibonacciFieldHash(4), FibonacciFieldHash(4)])

    def test_wrong_hash_count_rejected(self):
        fs = FileSystem.of(4, 8, m=4)
        with pytest.raises(ConfigurationError):
            MultiKeyHash(fs, [FibonacciFieldHash(4)])

    def test_unhashable_type_rejected(self):
        fs = FileSystem.of(4, 8, m=4)
        mkh = MultiKeyHash.default(fs)
        with pytest.raises(FieldValueError):
            mkh.bucket_of((1.5, "ok"))

    def test_unknown_field_rejected(self):
        fs = FileSystem.of(4, 8, m=4)
        mkh = MultiKeyHash.default(fs)
        with pytest.raises(FieldValueError):
            mkh.hash_field(2, 1)
