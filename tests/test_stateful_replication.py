"""Stateful testing of the replicated file: failures, restores, reads.

Hypothesis drives interleavings of inserts, device failures and restores,
checking after every step that reads return exactly the live logical
records whenever the failure pattern is survivable, and raise
DataUnavailableError precisely when an adjacent primary/backup pair is
down.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.fx import FXDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.replicated_file import DataUnavailableError, ReplicatedFile

M = 4


class ReplicatedFileMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        fs = FileSystem.of(4, 4, m=M)
        self.file = ReplicatedFile(ChainedReplicaScheme(FXDistribution(fs)))
        self.model: list[tuple] = []
        self.next_id = 0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(tag=st.integers(0, 9))
    def insert(self, tag):
        record = (self.next_id, tag)
        self.next_id += 1
        self.file.insert(record)
        self.model.append(record)

    @rule(device=st.integers(0, M - 1))
    def fail(self, device):
        self.file.fail_device(device)

    @rule(device=st.integers(0, M - 1))
    def restore(self, device):
        self.file.restore_device(device)

    @rule()
    def full_scan(self):
        query = PartialMatchQuery.full_scan(self.file.filesystem)
        failed = self.file.failed_devices
        # survivable iff no failed device's backup neighbour is also failed
        survivable = all((d + 1) % M not in failed for d in failed)
        if survivable:
            result = self.file.execute(query)
            assert sorted(map(str, result.records)) == sorted(
                map(str, self.model)
            )
        else:
            try:
                self.file.execute(query)
            except DataUnavailableError:
                pass
            else:  # pragma: no cover - indicates a masking bug
                raise AssertionError(
                    "adjacent-pair failure should lose some bucket"
                )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def physical_copies_consistent(self):
        physical = sum(d.record_count for d in self.file.devices)
        assert physical == 2 * len(self.model)
        self.file.check_invariants()


ReplicatedFileMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestReplicatedFileStateful = ReplicatedFileMachine.TestCase
