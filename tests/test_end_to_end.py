"""Multi-subsystem integration scenarios.

Each test exercises a realistic flow across several subsystems — the kind
of composition bugs (stale caches after migration, stats after paged
growth, replication after re-declustering) that unit tests cannot see.
"""

import pytest

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.hashing.fields import FileSystem
from repro.query.box import BoxQuery
from repro.query.partial_match import PartialMatchQuery
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.batch import BatchExecutor
from repro.storage.btree_store import BTreeBucketStore
from repro.storage.cache import CachedExecutor
from repro.storage.executor import QueryExecutor
from repro.storage.migration import Migration
from repro.storage.paged_store import PagedBucketStore
from repro.storage.parallel_file import PartitionedFile
from repro.storage.replicated_file import ReplicatedFile
from repro.storage.stats import collect_stats

FS = FileSystem.of(4, 8, m=8)
RECORDS = [(i, f"name-{i % 11}") for i in range(250)]


class TestMigrationWithCache:
    def test_cache_invalidation_after_migration_keeps_results_correct(self):
        pf = PartitionedFile(ModuloDistribution(FS))
        pf.insert_all(RECORDS)
        cached = CachedExecutor(pf, capacity=8)
        query = pf.query({0: 13})
        before = sorted(map(str, cached.execute(query)))
        Migration(pf, FXDistribution(FS)).apply()
        cached.invalidate()
        after = sorted(map(str, cached.execute(query)))
        assert before == after
        pf.check_invariants()

    def test_batch_execution_after_migration(self):
        pf = PartitionedFile(ModuloDistribution(FS))
        pf.insert_all(RECORDS)
        queries = [pf.query({0: v}) for v in (1, 5, 13)]
        single_before = [
            sorted(map(str, QueryExecutor(pf).execute(q).records))
            for q in queries
        ]
        Migration(pf, FXDistribution(FS)).apply()
        report = BatchExecutor(pf).execute(queries)
        for expected, got in zip(single_before, report.records_per_query):
            assert sorted(map(str, got)) == expected


class TestStoresUnderLoad:
    @pytest.mark.parametrize(
        "factory",
        [
            None,
            lambda: BTreeBucketStore(t=3),
            lambda: PagedBucketStore(page_capacity=3),
        ],
        ids=["hash-dir", "btree", "paged"],
    )
    def test_all_local_stores_serve_identical_results(self, factory):
        pf = PartitionedFile(FXDistribution(FS), store_factory=factory)
        pf.insert_all(RECORDS)
        result = pf.search({1: "name-7"})
        reference = PartitionedFile(FXDistribution(FS))
        reference.insert_all(RECORDS)
        expected = reference.search({1: "name-7"})
        assert sorted(map(str, result.records)) == sorted(
            map(str, expected.records)
        )
        pf.check_invariants()

    def test_stats_snapshot_reflects_paged_store(self):
        pf = PartitionedFile(
            FXDistribution(FS),
            store_factory=lambda: PagedBucketStore(page_capacity=2),
        )
        pf.insert_all(RECORDS)
        stats = collect_stats(pf)
        assert stats.total_records == len(RECORDS)
        assert all(snap.pages is not None for snap in stats.devices)
        assert 0.0 <= stats.record_gini < 1.0
        assert "records" in stats.render()

    def test_stats_snapshot_plain_store_has_no_pages(self):
        pf = PartitionedFile(FXDistribution(FS))
        pf.insert_all(RECORDS)
        stats = collect_stats(pf)
        assert all(snap.pages is None for snap in stats.devices)


class TestReplicationOverMigratedLayout:
    def test_replicated_file_with_zorder_base(self):
        from repro.distribution.zorder import ZOrderDistribution

        rf = ReplicatedFile(ChainedReplicaScheme(ZOrderDistribution(FS)))
        rf.insert_all(RECORDS)
        rf.fail_device(5)
        result = rf.execute(PartialMatchQuery.full_scan(FS))
        assert len(result.records) == len(RECORDS)
        rf.check_invariants()


class TestWorkloadAcrossQueryClasses:
    def test_partial_match_and_box_agree_on_shared_semantics(self):
        pf = PartitionedFile(FXDistribution(FS))
        pf.insert_all(RECORDS)
        executor = QueryExecutor(pf)
        workload = QueryWorkload(FS, WorkloadSpec(seed=21))
        for query in workload.take(30):
            plain = executor.execute(query)
            boxed = executor.execute_box(BoxQuery.from_partial_match(query))
            assert sorted(map(str, plain.records)) == sorted(
                map(str, boxed.records)
            )
            assert plain.buckets_per_device == boxed.buckets_per_device

    def test_mixed_pipeline_cache_then_box_then_stats(self):
        pf = PartitionedFile(FXDistribution(FS))
        pf.insert_all(RECORDS)
        cached = CachedExecutor(pf, capacity=4)
        cached.execute(PartialMatchQuery.full_scan(FS))
        cached.execute(pf.query({0: 3}))
        assert cached.stats.hit_rate > 0.0
        box = BoxQuery.from_spec(FS, {1: (0, 3)})
        result = QueryExecutor(pf).execute_box(box)
        assert sum(result.buckets_per_device) == box.qualified_count
        stats = collect_stats(pf)
        assert stats.total_records == len(RECORDS)
