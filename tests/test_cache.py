"""Tests for the subsumption-aware query result cache."""

import pytest

from repro.core.fx import FXDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.cache import CachedExecutor
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(4, 4, m=4)


def _loaded():
    pf = PartitionedFile(FXDistribution(FS))
    pf.insert_all([(i, f"t{i % 7}") for i in range(60)])
    return pf


def _ground_truth(pf, query):
    records = []
    for device in pf.devices:
        for bucket in device.store.buckets():
            if query.matches(bucket):
                records.extend(device.store.records_in(bucket))
    return sorted(map(str, records))


class TestCorrectness:
    def test_miss_returns_correct_records(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 5})
        assert sorted(map(str, cached.execute(query))) == _ground_truth(
            pf, query
        )

    def test_exact_hit_returns_same_records(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 5})
        first = cached.execute(query)
        second = cached.execute(query)
        assert sorted(map(str, first)) == sorted(map(str, second))
        assert cached.stats.exact_hits == 1

    def test_subsumption_hit_correct(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        cached.execute(PartialMatchQuery.full_scan(FS))
        narrow = pf.query({0: 5, 1: "t3"})
        got = cached.execute(narrow)
        assert cached.stats.subsumption_hits == 1
        assert sorted(map(str, got)) == _ground_truth(pf, narrow)

    def test_subsumption_hit_avoids_device_reads(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        cached.execute(PartialMatchQuery.full_scan(FS))
        reads_before = sum(d.stats.bucket_reads for d in pf.devices)
        cached.execute(pf.query({0: 2}))
        reads_after = sum(d.stats.bucket_reads for d in pf.devices)
        assert reads_after == reads_before

    def test_narrow_entry_does_not_answer_broad_query(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        cached.execute(pf.query({0: 1}))
        broad = PartialMatchQuery.full_scan(FS)
        got = cached.execute(broad)
        assert cached.stats.misses == 2  # both executions hit the devices
        assert sorted(map(str, got)) == _ground_truth(pf, broad)


class TestLifecycle:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            CachedExecutor(_loaded(), capacity=0)

    def test_lru_eviction(self):
        pf = _loaded()
        cached = CachedExecutor(pf, capacity=2)
        q1, q2, q3 = (
            PartialMatchQuery.from_dict(FS, {0: v}) for v in (0, 1, 2)
        )
        cached.execute(q1)
        cached.execute(q2)
        cached.execute(q3)  # evicts q1
        assert cached.stats.evictions == 1
        assert len(cached) == 2
        cached.execute(q1)
        assert cached.stats.misses == 4

    def test_invalidate_forces_refetch(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        cached.execute(query)
        pf.insert((99, "fresh"))
        cached.invalidate()
        got = cached.execute(query)
        assert cached.stats.misses == 2
        assert sorted(map(str, got)) == _ground_truth(pf, query)

    def test_hit_rate(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        assert cached.stats.hit_rate == 0.0
        cached.execute(query)
        cached.execute(query)
        assert cached.stats.hit_rate == pytest.approx(0.5)
