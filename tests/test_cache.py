"""Tests for the subsumption-aware query result cache."""

import random
import threading

import pytest

from repro.core.fx import FXDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.cache import CachedExecutor
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(4, 4, m=4)


def _loaded():
    pf = PartitionedFile(FXDistribution(FS))
    pf.insert_all([(i, f"t{i % 7}") for i in range(60)])
    return pf


def _ground_truth(pf, query):
    records = []
    for device in pf.devices:
        for bucket in device.store.buckets():
            if query.matches(bucket):
                records.extend(device.store.records_in(bucket))
    return sorted(map(str, records))


class TestCorrectness:
    def test_miss_returns_correct_records(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 5})
        assert sorted(map(str, cached.execute(query))) == _ground_truth(
            pf, query
        )

    def test_exact_hit_returns_same_records(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 5})
        first = cached.execute(query)
        second = cached.execute(query)
        assert sorted(map(str, first)) == sorted(map(str, second))
        assert cached.stats.exact_hits == 1

    def test_subsumption_hit_correct(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        cached.execute(PartialMatchQuery.full_scan(FS))
        narrow = pf.query({0: 5, 1: "t3"})
        got = cached.execute(narrow)
        assert cached.stats.subsumption_hits == 1
        assert sorted(map(str, got)) == _ground_truth(pf, narrow)

    def test_subsumption_hit_avoids_device_reads(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        cached.execute(PartialMatchQuery.full_scan(FS))
        reads_before = sum(d.stats.bucket_reads for d in pf.devices)
        cached.execute(pf.query({0: 2}))
        reads_after = sum(d.stats.bucket_reads for d in pf.devices)
        assert reads_after == reads_before

    def test_narrow_entry_does_not_answer_broad_query(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        cached.execute(pf.query({0: 1}))
        broad = PartialMatchQuery.full_scan(FS)
        got = cached.execute(broad)
        assert cached.stats.misses == 2  # both executions hit the devices
        assert sorted(map(str, got)) == _ground_truth(pf, broad)


class TestLifecycle:
    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            CachedExecutor(_loaded(), capacity=0)

    def test_lru_eviction(self):
        pf = _loaded()
        cached = CachedExecutor(pf, capacity=2)
        q1, q2, q3 = (
            PartialMatchQuery.from_dict(FS, {0: v}) for v in (0, 1, 2)
        )
        cached.execute(q1)
        cached.execute(q2)
        cached.execute(q3)  # evicts q1
        assert cached.stats.evictions == 1
        assert len(cached) == 2
        cached.execute(q1)
        assert cached.stats.misses == 4

    def test_invalidate_forces_refetch(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        cached.execute(query)
        pf.insert((99, "fresh"))
        cached.invalidate()
        got = cached.execute(query)
        assert cached.stats.misses == 2
        assert sorted(map(str, got)) == _ground_truth(pf, query)

    def test_hit_rate(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        assert cached.stats.hit_rate == 0.0
        cached.execute(query)
        cached.execute(query)
        assert cached.stats.hit_rate == pytest.approx(0.5)


class TestWriteAwareness:
    """The stale-read bugfix: writes invalidate affected entries on their
    own — no manual ``invalidate()`` between executions required."""

    def test_insert_between_two_executions_is_visible(self):
        # Regression: this exact sequence used to serve the pre-insert
        # result from cache — a stale read.
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        first = cached.execute(query)
        pf.insert((3, "fresh"))  # same raw value 3: lands in a cached bucket
        second = cached.execute(query)
        assert sorted(map(str, second)) == _ground_truth(pf, query)
        assert len(second) == len(first) + 1
        assert cached.stats.write_invalidations >= 1

    def test_delete_between_two_executions_is_visible(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        first = cached.execute(query)
        assert pf.delete((3, "t3"))
        second = cached.execute(query)
        assert sorted(map(str, second)) == _ground_truth(pf, query)
        assert len(second) == len(first) - 1

    def test_unrelated_write_leaves_entry_intact(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        cached.execute(query)
        # find a raw value whose hashed field-0 address differs from 3's
        target = pf.query({0: 3}).values[0]
        other = next(
            v for v in range(32) if pf.query({0: v}).values[0] != target
        )
        pf.insert((other, "elsewhere"))
        cached.execute(query)
        assert cached.stats.exact_hits == 1
        assert cached.stats.write_invalidations == 0

    def test_write_drops_subsuming_broad_entry_too(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        from repro.query.partial_match import PartialMatchQuery

        broad = PartialMatchQuery.full_scan(FS)
        cached.execute(broad)  # a full scan matches every bucket
        pf.insert((1, "anywhere"))
        assert cached.stats.write_invalidations == 1
        got = cached.execute(broad)
        assert cached.stats.misses == 2
        assert sorted(map(str, got)) == _ground_truth(pf, broad)

    def test_notification_precedes_version_publish(self):
        # The freshness proof hangs on this ordering: listeners run before
        # the new write version becomes observable, so a reader that has
        # seen version v can never hit an entry v invalidated.
        pf = _loaded()
        observed = []
        pf.subscribe(
            lambda bucket, version: observed.append((version, pf.write_version))
        )
        before = pf.write_version
        pf.insert((3, "ordered"))
        assert observed == [(before + 1, before)]
        assert pf.write_version == before + 1

    def test_fill_skipped_when_matching_write_lands_mid_fetch(self):
        # A write landing between a miss's device fetch and its fill cannot
        # drop the not-yet-inserted entry; the fill must notice and skip
        # caching the now-stale snapshot (while still returning it).
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        original_fetch = cached._fetch

        def racing_fetch(q):
            entry = original_fetch(q)
            pf.insert((3, "mid-fetch"))  # lands in a bucket the query matches
            return entry

        cached._fetch = racing_fetch
        cached.execute(query)
        cached._fetch = original_fetch
        assert len(cached) == 0  # stale fill was skipped
        got = cached.execute(query)  # a miss again, now cacheable
        assert cached.stats.misses == 2
        assert sorted(map(str, got)) == _ground_truth(pf, query)

    def test_fill_kept_when_unrelated_write_lands_mid_fetch(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        target = query.values[0]
        other = next(
            v for v in range(32) if pf.query({0: v}).values[0] != target
        )
        original_fetch = cached._fetch

        def racing_fetch(q):
            entry = original_fetch(q)
            pf.insert((other, "elsewhere"))  # disjoint bucket: entry stays
            return entry

        cached._fetch = racing_fetch
        cached.execute(query)
        cached._fetch = original_fetch
        assert len(cached) == 1
        cached.execute(query)
        assert cached.stats.exact_hits == 1

    def test_close_detaches_from_notifications(self):
        pf = _loaded()
        cached = CachedExecutor(pf)
        query = pf.query({0: 3})
        cached.execute(query)
        cached.close()
        pf.insert((3, "after-close"))
        assert cached.stats.write_invalidations == 0
        assert len(cached) == 1  # entry survives; manual contract applies
        cached.close()  # idempotent


class TestThreadSafety:
    """The thread-unsafety bugfix: concurrent lookups, fills, evictions
    and write notifications share one lock (mirroring
    :class:`repro.perf.memo.LRUCache`)."""

    def test_concurrent_execute_and_write_stress(self):
        pf = _loaded()
        cached = CachedExecutor(pf, capacity=4)  # small: constant eviction
        n_threads, n_ops = 8, 60
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(thread_id):
            rng = random.Random(thread_id)
            try:
                barrier.wait()
                for op in range(n_ops):
                    if thread_id % 2 == 0 and op % 10 == 9:
                        pf.insert((rng.randrange(32), f"w{thread_id}-{op}"))
                    else:
                        query = pf.query({0: rng.randrange(8)})
                        for record in cached.execute(query):
                            assert query.matches(
                                pf.multikey_hash.bucket_of(record)
                            )
            except BaseException as error:
                errors.append(f"thread {thread_id}: {error!r}")

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # after the dust settles every query must be served fresh-correct
        for value in range(8):
            query = pf.query({0: value})
            assert sorted(map(str, cached.execute(query))) == _ground_truth(
                pf, query
            )

    def test_stats_consistent_after_stress(self):
        pf = _loaded()
        cached = CachedExecutor(pf, capacity=8)
        barrier = threading.Barrier(4)

        def worker(thread_id):
            barrier.wait()
            for op in range(50):
                cached.execute(pf.query({0: (thread_id + op) % 6}))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cached.stats.lookups == 200
        assert 0.0 <= cached.stats.hit_rate <= 1.0
