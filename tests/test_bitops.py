"""Tests for the XOR algebra of section 2 (repro.core.bitops)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitops import (
    lemma_1_1_holds,
    lemma_4_1_block,
    truncate,
    xor_fold,
    xor_set,
    z_m,
)

powers_of_two = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256, 512])


class TestTruncate:
    def test_keeps_low_bits(self):
        assert truncate(0b101101, 8) == 0b101

    def test_identity_below_m(self):
        assert truncate(5, 8) == 5

    def test_requires_power_of_two(self):
        with pytest.raises(Exception):
            truncate(5, 6)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            truncate(-1, 8)

    @given(st.integers(0, 10**9), powers_of_two)
    def test_equals_mod(self, value, m):
        assert truncate(value, m) == value % m

    @given(st.integers(0, 2**20), st.integers(0, 2**20), powers_of_two)
    def test_distributes_over_xor(self, a, b, m):
        # The identity Theorem 1's proof relies on.
        assert truncate(a ^ b, m) == truncate(a, m) ^ truncate(b, m)


class TestXorSet:
    def test_int_int(self):
        assert xor_set(2, 3) == 1

    def test_int_set(self):
        assert xor_set(2, {0, 1, 2, 3}) == {0, 1, 2, 3}

    def test_set_int(self):
        assert xor_set({0, 1}, 4) == {4, 5}

    def test_set_set(self):
        assert xor_set({0, 1}, {0, 2}) == {0, 1, 2, 3}

    def test_paper_example_x1_y1(self):
        # Section 2: X1 = 2, Y1 = 3 -> 1.
        assert xor_set(2, 3) == 1

    @given(st.sets(st.integers(0, 255), min_size=1, max_size=8),
           st.integers(0, 255))
    def test_int_set_cardinality_preserved(self, values, k):
        # XOR by a constant is injective.
        assert len(xor_set(k, values)) == len(values)


class TestXorFold:
    def test_empty_is_zero(self):
        assert xor_fold([]) == 0

    def test_fold(self):
        assert xor_fold([1, 2, 4]) == 7

    @given(st.lists(st.integers(0, 2**16), max_size=10))
    def test_order_independent(self, values):
        assert xor_fold(values) == xor_fold(list(reversed(values)))


class TestLemma11:
    """Lemma 1.1: Z_M [+] k == Z_M (XOR permutes the device space)."""

    @given(powers_of_two.filter(lambda m: m >= 2), st.data())
    def test_holds_over_hypothesis_space(self, m, data):
        k = data.draw(st.integers(0, m - 1))
        assert lemma_1_1_holds(m, k)

    def test_paper_example_2(self):
        # Z_8 [+] 3 == Z_8.
        assert xor_set(3, z_m(8)) == z_m(8)

    def test_rejects_k_out_of_range(self):
        with pytest.raises(ValueError):
            lemma_1_1_holds(8, 8)


class TestLemma41:
    """Lemma 4.1: {0..w-1} [+] L is the aligned w-block containing L."""

    @given(st.sampled_from([1, 2, 4, 8, 16, 32]), st.integers(0, 10**6))
    def test_block_alignment(self, w, value):
        block = lemma_4_1_block(w, value)
        a = value // w
        assert block == set(range(a * w, (a + 1) * w))

    def test_paper_statement_example(self):
        assert lemma_4_1_block(4, 6) == {4, 5, 6, 7}

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            lemma_4_1_block(4, -1)
