"""Tests for the convolution engine (repro.analysis.histograms).

The central correctness claims:

1. XOR/cyclic convolutions match their O(M^2) definitions,
2. the spectral (FWHT/FFT) fast path matches direct convolution,
3. a query's histogram from the engine equals brute-force enumeration,
4. histogram *shape* is pattern-invariant for separable methods.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histograms import (
    PatternEvaluator,
    contribution_histogram,
    cyclic_convolve,
    evaluator_for,
    fwht,
    pattern_histogram,
    separable_response_histogram,
    xor_convolve,
)
from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem


def _vectors(max_len_bits=5):
    return st.integers(1, max_len_bits).flatmap(
        lambda bits: st.lists(
            st.integers(0, 100), min_size=1 << bits, max_size=1 << bits
        )
    )


class TestConvolutions:
    @given(_vectors(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_xor_convolve_matches_definition(self, a, rng):
        m = len(a)
        b = [rng.randrange(50) for __ in range(m)]
        expected = [0] * m
        for i, av in enumerate(a):
            for j, bv in enumerate(b):
                expected[i ^ j] += av * bv
        assert xor_convolve(np.array(a), np.array(b)).tolist() == expected

    @given(_vectors(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_cyclic_convolve_matches_definition(self, a, rng):
        m = len(a)
        b = [rng.randrange(50) for __ in range(m)]
        expected = [0] * m
        for i, av in enumerate(a):
            for j, bv in enumerate(b):
                expected[(i + j) % m] += av * bv
        assert cyclic_convolve(np.array(a), np.array(b)).tolist() == expected

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            xor_convolve(np.zeros(4), np.zeros(8))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(AnalysisError):
            cyclic_convolve(np.zeros(6), np.zeros(6))


class TestFWHT:
    @given(_vectors())
    @settings(max_examples=30, deadline=None)
    def test_self_inverse_up_to_length(self, a):
        vec = np.array(a, dtype=np.float64)
        round_trip = fwht(fwht(vec)) / len(a)
        assert np.allclose(round_trip, vec)

    @given(_vectors(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_diagonalises_xor_convolution(self, a, rng):
        m = len(a)
        b = np.array([rng.randrange(50) for __ in range(m)], dtype=np.int64)
        a = np.array(a, dtype=np.int64)
        direct = xor_convolve(a, b).astype(np.float64)
        spectral = fwht(fwht(a) * fwht(b)) / m
        assert np.allclose(direct, spectral)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(AnalysisError):
            fwht(np.zeros(5))


class TestContributionHistogram:
    def test_injective_small_field_is_zero_one(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "U"])
        hist = contribution_histogram(fx, 1)
        assert sorted(hist.tolist(), reverse=True)[:4] == [1, 1, 1, 1]
        assert hist.sum() == 4

    def test_large_identity_field_is_uniform(self):
        fs = FileSystem.of(32, 4, m=8)
        fx = FXDistribution(fs)
        hist = contribution_histogram(fx, 0)
        assert hist.tolist() == [4] * 8


class TestEngineVsBruteForce:
    FILESYSTEMS = [
        FileSystem.of(4, 8, m=8),
        FileSystem.of(2, 4, 8, m=4),
        FileSystem.of(16, 4, m=8),
        FileSystem.of(4, 4, 4, m=16),
    ]

    def _methods(self, fs):
        return [
            FXDistribution(fs),
            ModuloDistribution(fs),
            GDMDistribution(fs, multipliers=tuple(2 * i + 2 for i in range(fs.n_fields))),
        ]

    @pytest.mark.parametrize("fs", FILESYSTEMS, ids=lambda fs: fs.describe())
    def test_histogram_matches_enumeration(self, fs):
        from repro.query.patterns import all_patterns, queries_for_pattern

        for method in self._methods(fs):
            for pattern in all_patterns(fs.n_fields):
                for query in list(queries_for_pattern(fs, pattern))[:3]:
                    naive = [0] * fs.m
                    for bucket in query.qualified_buckets():
                        naive[method.device_of(bucket)] += 1
                    engine = separable_response_histogram(method, query)
                    assert engine == naive, (method.name, query.describe())

    @pytest.mark.parametrize("fs", FILESYSTEMS, ids=lambda fs: fs.describe())
    def test_shape_is_pattern_invariant(self, fs):
        """Specified values permute devices but never change the sorted
        histogram — the structural fact the whole evaluation leans on."""
        from repro.query.patterns import all_patterns, queries_for_pattern

        for method in self._methods(fs):
            for pattern in all_patterns(fs.n_fields):
                shapes = {
                    tuple(sorted(method.response_histogram(query)))
                    for query in queries_for_pattern(fs, pattern)
                }
                assert len(shapes) == 1


class TestPatternEvaluator:
    def test_exact_match_pattern(self):
        fs = FileSystem.of(4, 4, m=16)
        evaluator = PatternEvaluator(FXDistribution(fs, transforms=["I", "U"]))
        hist = evaluator.histogram(frozenset())
        assert hist.sum() == 1
        assert evaluator.largest_response(frozenset()) == 1

    def test_uniform_short_circuit(self):
        fs = FileSystem.of(64, 4, m=8)
        evaluator = PatternEvaluator(FXDistribution(fs))
        hist = evaluator.histogram(frozenset({0}))
        assert hist.tolist() == [8] * 8

    def test_huge_uniform_pattern_uses_big_ints(self):
        # 512**10 / 512 per device: far beyond int64.
        fs = FileSystem.uniform(10, 512, m=512)
        evaluator = PatternEvaluator(FXDistribution(fs))
        load = evaluator.largest_response(frozenset(range(10)))
        assert load == 512**10 // 512
        assert evaluator.is_strict_optimal(frozenset(range(10)))

    def test_magnitude_guard(self):
        # Ten non-uniform fields of size 64 with M=128: product 64**10
        # exceeds the float-exact range, so the evaluator must refuse
        # rather than silently round.
        fs = FileSystem.uniform(10, 64, m=128)
        evaluator = PatternEvaluator(FXDistribution(fs))
        with pytest.raises(AnalysisError):
            evaluator.histogram(frozenset(range(10)))

    def test_pattern_field_validation(self):
        fs = FileSystem.of(4, 4, m=16)
        evaluator = PatternEvaluator(FXDistribution(fs))
        with pytest.raises(AnalysisError):
            evaluator.histogram(frozenset({7}))

    def test_evaluator_for_caches(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs)
        assert evaluator_for(fx) is evaluator_for(fx)

    def test_pattern_histogram_helper(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "U"])
        hist = pattern_histogram(fx, {0, 1})
        assert hist.tolist() == [1] * 16
