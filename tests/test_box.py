"""Tests for box queries (ranges / IN-lists) and their exact analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.box import (
    box_is_strict_optimal,
    box_largest_response,
    box_qualified_on_device,
    box_response_histogram,
)
from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import AnalysisError, QueryError
from repro.hashing.fields import FileSystem
from repro.query.box import BoxQuery
from repro.query.partial_match import PartialMatchQuery

FS = FileSystem.of(4, 8, m=8)


class TestBoxQueryConstruction:
    def test_from_spec_range(self):
        box = BoxQuery.from_spec(FS, {1: (2, 5)})
        assert box.allowed[0] == (0, 1, 2, 3)
        assert box.allowed[1] == (2, 3, 4, 5)
        assert box.qualified_count == 16

    def test_from_spec_exact_and_list(self):
        box = BoxQuery.from_spec(FS, {0: 3, 1: [7, 1, 1]})
        assert box.allowed[0] == (3,)
        assert box.allowed[1] == (1, 7)

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            BoxQuery.from_spec(FS, {0: (3, 1)})

    def test_out_of_domain_rejected(self):
        with pytest.raises(QueryError):
            BoxQuery.from_spec(FS, {0: 4})

    def test_empty_set_rejected(self):
        with pytest.raises(QueryError):
            BoxQuery(FS, ((), (0,)))

    def test_unsorted_rejected(self):
        with pytest.raises(QueryError):
            BoxQuery(FS, ((1, 0), (0,)))

    def test_arity_rejected(self):
        with pytest.raises(QueryError):
            BoxQuery(FS, ((0,),))

    def test_from_partial_match_round_trip(self):
        query = PartialMatchQuery.from_dict(FS, {0: 2})
        box = BoxQuery.from_partial_match(query)
        assert box.is_partial_match()
        assert sorted(box.qualified_buckets()) == sorted(
            query.qualified_buckets()
        )

    def test_describe(self):
        box = BoxQuery.from_spec(FS, {0: 1, 1: [2, 5]})
        assert box.describe() == "<1, {2,5}>"
        assert BoxQuery.from_spec(FS, {}).describe() == "<*, *>"

    def test_constrained_fields(self):
        box = BoxQuery.from_spec(FS, {1: (0, 3)})
        assert box.constrained_fields() == (1,)

    def test_matches(self):
        box = BoxQuery.from_spec(FS, {0: [1, 2], 1: (4, 6)})
        assert box.matches((1, 5))
        assert not box.matches((0, 5))
        assert not box.matches((1, 7))


def _methods(fs):
    return [
        FXDistribution(fs),
        ModuloDistribution(fs),
        GDMDistribution(fs, multipliers=tuple(3 + 2 * i for i in range(fs.n_fields))),
    ]


@st.composite
def boxes(draw):
    allowed = []
    for size in FS.field_sizes:
        count = draw(st.integers(1, size))
        values = draw(
            st.sets(st.integers(0, size - 1), min_size=count, max_size=count)
        )
        allowed.append(tuple(sorted(values)))
    return BoxQuery(FS, tuple(allowed))


class TestBoxHistogram:
    @given(boxes())
    @settings(max_examples=40, deadline=None)
    def test_histogram_matches_enumeration(self, box):
        for method in _methods(FS):
            naive = [0] * FS.m
            for bucket in box.qualified_buckets():
                naive[method.device_of(bucket)] += 1
            assert box_response_histogram(method, box) == naive

    def test_wrong_filesystem_rejected(self):
        other = FileSystem.of(4, 8, m=4)
        box = BoxQuery.from_spec(other, {})
        with pytest.raises(AnalysisError):
            box_response_histogram(FXDistribution(FS), box)

    def test_partial_match_box_agrees_with_query_engine(self):
        fx = FXDistribution(FS)
        query = PartialMatchQuery.from_dict(FS, {0: 2})
        box = BoxQuery.from_partial_match(query)
        assert box_response_histogram(fx, box) == fx.response_histogram(query)

    def test_largest_and_optimality(self):
        fx = FXDistribution(FS)
        box = BoxQuery.from_spec(FS, {0: (0, 1)})
        assert box_largest_response(fx, box) == max(
            box_response_histogram(fx, box)
        )
        assert isinstance(box_is_strict_optimal(fx, box), bool)


class TestBoxInverseMapping:
    @given(boxes())
    @settings(max_examples=40, deadline=None)
    def test_inverse_matches_naive_filter(self, box):
        for method in _methods(FS):
            for device in range(FS.m):
                algebraic = sorted(
                    box_qualified_on_device(method, device, box)
                )
                naive = sorted(
                    b
                    for b in box.qualified_buckets()
                    if method.device_of(b) == device
                )
                assert algebraic == naive

    def test_device_validated(self):
        box = BoxQuery.from_spec(FS, {})
        with pytest.raises(AnalysisError):
            list(box_qualified_on_device(FXDistribution(FS), 99, box))


class TestBoxExecution:
    def test_executor_returns_range_records(self):
        from repro.storage.executor import QueryExecutor
        from repro.storage.parallel_file import PartitionedFile

        fx = FXDistribution(FS)
        pf = PartitionedFile(fx)
        pf.insert_all([(i, f"n{i}") for i in range(100)])
        box = BoxQuery.from_spec(FS, {1: (0, 3)})
        result = QueryExecutor(pf).execute_box(box)
        expected = []
        for device in pf.devices:
            for bucket in device.store.buckets():
                if box.matches(bucket):
                    expected.extend(device.store.records_in(bucket))
        assert sorted(map(str, result.records)) == sorted(map(str, expected))
        assert sum(result.buckets_per_device) == box.qualified_count

    def test_range_vs_partial_match_consistency(self):
        """A degenerate box must execute identically to its partial match."""
        from repro.storage.executor import QueryExecutor
        from repro.storage.parallel_file import PartitionedFile

        pf = PartitionedFile(FXDistribution(FS))
        pf.insert_all([(i, f"n{i}") for i in range(50)])
        query = PartialMatchQuery.from_dict(FS, {0: 1})
        box = BoxQuery.from_partial_match(query)
        executor = QueryExecutor(pf)
        plain = executor.execute(query)
        boxed = executor.execute_box(box)
        assert sorted(map(str, plain.records)) == sorted(
            map(str, boxed.records)
        )
        assert plain.largest_response == boxed.largest_response


class TestBoxSufficientCondition:
    def test_aligned_block_on_large_field_certified(self):
        from repro.analysis.box import box_sufficient_optimal

        fs = FileSystem.of(16, 4, m=8)
        fx = FXDistribution(fs)
        # field 0 restricted to one aligned block of length M = 8
        box = BoxQuery.from_spec(fs, {0: (0, 7), 1: 2})
        assert box_sufficient_optimal(fx, box)
        assert box_is_strict_optimal(fx, box)

    def test_unaligned_range_not_certified(self):
        from repro.analysis.box import box_sufficient_optimal

        fs = FileSystem.of(16, 4, m=8)
        fx = FXDistribution(fs)
        box = BoxQuery.from_spec(fs, {0: (1, 5), 1: 2})
        assert not box_sufficient_optimal(fx, box)

    @given(boxes())
    @settings(max_examples=40, deadline=None)
    def test_never_overclaims(self, box):
        from repro.analysis.box import box_sufficient_optimal

        for method in _methods(FS):
            if box_sufficient_optimal(method, box):
                assert box_is_strict_optimal(method, box)

    def test_filesystem_mismatch(self):
        from repro.analysis.box import box_sufficient_optimal

        other = FileSystem.of(4, 8, m=4)
        with pytest.raises(AnalysisError):
            box_sufficient_optimal(
                FXDistribution(FS), BoxQuery.from_spec(other, {})
            )
