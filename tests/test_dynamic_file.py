"""Tests for the dynamic (directory-doubling) partitioned file."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.storage.dynamic_file import DynamicPartitionedFile


def _records(count, stride=3):
    return [(i, i * stride) for i in range(count)]


class TestGrowth:
    def test_directories_double_under_load(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=2.0
        )
        dyn.insert_all(_records(100))
        assert dyn.filesystem.bucket_count > 4
        assert dyn.doublings
        assert dyn.occupancy() <= 2.0

    def test_no_growth_below_threshold(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(8, 8, m=4), max_occupancy=10.0
        )
        dyn.insert_all(_records(50))
        assert dyn.doublings == []
        assert dyn.filesystem.field_sizes == (8, 8)

    def test_smallest_field_doubles_first(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 8, m=4), max_occupancy=1.0
        )
        dyn.insert_all(_records(20))
        assert dyn.doublings[0].field_index == 0
        assert dyn.doublings[0].old_size == 2
        assert dyn.doublings[0].new_size == 4

    def test_max_field_size_caps_growth(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=0.5, max_field_size=4
        )
        dyn.insert_all(_records(200))
        assert all(size <= 4 for size in dyn.filesystem.field_sizes)
        # occupancy exceeds the threshold once growth is exhausted
        assert dyn.occupancy() > 0.5

    def test_occupancy_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            DynamicPartitionedFile(FileSystem.of(2, 2, m=4), max_occupancy=0)

    def test_doubling_event_bookkeeping(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=2.0
        )
        dyn.insert_all(_records(64))
        for event in dyn.doublings:
            assert event.new_size == 2 * event.old_size
            assert 0 <= event.records_moved <= event.records_total
            assert 0.0 <= event.moved_fraction <= 1.0


class TestCorrectnessAcrossGrowth:
    def test_all_records_retained(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=2.0
        )
        dyn.insert_all(_records(150))
        assert dyn.record_count == 150
        assert sum(dyn.device_loads()) == 150

    def test_search_finds_every_record_after_growth(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=2.0, seed=5
        )
        dyn.insert_all(_records(120))
        for i in (0, 17, 65, 119):
            assert (i, i * 3) in dyn.search({0: i})

    def test_search_respects_all_specified_fields(self):
        dyn = DynamicPartitionedFile(FileSystem.of(4, 4, m=4))
        dyn.insert_all(_records(60))
        hits = dyn.search({0: 10, 1: 30})
        assert hits == [(10, 30)]

    def test_placement_matches_method_after_growth(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=2.0
        )
        dyn.insert_all(_records(100))
        for device in dyn.devices:
            for bucket in device.store.buckets():
                assert dyn.method.device_of(bucket) == device.device_id

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_bucket_of_is_stable_per_value(self, value):
        dyn = DynamicPartitionedFile(FileSystem.of(8, 8, m=4), seed=1)
        assert dyn.bucket_of((value, value)) == dyn.bucket_of((value, value))

    def test_split_refines_partition(self):
        """Doubling a directory must split each bucket in two, never
        reshuffle: the old bucket index is the new one mod the old size."""
        small = DynamicPartitionedFile(FileSystem.of(4, 4, m=4), seed=2)
        big = DynamicPartitionedFile(FileSystem.of(8, 4, m=4), seed=2)
        for value in range(200):
            before = small.bucket_of((value, value))
            after = big.bucket_of((value, value))
            assert after[0] % 4 == before[0]
            assert after[1] == before[1]


class TestConfiguration:
    def test_custom_method_factory(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(4, 4, m=4),
            method_factory=ModuloDistribution,
        )
        assert isinstance(dyn.method, ModuloDistribution)
        dyn.insert_all(_records(10))
        assert dyn.record_count == 10

    def test_default_method_is_fx(self):
        dyn = DynamicPartitionedFile(FileSystem.of(4, 4, m=4))
        assert isinstance(dyn.method, FXDistribution)

    def test_record_arity_checked(self):
        dyn = DynamicPartitionedFile(FileSystem.of(4, 4, m=4))
        with pytest.raises(ConfigurationError):
            dyn.insert((1,))

    def test_negative_attribute_rejected(self):
        dyn = DynamicPartitionedFile(FileSystem.of(4, 4, m=4))
        with pytest.raises(ConfigurationError):
            dyn.insert((-1, 2))

    def test_loads_reasonably_balanced(self):
        dyn = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=2.0, seed=3
        )
        dyn.insert_all(_records(300))
        loads = dyn.device_loads()
        mean = sum(loads) / len(loads)
        assert max(loads) < 1.5 * mean
