"""Tests for the fault-tolerant execution runtime (repro.runtime)."""

import pytest

from repro.core.fx import FXDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.runtime import (
    DegradedExecutor,
    FaultAwareQuerySimulator,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.storage.parallel_file import PartitionedFile
from repro.storage.replicated_file import ReplicatedFile
from repro.storage.simulator import poisson_arrivals

FS = FileSystem.of(8, 8, m=8)

RECORDS = [(3 * i % 256, 7 * i % 256) for i in range(48)]


def _replicated_file():
    rf = ReplicatedFile(ChainedReplicaScheme(FXDistribution(FS)))
    rf.insert_all(RECORDS)
    return rf


def _plain_file():
    pf = PartitionedFile(FXDistribution(FS))
    pf.insert_all(RECORDS)
    return pf


def _arrivals(n=40, seed=0):
    workload = QueryWorkload(
        FS, WorkloadSpec(spec_probability=0.5, exclude_trivial=True, seed=seed)
    )
    return poisson_arrivals(workload, n, rate_qps=10.0, seed=seed)


class TestFaultPlan:
    def test_trivial_plan(self):
        assert FaultPlan.none().is_trivial
        assert not FaultPlan.fail([2]).is_trivial
        assert not FaultPlan(transient_error_rate=0.1).is_trivial

    def test_rejects_bad_error_rate(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_error_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_error_rate=-0.5)

    def test_rejects_negative_device(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(failed_devices=frozenset({-1}))

    def test_rejects_nonpositive_slow_factor(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(slow_factors={0: 0.0})

    def test_injector_rejects_out_of_range_devices(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultPlan.fail([9]), m=8)


class TestFaultInjector:
    def test_draws_are_deterministic_and_order_independent(self):
        plan = FaultPlan(seed=11, transient_error_rate=0.3)
        a = FaultInjector(plan, m=8)
        b = FaultInjector(plan, m=8)
        forward = [
            a.attempt_fails(d, q, k)
            for d in range(8) for q in range(20) for k in (1, 2, 3)
        ]
        backward = [
            b.attempt_fails(d, q, k)
            for d in reversed(range(8))
            for q in reversed(range(20))
            for k in (3, 2, 1)
        ]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)

    def test_seed_changes_draws(self):
        base = FaultPlan(seed=1, transient_error_rate=0.3)
        other = FaultPlan(seed=2, transient_error_rate=0.3)
        draws = lambda plan: [  # noqa: E731
            FaultInjector(plan, 8).attempt_fails(d, q, 1)
            for d in range(8) for q in range(50)
        ]
        assert draws(base) != draws(other)

    def test_failed_devices_never_draw(self):
        plan = FaultPlan(failed_devices=frozenset({3}),
                         transient_error_rate=0.99)
        injector = FaultInjector(plan, m=8)
        assert not any(injector.attempt_fails(3, q, 1) for q in range(50))
        assert injector.alive_devices() == (0, 1, 2, 4, 5, 6, 7)


class TestRetryPolicy:
    def test_capped_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=6, base_delay_ms=2.0,
                             backoff_factor=2.0, max_delay_ms=10.0)
        assert [policy.delay_before(k) for k in range(1, 7)] == [
            0.0, 2.0, 4.0, 8.0, 10.0, 10.0
        ]
        assert policy.total_backoff_ms(4) == 14.0

    def test_timeout(self):
        assert RetryPolicy(timeout_ms=5.0).exceeds_timeout(5.1)
        assert not RetryPolicy(timeout_ms=5.0).exceeds_timeout(5.0)
        assert not RetryPolicy().exceeds_timeout(1e9)

    def test_none_policy_is_single_attempt(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert policy.total_backoff_ms(1) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ms=0.0)


class TestDegradedExecutorFailover:
    def test_failover_records_identical_to_fault_free_run(self):
        """The acceptance scenario: 1 failed device of M=8, replicated FX —
        the degraded run must return exactly the fault-free record list."""
        rf = _replicated_file()
        clean = DegradedExecutor(rf)
        for failed in range(FS.m):
            masked = DegradedExecutor(rf, plan=FaultPlan.fail([failed]))
            compared = 0
            for record in RECORDS[:10]:
                want = clean.search({0: record[0]})
                got = masked.search({0: record[0]})
                assert got.records == want.records
                assert got.completeness == 1.0
                assert got.lost_buckets == 0
                compared += len(want.records)
            assert compared > 0  # the scenario must actually read data

    def test_failover_matches_plain_executor_order(self):
        plain = _plain_file().search({0: RECORDS[0][0]})
        masked = DegradedExecutor(
            _replicated_file(), plan=FaultPlan.fail([2])
        ).search({0: RECORDS[0][0]})
        assert plain.records == masked.records
        assert plain.records  # non-trivial comparison

    def test_failover_counter_nonzero(self):
        masked = DegradedExecutor(
            _replicated_file(), plan=FaultPlan.fail([0])
        )
        result = masked.execute(masked.file.query({0: RECORDS[0][0]}))
        assert result.failovers > 0
        assert result.failed_devices == (0,)

    def test_adjacent_double_failure_loses_buckets(self):
        masked = DegradedExecutor(
            _replicated_file(), plan=FaultPlan.fail([1, 2])
        )
        result = masked.search({0: RECORDS[0][0]})
        # device 1's backup (device 2) is down too: data is reported lost,
        # not raised.
        assert result.lost_buckets > 0
        assert result.completeness < 1.0
        assert not result.is_complete

    def test_without_replicas_reports_partial_results(self):
        exposed = DegradedExecutor(_plain_file(), plan=FaultPlan.fail([0]))
        degraded = [
            exposed.search({0: record[0]}) for record in RECORDS[:10]
        ]
        assert all(r.completeness < 1.0 for r in degraded)
        assert all(0.0 < r.completeness for r in degraded)
        assert any(r.lost_buckets > 0 for r in degraded)

    def test_trivial_plan_is_transparent(self):
        pf = _plain_file()
        runtime = DegradedExecutor(pf)
        for record in RECORDS[:5]:
            want = pf.search({0: record[0]})
            got = runtime.search({0: record[0]})
            assert got.records == want.records
            assert got.completeness == 1.0
            assert got.retries == got.timeouts == got.failovers == 0

    def test_to_dict_includes_fault_diagnostics(self):
        runtime = DegradedExecutor(
            _replicated_file(), plan=FaultPlan.fail([0])
        )
        data = runtime.search({0: RECORDS[0][0]}).to_dict()
        assert data["failed_devices"] == [0]
        assert data["completeness"] == 1.0
        assert data["failovers"] > 0
        assert "response_time_ms" in data and "records" in data

    def test_timeout_abandons_slow_device(self):
        exposed = DegradedExecutor(
            _plain_file(),
            plan=FaultPlan(slow_factors={0: 100.0}),
            retry=RetryPolicy(max_attempts=1, timeout_ms=50.0),
        )
        result = exposed.search({0: RECORDS[0][0]})
        assert result.timeouts == 1
        assert result.completeness < 1.0
        # the abandoned device's modelled time is capped at the timeout
        assert result.response_time_ms <= 50.0 + 1e-9

    def test_timeout_fails_over_when_replicated(self):
        rf = _replicated_file()
        clean = DegradedExecutor(rf)
        masked = DegradedExecutor(
            rf,
            plan=FaultPlan(slow_factors={0: 100.0}),
            retry=RetryPolicy(max_attempts=1, timeout_ms=50.0),
        )
        for record in RECORDS[:5]:
            assert (
                masked.search({0: record[0]}).records
                == clean.search({0: record[0]}).records
            )


class TestFaultAwareSimulator:
    PLAN = FaultPlan(
        seed=5,
        failed_devices=frozenset({2}),
        transient_error_rate=0.2,
        slow_factors={1: 2.0},
    )

    def test_same_seed_identical_report(self):
        """Seeded determinism: two runs of one scenario agree exactly."""

        def run():
            method = FXDistribution(FS)
            scheme = ChainedReplicaScheme(method)
            sim = FaultAwareQuerySimulator(
                method, plan=self.PLAN,
                retry=RetryPolicy(timeout_ms=500.0), scheme=scheme,
            )
            return sim.run(_arrivals())

        assert run() == run()

    def test_different_seed_differs(self):
        def run(seed):
            method = FXDistribution(FS)
            plan = FaultPlan(seed=seed, transient_error_rate=0.3)
            return FaultAwareQuerySimulator(method, plan=plan).run(_arrivals())

        assert run(1) != run(2)

    def test_failover_keeps_completeness_at_one(self):
        method = FXDistribution(FS)
        report = FaultAwareQuerySimulator(
            method,
            plan=FaultPlan.fail([2]),
            scheme=ChainedReplicaScheme(method),
        ).run(_arrivals())
        assert report.failovers > 0
        assert report.mean_completeness == 1.0
        assert report.lost_buckets == 0
        # the failed device never runs anything
        assert report.device_busy_ms[2] == 0.0

    def test_without_scheme_completeness_drops(self):
        report = FaultAwareQuerySimulator(
            FXDistribution(FS), plan=FaultPlan.fail([2])
        ).run(_arrivals())
        assert report.failovers == 0
        assert report.lost_buckets > 0
        assert 0.0 < report.mean_completeness < 1.0
        assert report.failed_devices == (2,)

    def test_scheme_over_other_method_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultAwareQuerySimulator(
                FXDistribution(FS),
                scheme=ChainedReplicaScheme(FXDistribution(FS)),
            )

    def test_straggler_slows_the_stream(self):
        method = FXDistribution(FS)
        nominal = FaultAwareQuerySimulator(method).run(_arrivals())
        slowed = FaultAwareQuerySimulator(
            FXDistribution(FS), plan=FaultPlan(slow_factors={0: 4.0})
        ).run(_arrivals())
        assert slowed.mean_latency_ms > nominal.mean_latency_ms

    def test_report_to_dict_round_trips_counters(self):
        method = FXDistribution(FS)
        report = FaultAwareQuerySimulator(
            method, plan=self.PLAN, scheme=ChainedReplicaScheme(method)
        ).run(_arrivals())
        data = report.to_dict()
        assert data["queries"] == len(report.queries)
        assert data["retries"] == report.retries
        assert data["failovers"] == report.failovers
        assert data["failed_devices"] == [2]
        assert 0.0 <= data["mean_completeness"] <= 1.0


class TestRuntimeCounters:
    def test_degraded_queries_and_failovers_recorded(self):
        from repro.perf import reset_counters, snapshot

        reset_counters()
        DegradedExecutor(
            _replicated_file(), plan=FaultPlan.fail([0])
        ).search({0: RECORDS[0][0]})
        DegradedExecutor(
            _plain_file(), plan=FaultPlan.fail([0])
        ).search({0: RECORDS[0][0]})
        counters = snapshot()
        assert counters["runtime.queries"].events == 2
        assert counters["runtime.failovers"].events > 0
        assert counters["runtime.degraded_queries"].events == 2


class TestFaultsCli:
    def test_faults_run_json(self, capsys):
        import json

        from repro.cli import main

        assert main([
            "faults", "run", "--fields", "8,8", "--devices", "8",
            "--queries", "30", "--fail", "2", "--replicate", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["queries"] == 30
        assert data["failovers"] > 0
        assert data["mean_completeness"] == 1.0

    def test_faults_report_shows_failover_counters(self, capsys):
        from repro.cli import main

        assert main([
            "faults", "report", "--fields", "8,8", "--devices", "8",
            "--queries", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "P(no data loss)" in out
        assert "runtime.failovers" in out
        assert "FX + replicas" in out

    def test_faults_bad_slow_spec_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "faults", "run", "--fields", "4,4", "--devices", "4",
                "--slow", "nope",
            ])

    def test_simulate_json(self, capsys):
        import json

        from repro.cli import main

        assert main([
            "simulate", "--fields", "4,4", "--devices", "4",
            "--queries", "10", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"FX", "Modulo", "GDM"}
        assert data["FX"]["queries"] == 10
