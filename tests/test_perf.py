"""Tests for the perf package: counters, memoisation, parallel map."""

import pytest

from repro.analysis.histograms import evaluator_for, pattern_histogram
from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.perf import (
    counter,
    method_signature,
    parallel_map,
    record_hit,
    record_miss,
    record_work,
    render_report,
    reset_counters,
    resolve_workers,
    shared_evaluator,
    snapshot,
)
from repro.perf.memo import LRUCache, clear_memo


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_counters()
    yield
    reset_counters()


class TestCounters:
    def test_hit_miss_and_rate(self):
        record_hit("c", 3)
        record_miss("c")
        c = counter("c")
        assert (c.hits, c.misses, c.lookups) == (3, 1, 4)
        assert c.hit_rate == pytest.approx(0.75)

    def test_throughput(self):
        record_work("w", events=500, seconds=0.25)
        assert counter("w").rate == pytest.approx(2000.0)
        assert counter("idle").rate == 0.0

    def test_snapshot_is_a_copy(self):
        record_hit("c")
        snap = snapshot()
        record_hit("c")
        assert snap["c"].hits == 1
        assert counter("c").hits == 2

    def test_render_report_mentions_counters(self):
        record_hit("evaluator_lru")
        record_miss("evaluator_lru")
        text = render_report()
        assert "evaluator_lru" in text
        assert "50.0%" in text

    def test_render_report_empty_registry(self):
        assert "no activity" in render_report()


class TestLRUCache:
    def test_eviction_order(self):
        lru = LRUCache(2, "lru_test")
        lru.get_or_create("a", lambda: 1)
        lru.get_or_create("b", lambda: 2)
        lru.get_or_create("a", lambda: -1)   # refresh a
        lru.get_or_create("c", lambda: 3)    # evicts b
        calls = []
        assert lru.get_or_create("b", lambda: calls.append(1) or 4) == 4
        assert calls  # b was rebuilt
        assert len(lru) == 2

    def test_counters_recorded(self):
        lru = LRUCache(4, "lru_test")
        lru.get_or_create("k", lambda: 1)
        lru.get_or_create("k", lambda: 2)
        c = counter("lru_test")
        assert (c.hits, c.misses) == (1, 1)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0, "bad")


class TestMethodSignature:
    def test_equal_methods_share_signature(self):
        fs = FileSystem.of(4, 8, m=8)
        assert method_signature(FXDistribution(fs)) == method_signature(
            FXDistribution(fs)
        )

    def test_different_transforms_differ(self):
        fs = FileSystem.of(4, 4, m=16)
        a = FXDistribution(fs, transforms=["I", "U"])
        b = FXDistribution(fs, transforms=["U", "I"])
        assert method_signature(a) != method_signature(b)

    def test_combine_rule_distinguishes(self):
        fs = FileSystem.of(4, 8, m=8)
        assert method_signature(ModuloDistribution(fs)) != method_signature(
            FXDistribution(fs)
        )

    def test_signature_cached_on_instance(self):
        fx = FXDistribution(FileSystem.of(4, 8, m=8))
        assert method_signature(fx) is method_signature(fx)


class TestEvaluatorMemoisation:
    def test_equal_instances_share_one_evaluator(self):
        clear_memo()
        fs = FileSystem.of(4, 8, m=8)
        first = shared_evaluator(FXDistribution(fs))
        second = shared_evaluator(FXDistribution(fs))
        assert first is second
        c = counter("evaluator_lru")
        assert c.hits >= 1 and c.misses >= 1

    def test_evaluator_for_records_lru_hits(self):
        clear_memo()
        fs = FileSystem.of(4, 8, m=8)
        fx = FXDistribution(fs)
        evaluator_for(fx)
        before = counter("evaluator_lru").hits
        evaluator_for(fx)
        assert counter("evaluator_lru").hits == before + 1

    def test_repeated_pattern_histograms_hit_cache(self):
        clear_memo()
        fs = FileSystem.of(4, 8, m=8)
        fx = FXDistribution(fs)
        first = pattern_histogram(fx, {0, 1})
        before = counter("pattern_histogram").hits
        second = pattern_histogram(fx, {0, 1})
        assert counter("pattern_histogram").hits == before + 1
        assert second is first          # memoised, returned read-only
        assert not second.flags.writeable
        assert first.sum() == 32

    def test_histograms_still_correct_after_memoisation(self):
        fs = FileSystem.of(4, 4, m=16)
        modulo = ModuloDistribution(fs)
        query_histogram = modulo.response_histogram(
            __import__(
                "repro.query.partial_match", fromlist=["PartialMatchQuery"]
            ).PartialMatchQuery.full_scan(fs)
        )
        counts = [0] * fs.m
        for bucket in fs.buckets():
            counts[modulo.device_of(bucket)] += 1
        assert query_histogram == counts


class TestParallelMap:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5
        assert resolve_workers(0) >= 1
        assert resolve_workers(-1) >= 1

    def test_order_preserved(self):
        items = list(range(40))
        assert parallel_map(lambda x: x * x, items, parallel=4) == [
            x * x for x in items
        ]

    def test_serial_path_for_single_item(self):
        assert parallel_map(lambda x: x + 1, [41], parallel=8) == [42]

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise ValueError("boom")
            return x

        with pytest.raises(ValueError):
            parallel_map(boom, range(6), parallel=3)
