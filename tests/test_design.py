"""Tests for the directory-design optimiser (repro.hashing.design)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.design import (
    DirectoryDesign,
    design_directory,
    design_directory_exhaustive,
    expected_qualified_buckets,
)


class TestExpectedQualifiedBuckets:
    def test_always_specified_field_costs_nothing(self):
        # p = 1: the field contributes a single slice regardless of bits.
        assert expected_qualified_buckets([5], [1.0]) == 1.0

    def test_never_specified_field_costs_full_size(self):
        assert expected_qualified_buckets([3], [0.0]) == 8.0

    def test_product_form(self):
        assert expected_qualified_buckets([1, 2], [0.5, 0.5]) == pytest.approx(
            (0.5 + 0.5 * 2) * (0.5 + 0.5 * 4)
        )

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            expected_qualified_buckets([1], [0.5, 0.5])

    def test_negative_bits(self):
        with pytest.raises(ConfigurationError):
            expected_qualified_buckets([-1], [0.5])

    def test_bad_probability(self):
        with pytest.raises(ConfigurationError):
            expected_qualified_buckets([1], [1.5])


class TestGreedyDesign:
    def test_bits_go_to_frequently_specified_fields(self):
        design = design_directory([0.9, 0.1], total_bits=4)
        assert design.bits == (4, 0)

    def test_symmetric_probabilities_split_evenly(self):
        design = design_directory([0.5, 0.5], total_bits=4)
        assert sorted(design.bits) == [2, 2]

    def test_total_bits_respected(self):
        design = design_directory([0.3, 0.6, 0.9], total_bits=10)
        assert design.total_bits == 10

    def test_cap_respected(self):
        design = design_directory([0.9, 0.1], total_bits=4, max_bits_per_field=3)
        assert max(design.bits) <= 3
        assert design.total_bits == 4

    def test_infeasible_cap(self):
        with pytest.raises(ConfigurationError):
            design_directory([0.5], total_bits=4, max_bits_per_field=3)

    def test_zero_bits(self):
        design = design_directory([0.5, 0.5], total_bits=0)
        assert design.bits == (0, 0)
        assert design.field_sizes == (1, 1)

    def test_empty_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            design_directory([], total_bits=2)

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            design_directory([0.5], total_bits=-1)

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=4),
        st.integers(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_greedy_matches_exhaustive(self, probabilities, total_bits):
        """The convexity argument, checked: greedy cost == optimal cost."""
        greedy = design_directory(probabilities, total_bits)
        optimal = design_directory_exhaustive(probabilities, total_bits)
        assert greedy.expected_qualified() == pytest.approx(
            optimal.expected_qualified(), rel=1e-9
        )


class TestExhaustiveDesign:
    def test_small_space(self):
        design = design_directory_exhaustive([0.8, 0.2], total_bits=3)
        assert design.total_bits == 3

    def test_space_guard(self):
        with pytest.raises(ConfigurationError):
            design_directory_exhaustive([0.5] * 9, total_bits=2)

    def test_infeasible_cap(self):
        with pytest.raises(ConfigurationError):
            design_directory_exhaustive([0.5], total_bits=4, max_bits_per_field=3)


class TestDirectoryDesignObject:
    def test_field_sizes(self):
        design = DirectoryDesign(bits=(2, 0, 3), spec_probabilities=(0.5,) * 3)
        assert design.field_sizes == (4, 1, 8)

    def test_filesystem_integration(self):
        design = design_directory([0.7, 0.7, 0.3], total_bits=6)
        fs = design.filesystem(m=8)
        assert fs.bucket_count == 64
        assert fs.m == 8

    def test_designed_directory_beats_naive_split(self):
        """The point of the optimiser: expected retrieval work drops versus
        an even split when probabilities are skewed."""
        probabilities = [0.95, 0.95, 0.05, 0.05]
        designed = design_directory(probabilities, total_bits=8)
        even = DirectoryDesign(
            bits=(2, 2, 2, 2), spec_probabilities=tuple(probabilities)
        )
        assert designed.expected_qualified() < even.expected_qualified()
