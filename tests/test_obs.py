"""Tests for the unified telemetry layer (``repro.obs``).

Covers the injectable clocks, span tracing and nesting, the metrics
registry (including the folded perf counters), the structured event log
and its JSONL schema, the byte-identical deterministic export, the
telemetry-driven optimality checker, and the ``repro obs`` CLI group.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.fx import FXDistribution
from repro.core.optimality import optimality_report
from repro.distribution.modulo import ModuloDistribution
from repro.errors import AnalysisError, ReproError
from repro.hashing.fields import FileSystem
from repro.obs import (
    EventLog,
    Histogram,
    ManualClock,
    MetricsRegistry,
    MonotonicClock,
    ObservedOptimalityChecker,
    Telemetry,
    jsonl_line,
    telemetry,
    trace_span,
    validate_jsonl,
    validate_record,
)
from repro.perf import (
    counter,
    record_hit,
    record_miss,
    record_work,
    render_report,
    reset_counters,
    snapshot,
)
from repro.query.partial_match import PartialMatchQuery
from repro.query.patterns import all_patterns, queries_for_pattern
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.configure(enabled=True, clock=MonotonicClock(), reset=True)
    yield
    obs.configure(enabled=True, clock=MonotonicClock(), reset=True)


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
class TestClocks:
    def test_manual_clock_fixed_step(self):
        clock = ManualClock(step=0.5)
        assert (clock.now(), clock.now(), clock.now()) == (0.0, 0.5, 1.0)

    def test_manual_clock_advance(self):
        clock = ManualClock(start=1.0, step=0.001)
        clock.advance(2.0)
        assert clock.now() == pytest.approx(3.0)

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()

    def test_process_clock_follows_configure(self):
        obs.configure(clock=ManualClock(start=5.0, step=0.0))
        assert obs.clock.now() == pytest.approx(5.0)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_records_name_attrs_and_duration(self):
        t = Telemetry(clock=ManualClock(step=0.001))
        with t.tracer.span("work", kind="test") as span:
            span.set_attr("extra", 7)
            span.add_event("tick", n=1)
        [record] = t.events.records()
        assert record["name"] == "work"
        assert record["attrs"] == {"kind": "test", "extra": 7}
        assert record["duration_ms"] == pytest.approx(1.0)
        assert record["events"] == [
            {"name": "tick", "at_ms": pytest.approx(2.0), "attrs": {"n": 1}}
        ]

    def test_nested_spans_link_parents(self):
        t = Telemetry(clock=ManualClock())
        with t.tracer.span("outer") as outer:
            with t.tracer.span("inner"):
                assert t.tracer.current().name == "inner"
            assert t.tracer.current() is outer
        inner, outer_rec = t.events.records()
        assert inner["name"] == "inner"
        assert inner["parent"] == outer_rec["id"]
        assert outer_rec["parent"] is None

    def test_span_ids_sequential_and_reset(self):
        t = Telemetry(clock=ManualClock())
        with t.tracer.span("a"):
            pass
        with t.tracer.span("b"):
            pass
        ids = [r["id"] for r in t.events.records()]
        assert ids == [1, 2]
        t.reset()
        with t.tracer.span("c"):
            pass
        assert t.events.records()[0]["id"] == 1

    def test_disabled_tracer_is_a_noop(self):
        t = Telemetry(clock=ManualClock(), enabled=False)
        with t.tracer.span("invisible") as span:
            span.set_attr("k", 1)
            span.add_event("e")
        assert len(t.events) == 0
        assert t.metrics.snapshot().histograms == {}

    def test_span_duration_lands_in_histogram(self):
        t = Telemetry(clock=ManualClock(step=0.002))
        with t.tracer.span("timed"):
            pass
        histogram = t.metrics.snapshot().histograms["span.timed.ms"]
        assert histogram.count == 1
        assert histogram.max == pytest.approx(2.0)

    def test_global_trace_span_appends_to_global_log(self):
        with trace_span("global.test", x=1):
            pass
        names = [r["name"] for r in telemetry().events.records()]
        assert "global.test" in names


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_quantiles_resolve_to_upper_edge(self):
        h = Histogram("h", boundaries=(1.0, 10.0, 100.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            h.observe(value)
        assert h.quantile(0.50) == pytest.approx(1.0)
        assert h.quantile(0.95) == pytest.approx(100.0)
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(50.0)
        assert h.sum == pytest.approx(56.2)

    def test_overflow_bucket_reports_exact_max(self):
        h = Histogram("h", boundaries=(1.0,))
        h.observe(123.0)
        assert h.quantile(0.99) == pytest.approx(123.0)

    def test_empty_histogram_quantile_is_none(self):
        h = Histogram("h")
        assert h.quantile(0.5) is None
        assert h.summary()["count"] == 0

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.add("c", 3)
        registry.add("c")
        registry.set_gauge("g", 1.5)
        registry.observe("h", 0.2)
        snap = registry.snapshot()
        assert snap.counters["c"] == 4
        assert snap.gauges["g"] == pytest.approx(1.5)
        assert snap.histograms["h"].count == 1

    def test_unmeasured_gauge_snapshots_as_none(self):
        registry = MetricsRegistry()
        registry.gauge("pending")
        assert registry.snapshot().gauges["pending"] is None

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        registry.observe("h", 2.0)
        assert snap.histograms["h"].count == 1
        assert registry.snapshot().histograms["h"].count == 2

    def test_to_dict_sorts_keys(self):
        registry = MetricsRegistry()
        registry.add("zeta")
        registry.add("alpha")
        assert list(registry.snapshot().to_dict()["counters"]) == [
            "alpha", "zeta",
        ]


class TestPerfFold:
    """The legacy ``repro.perf.counters`` API records into the registry."""

    def test_perf_api_visible_in_obs_snapshot(self):
        reset_counters()
        record_hit("fold_check", 2)
        record_miss("fold_check")
        record_work("fold_check", events=10, seconds=0.5)
        perf = telemetry().metrics.snapshot().perf["fold_check"]
        assert (perf.hits, perf.misses, perf.events) == (2, 1, 10)
        assert counter("fold_check") is not None
        assert snapshot()["fold_check"].hits == 2

    def test_none_aware_accessors(self):
        reset_counters()
        c = counter("untouched")
        assert c.hit_rate_or_none is None
        assert c.rate_or_none is None
        assert not c.measured
        assert c.hit_rate == 0.0 and c.rate == 0.0
        record_hit("untouched")
        assert counter("untouched").hit_rate_or_none == pytest.approx(1.0)
        assert counter("untouched").measured

    def test_render_report_prints_dash_for_unmeasured(self):
        reset_counters()
        record_work("dash_check", events=5, seconds=0.0)
        text = render_report()
        line = next(l for l in text.splitlines() if "dash_check" in l)
        assert "-" in line  # no lookups and no measured seconds

    def test_reset_counters_leaves_other_metrics(self):
        telemetry().metrics.add("survivor")
        record_hit("doomed")
        reset_counters()
        snap = telemetry().metrics.snapshot()
        assert "doomed" not in snap.perf
        assert snap.counters["survivor"] == 1


# ----------------------------------------------------------------------
# Event log and schema
# ----------------------------------------------------------------------
class TestEventLog:
    def test_ring_evicts_but_counts_all_appends(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.append({"i": i})
        assert len(log) == 3
        assert log.appended == 5
        assert [r["i"] for r in log.records()] == [2, 3, 4]

    def test_tail(self):
        log = EventLog()
        for i in range(4):
            log.append({"i": i})
        assert [r["i"] for r in log.tail(2)] == [2, 3]
        assert log.tail(0) == []

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_jsonl_line_is_canonical(self):
        assert jsonl_line({"b": 1, "a": 2}) == '{"a":2,"b":1}\n'


class TestSchema:
    def _span_record(self):
        t = Telemetry(clock=ManualClock())
        with t.tracer.span("s", k=1) as span:
            span.add_event("e", n=2)
        return t.events.records()[0]

    def test_valid_span_and_metrics_records_pass(self):
        validate_record(self._span_record())
        metrics = telemetry().metrics.snapshot().to_dict()
        metrics["type"] = "metrics"
        metrics["v"] = 1
        validate_record(metrics)

    def test_missing_or_wrong_envelope_version_rejected(self):
        record = self._span_record()
        assert record["v"] == 1
        del record["v"]
        with pytest.raises(ReproError):
            validate_record(record)
        record["v"] = 2
        with pytest.raises(ReproError):
            validate_record(record)

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError):
            validate_record({"type": "mystery"})

    def test_missing_field_rejected(self):
        record = self._span_record()
        del record["duration_ms"]
        with pytest.raises(ReproError):
            validate_record(record)

    def test_validate_jsonl_counts_and_pinpoints_lines(self):
        good = jsonl_line(self._span_record())
        assert validate_jsonl(good * 3) == 3
        with pytest.raises(ReproError, match="line 2"):
            validate_jsonl(good + "not json\n")


# ----------------------------------------------------------------------
# Deterministic export
# ----------------------------------------------------------------------
class TestDeterministicExport:
    @staticmethod
    def _replay_and_export() -> str:
        obs.configure(clock=ManualClock(step=0.001), reset=True)
        fs = FileSystem.of(2, 2, 2, m=8)
        pf = PartitionedFile(FXDistribution(fs))
        pf.insert_all([(i, i + 1, i + 2) for i in range(8)])
        executor = QueryExecutor(pf)
        for spec in ({0: 1}, {1: 0, 2: 1}, {}):
            executor.execute(PartialMatchQuery.from_dict(fs, spec))
        return telemetry().export_jsonl()

    def test_two_runs_export_identical_bytes(self):
        first = self._replay_and_export()
        second = self._replay_and_export()
        assert first == second
        assert validate_jsonl(first) == len(first.splitlines())

    def test_export_ends_with_metrics_record(self):
        text = self._replay_and_export()
        last = json.loads(text.splitlines()[-1])
        assert last["type"] == "metrics"
        assert last["counters"]["query.executed"] == 3


# ----------------------------------------------------------------------
# Observed optimality checker
# ----------------------------------------------------------------------
class TestObservedOptimalityChecker:
    def test_fx_figure1_workload_matches_closed_form(self):
        """Acceptance: FX on (M=8, F=(2,2,2)) — every query's per-device
        maxima, read from telemetry alone, equal the closed form."""
        fs = FileSystem.of(2, 2, 2, m=8)
        method = FXDistribution(fs)
        queries = [
            q
            for pattern in all_patterns(fs.n_fields)
            for q in queries_for_pattern(fs, pattern)
        ]
        report = ObservedOptimalityChecker(method).replay(queries)
        assert report.queries == len(queries)
        assert report.consistent, report.summary()
        for observation in report.observations:
            assert observation.observed_max == max(
                observation.closed_form_per_device
            )
        # The per-pattern verdicts rebuilt from telemetry must equal the
        # closed-form census verdicts, pattern for pattern.
        closed = optimality_report(method)
        failing_patterns = {pattern for pattern, __, __ in closed.failures}
        telemetry_failing = {
            query.pattern
            for query, observation in zip(queries, report.observations)
            if not observation.strict_optimal
        }
        assert telemetry_failing == failing_patterns

    def test_non_optimal_method_yields_violations(self):
        fs = FileSystem.of(4, 4, m=4)
        method = ModuloDistribution(fs)
        closed = optimality_report(method)
        queries = [
            q
            for pattern in all_patterns(fs.n_fields)
            for q in queries_for_pattern(fs, pattern)
        ]
        report = ObservedOptimalityChecker(method).replay(queries)
        assert report.consistent
        assert bool(report.violations) == bool(closed.failures)

    def test_disabled_telemetry_raises(self):
        fs = FileSystem.of(2, 2, m=4)
        obs.configure(enabled=False)
        try:
            with pytest.raises(AnalysisError, match="disabled"):
                ObservedOptimalityChecker(FXDistribution(fs)).replay([])
        finally:
            obs.configure(enabled=True)

    def test_oversized_trace_rejected(self):
        fs = FileSystem.of(2, 2, m=4)
        small = Telemetry(clock=ManualClock(), capacity=2)
        checker = ObservedOptimalityChecker(
            FXDistribution(fs), telemetry=small
        )
        queries = [PartialMatchQuery.from_dict(fs, {0: 0})] * 5
        with pytest.raises(AnalysisError, match="capacity"):
            checker.replay(queries)

    def test_report_to_dict(self):
        fs = FileSystem.of(2, 2, m=4)
        report = ObservedOptimalityChecker(FXDistribution(fs)).replay(
            [PartialMatchQuery.from_dict(fs, {0: 1})]
        )
        data = report.to_dict()
        assert data["queries"] == 1
        assert data["consistent"] is True


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestObsCli:
    BASE = ["obs", "--fields", "2,2,2", "--devices", "8", "--queries", "8"]

    def test_report_prints_tables(self, capsys):
        assert main(self.BASE[:1] + ["report"] + self.BASE[1:]) == 0
        out = capsys.readouterr().out
        assert "Latency histograms" in out
        assert "span.query.execute.ms" in out
        assert "query.executed" in out
        assert "telemetry events retained" in out

    def test_export_stdout_validates(self, capsys):
        argv = self.BASE[:1] + ["export"] + self.BASE[1:] + ["--validate"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert validate_jsonl(out) == len(out.splitlines())

    def test_export_deterministic_byte_identical(self, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            argv = self.BASE[:1] + ["export"] + self.BASE[1:] + [
                "--deterministic-clock", "--validate", "--jsonl", str(path),
            ]
            assert main(argv) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_tail_prints_spans(self, capsys):
        argv = self.BASE[:1] + ["tail"] + self.BASE[1:] + ["--lines", "3"]
        assert main(argv) == 0
        out = capsys.readouterr().out.splitlines()
        assert 0 < len(out) <= 3
        assert any("batch.plan" in line or "query.execute" in line
                   for line in out)

    def test_check_strict_optimal_exit_zero(self, capsys):
        argv = self.BASE[:1] + ["check"] + self.BASE[1:]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "strict optimal from telemetry" in out
        assert "0 closed-form disagreements" in out

    def test_check_replays_a_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("f0=1 f1=* f2=0\nf0=* f1=* f2=1\n")
        argv = [
            "obs", "check", "--fields", "2,2,2", "--devices", "8",
            "--trace", str(trace),
        ]
        assert main(argv) == 0
        assert "2 queries replayed" in capsys.readouterr().out
