"""Tests for the vectorised query engine fast paths.

The contract under test: every fast path (array inverse mapping, parallel
sweeps, pattern-grouped batch planning) must be *indistinguishable* from
the reference path it accelerates — bit-identical bucket arrays, byte-
identical reports, same records — across methods, combine rules, file
systems and query shapes.
"""

import numpy as np
import pytest

from repro.core.fx import BasicFXDistribution, FXDistribution
from repro.core.inverse import (
    separable_qualified_on_device,
    separable_qualified_on_device_array,
)
from repro.core.optimality import is_k_optimal, optimality_report
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.search import (
    exhaustive_assignment_search,
    hill_climb_assignment_search,
)
from repro.errors import DistributionError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.query.patterns import all_patterns, representative_query
from repro.storage.batch import BatchExecutor, BatchPlanner
from repro.storage.parallel_file import PartitionedFile


def _method_factories():
    return [
        ("fx", lambda fs: FXDistribution(fs)),
        ("fx-basic", lambda fs: BasicFXDistribution(fs)),
        ("modulo", lambda fs: ModuloDistribution(fs)),
        (
            "gdm",  # even multipliers exercise non-injective solve fields
            lambda fs: GDMDistribution(
                fs, multipliers=tuple(2 + 2 * i for i in range(fs.n_fields))
            ),
        ),
    ]


FILESYSTEMS = [
    FileSystem.of(4, 8, m=8),
    FileSystem.of(2, 4, 8, m=4),
    FileSystem.of(16, 2, m=8),   # field larger than M: grouped pre-images
    FileSystem.of(4, 4, 4, m=16),
]


class TestQualifiedOnDeviceArray:
    @pytest.mark.parametrize("name,factory", _method_factories())
    @pytest.mark.parametrize("fs", FILESYSTEMS, ids=lambda fs: fs.describe())
    def test_bit_identical_to_iterator_over_full_grid(self, name, factory, fs):
        """Every (method, device, pattern): same buckets, same order."""
        method = factory(fs)
        for pattern in all_patterns(fs.n_fields):
            query = representative_query(fs, pattern)
            for device in range(fs.m):
                expected = list(
                    separable_qualified_on_device(method, device, query)
                )
                got = separable_qualified_on_device_array(
                    method, device, query
                )
                assert got.dtype == np.int64
                assert got.shape == (len(expected), fs.n_fields)
                assert [tuple(row) for row in got.tolist()] == expected

    def test_method_entry_point_validates(self):
        fs = FileSystem.of(4, 8, m=8)
        fx = FXDistribution(fs)
        query = PartialMatchQuery.from_dict(fs, {0: 1})
        with pytest.raises(DistributionError):
            fx.qualified_on_device_array(fs.m, query)
        other = PartialMatchQuery.full_scan(FileSystem.of(4, 8, m=4))
        with pytest.raises(DistributionError):
            fx.qualified_on_device_array(0, other)

    def test_exact_match_hits_only_home_device(self):
        fs = FileSystem.of(4, 8, m=8)
        fx = FXDistribution(fs)
        bucket = (3, 6)
        query = PartialMatchQuery.exact(fs, bucket)
        home = fx.device_of(bucket)
        for device in range(fs.m):
            got = fx.qualified_on_device_array(device, query)
            if device == home:
                assert got.tolist() == [list(bucket)]
            else:
                assert got.shape == (0, fs.n_fields)

    def test_devices_partition_the_qualified_set(self):
        fs = FileSystem.of(4, 8, m=8)
        fx = FXDistribution(fs)
        query = PartialMatchQuery.from_dict(fs, {0: 2})
        rows = np.concatenate(
            [fx.qualified_on_device_array(d, query) for d in range(fs.m)]
        )
        assert sorted(map(tuple, rows.tolist())) == sorted(
            query.qualified_buckets()
        )

    def test_rows_land_on_the_claimed_device(self):
        fs = FileSystem.of(4, 4, 4, m=16)
        gdm = GDMDistribution(fs, multipliers=(2, 4, 6))
        query = PartialMatchQuery.from_dict(fs, {1: 3})
        for device in range(fs.m):
            got = gdm.qualified_on_device_array(device, query)
            if got.shape[0]:
                assert (gdm.devices_of_array(got) == device).all()


class TestDevicesOfArrayFastPaths:
    def test_return_type_is_ndarray(self):
        fx = FXDistribution(FileSystem.of(4, 8, m=4))
        assert isinstance(fx.devices_of_array([[0, 0]]), np.ndarray)

    def test_empty_batch_returns_typed_empty_array(self):
        fx = FXDistribution(FileSystem.of(4, 8, m=4))
        empty = fx.devices_of_array(np.empty((0, 2), dtype=np.int64))
        assert isinstance(empty, np.ndarray)
        assert empty.dtype == np.int64
        assert empty.shape == (0,)

    def test_contribution_arrays_cached_and_read_only(self):
        fx = FXDistribution(FileSystem.of(4, 8, m=4))
        first = fx.contribution_array(0)
        assert fx.contribution_array(0) is first
        assert not first.flags.writeable
        assert first.tolist() == fx.contribution_table(0)

    def test_cached_tables_used_by_devices_of_array(self):
        fs = FileSystem.of(4, 8, m=4)
        fx = FXDistribution(fs)
        buckets = np.array(list(fs.buckets()))
        # Two calls must agree with the scalar path (and reuse the cache).
        for __ in range(2):
            vectorised = fx.devices_of_array(buckets)
            assert vectorised.tolist() == [
                fx.device_of(tuple(b)) for b in buckets
            ]


class TestParallelSweeps:
    @pytest.mark.parametrize("parallel", [2, 0])
    def test_optimality_report_byte_identical(self, parallel):
        fs = FileSystem.of(4, 4, 8, m=16)
        serial = optimality_report(ModuloDistribution(fs))
        fanned = optimality_report(ModuloDistribution(fs), parallel=parallel)
        assert fanned == serial
        assert repr(fanned) == repr(serial)

    def test_is_k_optimal_matches_serial(self):
        fs = FileSystem.of(4, 8, m=8)
        fx = FXDistribution(fs)
        for k in range(fs.n_fields + 1):
            assert is_k_optimal(fx, k, parallel=2) == is_k_optimal(fx, k)

    def test_exhaustive_search_identical(self):
        fs = FileSystem.of(4, 4, m=16)
        assert exhaustive_assignment_search(fs, parallel=3) == (
            exhaustive_assignment_search(fs)
        )

    def test_hill_climb_identical_including_history(self):
        fs = FileSystem.of(4, 4, 4, m=16)
        serial = hill_climb_assignment_search(fs, restarts=2, seed=7)
        fanned = hill_climb_assignment_search(
            fs, restarts=2, seed=7, parallel=4
        )
        assert fanned == serial


class TestBatchPlanner:
    def _loaded(self, fs):
        pf = PartitionedFile(FXDistribution(fs))
        pf.insert_all([(i, f"n{i % 9}") for i in range(80)])
        return pf

    def test_groups_queries_by_pattern(self):
        fs = FileSystem.of(4, 8, m=4)
        pf = self._loaded(fs)
        queries = [
            pf.query({0: 1}),
            pf.query({1: "n2"}),
            pf.query({0: 3}),   # same pattern as the first
        ]
        plan = BatchPlanner(pf.method).plan(queries)
        assert plan.pattern_groups == {
            frozenset({1}): [0, 2],
            frozenset({0}): [1],
        }
        assert set(plan.expected_device_loads) == set(plan.pattern_groups)
        # Shape-only histogram: totals match the group's qualified count.
        for pattern, loads in plan.expected_device_loads.items():
            query = queries[plan.pattern_groups[pattern][0]]
            assert sum(loads) == query.qualified_count

    def test_plan_reads_match_execution(self):
        fs = FileSystem.of(4, 8, m=4)
        pf = self._loaded(fs)
        queries = [pf.query({0: 1}), PartialMatchQuery.full_scan(fs)]
        executor = BatchExecutor(pf)
        plan = executor.plan(queries)
        report = executor.execute(queries)
        assert plan.bucket_reads == report.bucket_reads
        assert plan.naive_bucket_reads == report.naive_bucket_reads

    def test_batch_records_match_single_query_execution(self):
        fs = FileSystem.of(4, 8, m=4)
        pf = self._loaded(fs)
        queries = [pf.query({0: 1}), pf.query({1: "n3"}), pf.query({0: 1})]
        report = BatchExecutor(pf).execute(queries)
        from repro.storage.executor import QueryExecutor

        for query, batch_records in zip(queries, report.records_per_query):
            single = QueryExecutor(pf).execute(query)
            assert sorted(map(str, batch_records)) == sorted(
                map(str, single.records)
            )

    def test_non_separable_method_falls_back(self):
        from repro.distribution.random_alloc import RandomDistribution

        fs = FileSystem.of(4, 8, m=4)
        pf = PartitionedFile(RandomDistribution(fs, seed=3))
        pf.insert_all([(i, f"n{i % 5}") for i in range(40)])
        queries = [pf.query({0: 1}), pf.query({0: 1})]
        report = BatchExecutor(pf).execute(queries)
        assert report.sharing_factor == pytest.approx(2.0)
        plan = BatchExecutor(pf).plan(queries)
        assert plan.expected_device_loads == {}
