"""Tests for the distributed, tenant-aware observability plane.

Covers wire-level trace-context propagation (client stamping, server
resumption, thread-pool handoff, coalesced-follower links), the seeded
64-bit trace-id streams, dimensional (labeled) metrics, the per-tenant
SLO monitor and its ``{"op": "obs"}`` wire surface, the query-mix
profiler, and the tenant-attributed trace audit — plus the
``Span.to_record`` event-timestamp regression.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.api import make_gateway
from repro.cli import main
from repro.envelope import versioned
from repro.errors import ConfigurationError, ProtocolError, ReproError
from repro.gateway import (
    FrameDecoder,
    Gateway,
    GatewayClient,
    GatewayLoadSpec,
    GatewayRequestError,
    encode_frame,
    protocol,
    run_loopback_load,
)
from repro.gateway.loadtest import _connection_ops
from repro.hashing.fields import FileSystem
from repro.obs import (
    ManualClock,
    ObservedOptimalityChecker,
    QueryMixProfile,
    SloMonitor,
    SloPolicy,
    SloReport,
    TraceContext,
    telemetry,
    trace_span,
)
from repro.obs.events import EventLog
from repro.obs.metrics import (
    MetricsRegistry,
    labeled_name,
    parse_labeled_name,
)
from repro.obs.profile import (
    pattern_of,
    pattern_of_query,
    resolve_tenant,
    span_index,
)
from repro.obs.spans import Span, Tracer
from repro.query.partial_match import PartialMatchQuery

FIELDS = (4, 4)
DEVICES = 4


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    obs.reset_telemetry()
    yield
    obs.reset_telemetry()


@pytest.fixture
def gateway_factory():
    gateways: list[Gateway] = []

    def build(tenants=("alpha", "beta"), **kwargs):
        kwargs.setdefault("fields", FIELDS)
        kwargs.setdefault("devices", DEVICES)
        if not isinstance(tenants, dict):
            tenants = list(tenants)
        gateway = make_gateway(tenants, **kwargs)
        gateways.append(gateway)
        return gateway, gateway.start()

    yield build
    for gateway in gateways:
        gateway.close()


def _tracer(trace_seed: int = 0) -> Tracer:
    return Tracer(
        clock=ManualClock(step=0.001),
        event_log=EventLog(),
        metrics=MetricsRegistry(),
        trace_seed=trace_seed,
    )


def _span_records(records=None):
    records = telemetry().export_records() if records is None else records
    return [r for r in records if r.get("type") == "span"]


def _reachable_from_gateway(record, index) -> bool:
    current = record
    while current is not None:
        if current["name"] == "gateway.request":
            return True
        if current.get("parent") is None:
            return False
        current = index.get((current["trace"], current["parent"]))
    return False


# ======================================================================
# Span record timestamps (regression: events defaulted to span START)
# ======================================================================
class TestSpanEventTimestamps:
    def test_event_at_ms_defaults_to_span_end(self):
        tracer = _tracer()
        with tracer.span("work") as span:
            span.add_event("retry", attempt=1)
        record = tracer.event_log.records()[-1]
        assert record["duration_ms"] > 0
        event = record["events"][0]
        assert event["at_ms"] == record["end_ms"]
        assert event["at_ms"] > record["start_ms"]

    def test_explicit_at_ms_preserved(self):
        span = Span(name="w", span_id=1, parent_id=None, start=1.0, end=2.0)
        span.events.append({"name": "e", "at_ms": 123.5, "attrs": {}})
        record = span.to_record(origin=0.0)
        assert record["events"][0]["at_ms"] == 123.5

    def test_to_record_default_matches_end_without_tracer(self):
        # The raw dataclass path (no tracer stamping) must agree with the
        # tracer-stamped convention: span end, not span start.
        span = Span(name="w", span_id=1, parent_id=None, start=1.0, end=1.25)
        span.events.append({"name": "e", "attrs": {}})
        record = span.to_record(origin=0.0)
        assert record["events"][0]["at_ms"] == record["end_ms"]


# ======================================================================
# Trace context: ids, activation, propagation semantics
# ======================================================================
class TestTraceContext:
    def test_root_span_allocates_trace_id(self):
        tracer = _tracer()
        with tracer.span("root") as span:
            assert span.trace_id != 0
            assert span.remote is False
        record = tracer.event_log.records()[-1]
        assert record["trace"] == span.trace_id
        assert "remote" not in record

    def test_nested_span_inherits_trace(self):
        tracer = _tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert inner.remote is False

    def test_current_context_prefers_live_span(self):
        tracer = _tracer()
        assert tracer.current_context() is None
        with tracer.span("outer") as span:
            context = tracer.current_context()
            assert context == TraceContext(span.trace_id, span.span_id)

    def test_activate_resumes_remote_trace(self):
        tracer = _tracer()
        remote = TraceContext(trace_id=0xDEAD, span_id=42)
        with tracer.activate(remote):
            assert tracer.current_context() == remote
            with tracer.span("resumed") as span:
                assert span.trace_id == 0xDEAD
                assert span.parent_id == 42
                assert span.remote is True
        assert tracer.current_context() is None
        record = tracer.event_log.records()[-1]
        assert record["remote"] is True
        assert record["trace"] == 0xDEAD

    def test_local_parent_wins_over_activated_context(self):
        tracer = _tracer()
        with tracer.activate(TraceContext(trace_id=5, span_id=1)):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    assert inner.trace_id == outer.trace_id == 5
                    assert inner.parent_id == outer.span_id
                    assert inner.remote is False
                    assert outer.remote is True

    def test_activate_none_deactivates(self):
        tracer = _tracer()
        with tracer.activate(TraceContext(trace_id=5)):
            with tracer.activate(None):
                with tracer.span("fresh") as span:
                    assert span.trace_id != 5
                    assert span.remote is False

    def test_trace_ids_deterministic_under_reset(self):
        tracer = _tracer(trace_seed=7)
        first = [tracer.allocate_trace_id() for __ in range(4)]
        tracer.reset()
        second = [tracer.allocate_trace_id() for __ in range(4)]
        assert first == second
        assert len(set(first)) == 4
        assert all(0 <= t < 2**64 for t in first)

    def test_trace_ids_differ_by_seed(self):
        assert _tracer(1).allocate_trace_id() != _tracer(2).allocate_trace_id()

    def test_span_to_context_round_trip(self):
        tracer = _tracer()
        with tracer.span("w") as span:
            context = span.to_context()
        assert context.trace_id == span.trace_id
        assert context.span_id == span.span_id


# ======================================================================
# Labeled (dimensional) metrics
# ======================================================================
class TestLabeledMetrics:
    def test_labeled_name_sorts_keys(self):
        assert (
            labeled_name("gateway.ok", {"tenant": "a", "mode": "batched"})
            == "gateway.ok{mode=batched,tenant=a}"
        )
        assert labeled_name("gateway.ok", {}) == "gateway.ok"

    def test_parse_labeled_name_round_trip(self):
        series = labeled_name("x.y", {"tenant": "alpha", "mode": "serial"})
        base, labels = parse_labeled_name(series)
        assert base == "x.y"
        assert labels == {"tenant": "alpha", "mode": "serial"}
        assert parse_labeled_name("bare") == ("bare", {})

    def test_counter_records_base_and_labeled(self):
        registry = MetricsRegistry()
        registry.add("gateway.ok", labels={"tenant": "alpha"})
        registry.add("gateway.ok", labels={"tenant": "beta"})
        registry.add("gateway.ok")
        counters = registry.snapshot().counters
        assert counters["gateway.ok"] == 3
        assert counters["gateway.ok{tenant=alpha}"] == 1
        assert counters["gateway.ok{tenant=beta}"] == 1

    def test_histogram_records_base_and_labeled(self):
        registry = MetricsRegistry()
        registry.observe("lat", 5.0, labels={"tenant": "alpha"})
        registry.observe("lat", 7.0)
        histograms = registry.snapshot().histograms
        assert histograms["lat"].count == 2
        assert histograms["lat{tenant=alpha}"].count == 1

    def test_gauge_records_base_and_labeled(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3, labels={"tenant": "alpha"})
        gauges = registry.snapshot().gauges
        assert gauges["depth"] == 3
        assert gauges["depth{tenant=alpha}"] == 3


# ======================================================================
# Wire-level trace context (hypothesis round-trip over FrameDecoder)
# ======================================================================
class TestWireTraceContext:
    @settings(max_examples=60, deadline=None)
    @given(
        trace=st.integers(min_value=0, max_value=2**64 - 1),
        parent=st.one_of(
            st.none(), st.integers(min_value=0, max_value=2**63)
        ),
        chunk=st.integers(min_value=1, max_value=7),
    )
    def test_round_trip_through_torn_frames(self, trace, parent, chunk):
        payload = protocol.request(
            "query",
            request_id=1,
            tenant="alpha",
            **protocol.trace_fields(trace, parent),
        )
        stream = encode_frame(payload)
        decoder = FrameDecoder()
        decoded: list[dict] = []
        for start in range(0, len(stream), chunk):
            decoded.extend(decoder.feed(stream[start:start + chunk]))
        assert len(decoded) == 1
        assert protocol.parse_trace(decoded[0]) == (trace, parent)

    @settings(max_examples=30, deadline=None)
    @given(chunk=st.integers(min_value=1, max_value=7))
    def test_context_less_frames_stay_compatible(self, chunk):
        # The pre-trace wire shape must decode and parse as "no context".
        payload = protocol.request("ping", request_id=9, tenant=None)
        assert "trace" not in payload
        stream = encode_frame(payload)
        decoder = FrameDecoder()
        decoded: list[dict] = []
        for start in range(0, len(stream), chunk):
            decoded.extend(decoder.feed(stream[start:start + chunk]))
        assert protocol.parse_trace(decoded[0]) is None

    def test_trace_fields_omit_parent_without_trace(self):
        assert protocol.trace_fields(None, 5) == {}
        assert protocol.trace_fields(7) == {"trace": 7}

    @pytest.mark.parametrize(
        "payload",
        [
            {"trace": "bogus"},
            {"trace": True},
            {"trace": 1.5},
            {"trace": 7, "parent_span": "x"},
            {"trace": 7, "parent_span": False},
        ],
    )
    def test_malformed_trace_rejected(self, payload):
        with pytest.raises(ProtocolError):
            protocol.parse_trace(payload)

    def test_gateway_rejects_malformed_trace(self, gateway_factory):
        __, address = gateway_factory(["alpha"])
        with GatewayClient(*address, tenant="alpha") as client:
            with pytest.raises(GatewayRequestError) as excinfo:
                client.call(
                    versioned(
                        {"id": 1, "op": "ping", "trace": "not-an-int"}
                    )
                )
        assert excinfo.value.code == "bad_request"


# ======================================================================
# SLO monitor
# ======================================================================
class _FixedClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def now(self) -> float:
        return self.t


class TestSloMonitor:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            SloPolicy(availability_target=1.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(latency_target=0.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(latency_threshold_ms=-1.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(burn_windows_s=())

    def test_availability_and_budgets_from_labeled_counters(self):
        registry = MetricsRegistry()
        for __ in range(97):
            registry.add("gateway.ok", labels={"tenant": "alpha"})
        for __ in range(2):
            registry.add("gateway.shed", labels={"tenant": "alpha"})
        registry.add("gateway.timeout", labels={"tenant": "alpha"})
        monitor = SloMonitor(
            policy=SloPolicy(availability_target=0.95),
            registry=registry,
            clock=_FixedClock(),
        )
        report = monitor.report()
        slo = report.tenants["alpha"]
        assert slo.requests == 100
        assert slo.good == 97
        assert slo.bad == {"shed": 2, "timeout": 1}
        assert slo.availability == pytest.approx(0.97)
        # 3% bad against a 5% allowance: 40% of the budget remains.
        assert slo.availability_budget_remaining == pytest.approx(0.4)
        assert report.healthy

    def test_exhausted_budget_is_unhealthy(self):
        registry = MetricsRegistry()
        registry.add("gateway.ok", labels={"tenant": "alpha"})
        registry.add("gateway.shed", labels={"tenant": "alpha"})
        monitor = SloMonitor(registry=registry, clock=_FixedClock())
        report = monitor.report()
        assert report.tenants["alpha"].availability_budget_remaining < 0
        assert not report.healthy

    def test_latency_compliance_from_histogram_buckets(self):
        registry = MetricsRegistry()
        for __ in range(9):
            registry.add("gateway.ok", labels={"tenant": "alpha"})
            registry.observe(
                "gateway.latency_ms", 1.0, labels={"tenant": "alpha"}
            )
        registry.add("gateway.ok", labels={"tenant": "alpha"})
        registry.observe(
            "gateway.latency_ms", 5000.0, labels={"tenant": "alpha"}
        )
        monitor = SloMonitor(
            policy=SloPolicy(latency_threshold_ms=50.0, latency_target=0.8),
            registry=registry,
            clock=_FixedClock(),
        )
        slo = monitor.report().tenants["alpha"]
        assert slo.latency_count == 10
        assert slo.latency_within == 9
        assert slo.latency_compliance == pytest.approx(0.9)
        assert slo.latency_budget_remaining == pytest.approx(0.5)

    def test_burn_rates_windowed(self):
        registry = MetricsRegistry()
        clock = _FixedClock(0.0)
        monitor = SloMonitor(
            policy=SloPolicy(
                availability_target=0.9, burn_windows_s=(10.0, 1000.0)
            ),
            registry=registry,
            clock=clock,
        )
        for __ in range(10):
            registry.add("gateway.ok", labels={"tenant": "alpha"})
        monitor.sample()
        clock.t = 5.0
        # 5 more requests, 2 of them bad: windowed bad fraction 0.4
        # against a 0.1 allowance = burn rate 4.
        for __ in range(3):
            registry.add("gateway.ok", labels={"tenant": "alpha"})
        registry.add("gateway.shed", labels={"tenant": "alpha"})
        registry.add("gateway.timeout", labels={"tenant": "alpha"})
        report = monitor.report()
        burn = report.tenants["alpha"].burn_rates
        assert burn["10s"] == pytest.approx(4.0)
        assert burn["1000s"] == pytest.approx(4.0)

    def test_no_traffic_burn_rate_is_none(self):
        registry = MetricsRegistry()
        registry.add("gateway.ok", labels={"tenant": "alpha"})
        monitor = SloMonitor(registry=registry, clock=_FixedClock())
        monitor.sample()
        report = monitor.report()  # no delta since the sample
        assert all(
            rate is None
            for rate in report.tenants["alpha"].burn_rates.values()
        )

    def test_report_round_trips_through_dict(self):
        registry = MetricsRegistry()
        registry.add("gateway.ok", labels={"tenant": "alpha"})
        registry.add("gateway.shed", labels={"tenant": "beta"})
        monitor = SloMonitor(registry=registry, clock=_FixedClock())
        report = monitor.report()
        rebuilt = SloReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.render() == report.render()

    def test_render_lists_tenants(self):
        registry = MetricsRegistry()
        registry.add("gateway.ok", labels={"tenant": "alpha"})
        monitor = SloMonitor(registry=registry, clock=_FixedClock())
        text = monitor.report().render()
        assert "alpha" in text
        assert "availability target" in text

    def test_unlabeled_counters_are_ignored(self):
        registry = MetricsRegistry()
        registry.add("gateway.ok")
        registry.add("other.ok", labels={"tenant": "alpha"})
        monitor = SloMonitor(registry=registry, clock=_FixedClock())
        assert monitor.report().tenants == {}


# ======================================================================
# Query-mix profiler
# ======================================================================
def _synthetic_records() -> list[dict]:
    return [
        {
            "type": "span", "id": 1, "trace": 10, "parent": None,
            "name": "gateway.request", "attrs": {"tenant": "acme"},
        },
        {
            "type": "span", "id": 2, "trace": 10, "parent": 1,
            "name": "service.request", "attrs": {}, "remote": True,
        },
        {
            "type": "span", "id": 3, "trace": 10, "parent": 2,
            "name": "query.execute",
            "attrs": {
                "query": "<1, *>", "qualified": 4,
                "buckets_per_device": [1, 1, 1, 1],
            },
        },
        {
            "type": "span", "id": 4, "trace": 10, "parent": 2,
            "name": "query.batch",
            "attrs": {
                "per_query": [
                    {
                        "query": "<*, 2>", "qualified": 4,
                        "buckets_per_device": [1, 1, 1, 1],
                    },
                    {
                        "query": "<1, 2>", "qualified": 1,
                        "buckets_per_device": [1, 0, 0, 0],
                    },
                ]
            },
        },
        {
            "type": "span", "id": 5, "trace": 11, "parent": None,
            "name": "query.execute",
            "attrs": {
                "query": "<*, *>", "qualified": 16,
                "buckets_per_device": [4, 4, 4, 4],
            },
        },
    ]


class TestQueryMixProfiler:
    def test_pattern_of(self):
        assert pattern_of("<1, *, 3>") == "1*1"
        assert pattern_of("<*, *>") == "**"
        assert pattern_of("<0, 0>") == "11"

    def test_pattern_of_query_agrees_with_describe(self):
        fs = FileSystem.of(*FIELDS, m=DEVICES)
        query = PartialMatchQuery.from_dict(fs, {0: 1})
        assert pattern_of_query(query) == pattern_of(query.describe())

    def test_resolve_tenant_walks_to_gateway_span(self):
        records = _synthetic_records()
        index = span_index(records)
        assert resolve_tenant(records[2], index) == "acme"
        assert resolve_tenant(records[4], index) == ""

    def test_resolve_tenant_survives_cycles(self):
        loop = [
            {"type": "span", "id": 1, "trace": 1, "parent": 2,
             "name": "a", "attrs": {}},
            {"type": "span", "id": 2, "trace": 1, "parent": 1,
             "name": "b", "attrs": {}},
        ]
        assert resolve_tenant(loop[0], span_index(loop)) == ""

    def test_resolve_tenant_cycle_guard_keys_on_trace_and_id(self):
        """Regression: the cycle guard keyed on span id alone.

        Merged multi-run exports legitimately reuse span ids across
        traces.  Here the walk passes through two spans that share id 9
        but live in different traces (the index, hand-merged the way a
        multi-export aggregation would build it, maps (1, 5) to a record
        whose own trace is 2) — an id-only guard mistook the reuse for a
        cycle and never reached the tenanted ancestor."""
        start = {"type": "span", "id": 9, "trace": 1, "parent": 5,
                 "name": "query.execute", "attrs": {}}
        middle = {"type": "span", "id": 9, "trace": 2, "parent": 7,
                  "name": "stage", "attrs": {}}
        gateway = {"type": "span", "id": 7, "trace": 2, "parent": None,
                   "name": "gateway.request", "attrs": {"tenant": "acme"}}
        index = {(1, 5): middle, (2, 7): gateway}
        assert resolve_tenant(start, index) == "acme"

    def test_from_records_attributes_per_tenant(self):
        profile = QueryMixProfile.from_records(_synthetic_records())
        assert profile.observed == 4
        acme = profile.tenant("acme")
        assert acme.patterns == {"1*": 1, "*1": 1, "11": 1}
        assert profile.tenant("").patterns == {"**": 1}
        assert acme.frequencies() == {
            "*1": pytest.approx(1 / 3),
            "11": pytest.approx(1 / 3),
            "1*": pytest.approx(1 / 3),
        }

    def test_json_round_trip_and_byte_identity(self):
        profile = QueryMixProfile.from_records(_synthetic_records())
        text = profile.to_json()
        again = QueryMixProfile.from_records(_synthetic_records())
        assert again.to_json() == text
        rebuilt = QueryMixProfile.from_json(text)
        assert rebuilt.to_json() == text
        assert rebuilt.tenant("acme").patterns == profile.tenant(
            "acme"
        ).patterns

    def test_from_dict_rejects_wrong_type(self):
        with pytest.raises(ReproError):
            QueryMixProfile.from_dict(versioned({"type": "metrics"}))

    def test_from_dict_rejects_wrong_version(self):
        with pytest.raises(ReproError):
            QueryMixProfile.from_dict({"v": 999, "type": "profile"})

    @staticmethod
    def _profile_dict(count, observed):
        return versioned(
            {
                "type": "profile",
                "observed": observed,
                "tenants": {
                    "acme": {
                        "tenant": "acme",
                        "queries": observed,
                        "patterns": {"1*": count},
                    }
                },
            }
        )

    @pytest.mark.parametrize("count", [-1, 2.5, "3", True, None])
    def test_from_dict_rejects_malformed_counts(self, count):
        """Regression: negative, fractional, boolean and string counts
        were silently accepted and corrupted frequencies()."""
        with pytest.raises(ReproError):
            QueryMixProfile.from_dict(self._profile_dict(count, 1))

    @pytest.mark.parametrize("observed", [-1, 2.5, True])
    def test_from_dict_rejects_malformed_observed_total(self, observed):
        with pytest.raises(ReproError):
            QueryMixProfile.from_dict(self._profile_dict(1, observed))

    def test_from_dict_rejects_inconsistent_observed_total(self):
        """Regression: `observed` disagreeing with the summed pattern
        counts was silently accepted."""
        with pytest.raises(ReproError):
            QueryMixProfile.from_dict(self._profile_dict(2, 5))

    def test_from_dict_rejects_malformed_pattern(self):
        data = self._profile_dict(1, 1)
        data["tenants"]["acme"]["patterns"] = {"1x": 1}
        with pytest.raises(ReproError):
            QueryMixProfile.from_dict(data)

    def test_validated_round_trip_preserves_counts(self):
        data = self._profile_dict(3, 3)
        profile = QueryMixProfile.from_dict(data)
        assert profile.observed == 3
        assert profile.tenant("acme").patterns == {"1*": 3}
        assert QueryMixProfile.from_json(profile.to_json()).to_json() == (
            profile.to_json()
        )


# ======================================================================
# Tenant-attributed trace audit
# ======================================================================
class TestTraceAudit:
    def test_clean_audit(self):
        report = ObservedOptimalityChecker.audit_trace(_synthetic_records())
        assert report.queries == 4
        assert report.all_strict_optimal
        assert report.tenants == ["", "acme"]

    def test_violation_attributed_to_tenant(self):
        records = _synthetic_records()
        # Skew one observation past the bound: qualified 4 over 4 devices
        # allows at most ceil(4/4)=1 bucket per device.
        records[2]["attrs"]["buckets_per_device"] = [4, 0, 0, 0]
        report = ObservedOptimalityChecker.audit_trace(records)
        assert not report.all_strict_optimal
        [violation] = report.violations
        assert violation.tenant == "acme"
        assert violation.observed_max == 4
        assert violation.bound == 1
        assert report.violations_by_tenant() == {"acme": [violation]}
        assert report.to_dict()["violations"][0]["tenant"] == "acme"

    def test_entries_without_observations_skipped(self):
        records = [
            {"type": "span", "id": 1, "trace": 1, "parent": None,
             "name": "query.execute", "attrs": {"query": "<1, *>"}},
        ]
        report = ObservedOptimalityChecker.audit_trace(records)
        assert report.queries == 0


# ======================================================================
# Loopback propagation: one trace tree across the wire
# ======================================================================
class TestLoopbackPropagation:
    def test_every_service_span_carries_gateway_trace(self, gateway_factory):
        gateway, address = gateway_factory()
        spec = GatewayLoadSpec(
            connections_per_tenant=3,
            requests_per_connection=12,
            seed=3,
            write_every=5,
            batch_every=4,
            preload=4,
        )
        report = run_loopback_load(
            address, list(gateway.tenants.values()), spec
        )
        assert not report.errors
        assert gateway.drain()
        spans = _span_records()
        index = span_index(spans)
        roots = [s for s in spans if s["name"] == "gateway.request"]
        gateway_traces = {s["trace"] for s in roots}
        assert roots and all(s["parent"] is None for s in roots)

        service_spans = [s for s in spans if s["name"] == "service.request"]
        assert service_spans
        for span in service_spans:
            assert span["trace"] in gateway_traces
            assert span["remote"] is True

        query_spans = [
            s for s in spans
            if s["name"] in ("query.execute", "query.batch")
        ]
        assert query_spans
        reachable = sum(
            1 for s in query_spans if _reachable_from_gateway(s, index)
        )
        assert reachable / len(query_spans) >= 0.95

        span_ids = [s["id"] for s in spans]
        assert len(span_ids) == len(set(span_ids))

    def test_client_trace_ids_deterministic_per_seed(self, gateway_factory):
        def stamped_traces() -> set[int]:
            obs.reset_telemetry()
            gateway, address = gateway_factory(["alpha"])
            report = run_loopback_load(
                address,
                list(gateway.tenants.values()),
                GatewayLoadSpec(
                    connections_per_tenant=2,
                    requests_per_connection=5,
                    seed=11,
                ),
            )
            assert not report.errors
            assert gateway.drain()
            return {
                s["trace"]
                for s in _span_records()
                if s["name"] == "gateway.request"
            }

        assert stamped_traces() == stamped_traces()

    def test_activated_context_propagates_from_local_span(
        self, gateway_factory
    ):
        __, address = gateway_factory(["alpha"])
        with GatewayClient(*address, tenant="alpha") as client:
            with trace_span("caller.request") as caller:
                assert client.ping()
        spans = _span_records()
        [request] = [s for s in spans if s["name"] == "gateway.request"]
        assert request["trace"] == caller.trace_id
        assert request["parent"] == caller.span_id
        assert request["remote"] is True

    def test_obs_wire_op_serves_live_snapshot(self, gateway_factory):
        gateway, address = gateway_factory()
        report = run_loopback_load(
            address,
            list(gateway.tenants.values()),
            GatewayLoadSpec(
                connections_per_tenant=2, requests_per_connection=8, seed=1
            ),
        )
        assert not report.errors
        with GatewayClient(*address, tenant="alpha") as client:
            snapshot = client.obs()
        assert gateway.drain()
        counters = snapshot["metrics"]["counters"]
        for tenant in ("alpha", "beta"):
            assert counters[f"gateway.ok{{tenant={tenant}}}"] > 0
            slo = snapshot["slo"]["tenants"][tenant]
            assert slo["requests"] > 0
            assert slo["availability"] == 1.0
        rebuilt = SloReport.from_dict(snapshot["slo"])
        assert rebuilt.healthy

    def test_obs_op_needs_no_tenant(self, gateway_factory):
        __, address = gateway_factory(["alpha"])
        with GatewayClient(*address) as client:
            snapshot = client.obs()
        assert "metrics" in snapshot and "slo" in snapshot

    def test_mode_labeled_service_latency(self, gateway_factory):
        gateway, address = gateway_factory(["alpha"])
        report = run_loopback_load(
            address,
            list(gateway.tenants.values()),
            GatewayLoadSpec(
                connections_per_tenant=1,
                requests_per_connection=8,
                seed=2,
                batch_every=2,
            ),
        )
        assert not report.errors
        assert gateway.drain()
        histograms = telemetry().metrics.snapshot().histograms
        modes = {
            parse_labeled_name(series)[1].get("mode")
            for series in histograms
            if series.startswith("service.latency_ms{")
        }
        assert "batched" in modes


# ======================================================================
# Profiler exactness over a deterministic wire workload
# ======================================================================
class TestProfilerExactness:
    def _expected_patterns(self, spec: GatewayLoadSpec) -> dict[str, int]:
        fs = FileSystem.of(*FIELDS, m=DEVICES)
        expected: dict[str, int] = {}

        def count(specified):
            query = PartialMatchQuery.from_dict(fs, dict(specified))
            pattern = pattern_of_query(query)
            expected[pattern] = expected.get(pattern, 0) + 1

        for connection in range(spec.connections_per_tenant):
            for kind, payload in _connection_ops(
                fs, "gamma", connection, spec
            ):
                if kind == "query":
                    count(payload)
                elif kind == "batch":
                    for specified in payload:
                        count(specified)
        return expected

    def _profile_json(self, gateway_factory, spec: GatewayLoadSpec) -> str:
        obs.configure(clock=ManualClock(step=0.001), reset=True)
        gateway, address = gateway_factory(
            # No cache and no coalescing: every wire query must reach the
            # executor, so the profile observes the generator stream 1:1.
            {"gamma": {"service": {"cache_capacity": None,
                                   "coalesce": False}}}
        )
        report = run_loopback_load(
            address, list(gateway.tenants.values()), spec
        )
        assert not report.errors
        assert gateway.drain()
        profile = QueryMixProfile.from_records(telemetry().export_records())
        assert set(profile.tenants) == {"gamma"}
        return profile.to_json()

    def test_profile_matches_generator_exactly(self, gateway_factory):
        # Deliberately skewed mix: 60% of queries drawn from a 2-query
        # hot pool, the rest from the seeded workload stream.
        spec = GatewayLoadSpec(
            connections_per_tenant=2,
            requests_per_connection=15,
            seed=5,
            batch_every=4,
            batch_size=3,
            write_every=5,
            hot_fraction=0.6,
            hot_pool=2,
        )
        text = self._profile_json(gateway_factory, spec)
        profile = QueryMixProfile.from_json(text)
        assert profile.tenant("gamma").patterns == self._expected_patterns(
            spec
        )
        # Byte-identical across two full wire runs.
        assert self._profile_json(gateway_factory, spec) == text


# ======================================================================
# Coalesced followers link to their leader's span
# ======================================================================
class TestCoalescedFollowerLinks:
    def test_follower_span_links_leader(self):
        from repro.api import make_service

        service = make_service(
            "fx", fields=FIELDS, devices=DEVICES, cache_capacity=None
        )
        for i in range(4):
            service.insert((i, i))
        query = service.file.query({0: 1})

        release = threading.Event()
        original = service._fetch

        def slow_fetch(q):
            release.wait(timeout=5.0)
            return original(q)

        service._fetch = slow_fetch
        try:
            futures = [service.submit(query) for __ in range(3)]
            # Let followers pile onto the leader's in-flight entry.
            deadline = 100
            while deadline and not service._inflight:
                deadline -= 1
                time.sleep(0.01)
            time.sleep(0.05)
            release.set()
            results = [f.result(timeout=5.0) for f in futures]
        finally:
            service._fetch = original
            service.shutdown()
        assert sum(1 for r in results if r.coalesced) >= 1
        spans = _span_records()
        followers = [
            s for s in spans
            if s["name"] == "service.request"
            and "leader_trace" in s["attrs"]
        ]
        assert followers
        leader_traces = {s["attrs"]["leader_trace"] for s in followers}
        request_traces = {
            s["trace"] for s in spans if s["name"] == "service.request"
        }
        assert leader_traces <= request_traces


# ======================================================================
# CLI surface
# ======================================================================
class TestObservabilityCli:
    def test_obs_slo_json(self, capsys):
        assert main([
            "obs", "slo", "--fields", "4,4", "--devices", "4",
            "--connections", "1", "--requests", "6", "--json",
        ]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["healthy"] is True
        for tenant in ("alpha", "beta"):
            assert data["tenants"][tenant]["requests"] > 0
            assert data["tenants"][tenant]["availability"] == 1.0

    def test_obs_slo_burned_budget_fails(self, capsys):
        assert main([
            "obs", "slo", "--fields", "4,4", "--devices", "4",
            "--connections", "2", "--requests", "10", "--quota", "8",
        ]) == 1
        out = capsys.readouterr().out
        assert "SLO report" in out

    def test_obs_export_trace_id_filter(self, capsys, tmp_path):
        assert main([
            "obs", "export", "--fields", "4,4", "--devices", "4",
            "--queries", "4", "--deterministic-clock",
        ]) == 0
        import json

        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        target = next(
            r["trace"] for r in lines
            if r.get("type") == "span" and r["name"] == "query.execute"
        )
        assert main([
            "obs", "export", "--fields", "4,4", "--devices", "4",
            "--queries", "4", "--deterministic-clock",
            "--trace-id", str(target),
        ]) == 0
        filtered = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert filtered
        assert all(r["trace"] == target for r in filtered)

    def test_obs_tail_tenant_filter_excludes_untenanted(self, capsys):
        assert main([
            "obs", "tail", "--fields", "4,4", "--devices", "4",
            "--queries", "4", "--tenant", "nosuch",
        ]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_gateway_export_jsonl_reachability(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main([
            "gateway", "--fields", "4,4", "--devices", "4",
            "--connections", "2", "--requests", "8",
            "--export-jsonl", str(path),
        ]) == 0
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        spans = [r for r in records if r.get("type") == "span"]
        index = span_index(spans)
        query_spans = [
            s for s in spans
            if s["name"] in ("query.execute", "query.batch")
        ]
        assert query_spans
        reachable = sum(
            1 for s in query_spans if _reachable_from_gateway(s, index)
        )
        assert reachable / len(query_spans) >= 0.95
