"""Tests for the CPU cycle cost model (paper section 5.2.2)."""

import pytest

from repro.analysis.cpu_cost import CYCLE_TABLES, CpuCostModel
from repro.core.fx import FXDistribution
from repro.core.transforms import make_transform
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem


MC68000 = CpuCostModel.for_processor("mc68000")
FS6 = FileSystem.uniform(6, 8, m=32)


class TestInstructionCosts:
    def test_mc68000_values_match_paper(self):
        costs = CYCLE_TABLES["mc68000"]
        assert costs.xor == 8
        assert costs.add == 4
        assert costs.and_ == 4
        assert costs.mul == 70
        assert costs.shift(3) == 6 + 2 * 3  # "n bit shift takes 6 + 2n"

    def test_negative_shift_rejected(self):
        with pytest.raises(AnalysisError):
            CYCLE_TABLES["mc68000"].shift(-1)

    def test_unknown_processor(self):
        with pytest.raises(AnalysisError):
            CpuCostModel.for_processor("z80")


class TestTransformCycles:
    def test_identity_free(self):
        assert MC68000.transform_cycles(make_transform("I", 8, 32)) == 0

    def test_u_is_one_shift(self):
        # d1 = 4 -> 2-bit shift -> 10 cycles.
        assert MC68000.transform_cycles(make_transform("U", 8, 32)) == 10

    def test_iu1_is_shift_plus_xor(self):
        assert MC68000.transform_cycles(make_transform("IU1", 8, 32)) == 10 + 8

    def test_iu2_with_active_d2(self):
        t = make_transform("IU2", 2, 16)  # d1 = 8, d2 = 4
        expected = (6 + 2 * 3) + 8 + (6 + 2 * 2) + 8
        assert MC68000.transform_cycles(t) == expected

    def test_iu2_collapsed_costs_like_iu1(self):
        collapsed = make_transform("IU2", 8, 16)  # d2 == 0
        iu1 = make_transform("IU1", 8, 16)
        assert MC68000.transform_cycles(collapsed) == MC68000.transform_cycles(iu1)


class TestAddressCycles:
    def test_modulo_is_adds_plus_and(self):
        assert MC68000.address_cycles(ModuloDistribution(FS6)) == 5 * 4 + 4

    def test_gdm_uses_multiplies(self):
        gdm = GDMDistribution.preset(FS6, "GDM1")
        assert MC68000.address_cycles(gdm) == 6 * 70 + 5 * 4 + 4

    def test_fx_about_a_third_of_gdm(self):
        """The paper's headline claim for the MC68000."""
        fx = FXDistribution(FS6)
        gdm = GDMDistribution.preset(FS6, "GDM1")
        ratio = MC68000.ratio(fx, gdm)
        assert ratio < 0.40

    def test_modulo_cheapest(self):
        fx = FXDistribution(FS6)
        modulo = ModuloDistribution(FS6)
        assert MC68000.address_cycles(modulo) < MC68000.address_cycles(fx)

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            MC68000.address_cycles(RandomDistribution(FS6))


class TestInverseStepCycles:
    def test_fx_cheaper_than_gdm(self):
        fx = FXDistribution(FS6)
        gdm = GDMDistribution.preset(FS6, "GDM1")
        assert MC68000.inverse_step_cycles(fx) < MC68000.inverse_step_cycles(gdm)

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            MC68000.inverse_step_cycles(RandomDistribution(FS6))


class TestCpuComparisonTable:
    def test_rows_and_rendering(self):
        from repro.experiments.cpu_table import cpu_comparison, render_cpu_table

        rows = cpu_comparison("mc68000")
        assert len(rows) == 2
        assert all(row.fx_to_gdm < 0.5 for row in rows)
        text = render_cpu_table("mc68000")
        assert "MC68000" in text
        assert "FX/GDM" in text
