"""Tests for the B-tree and its bucket-store adapter.

The heavy lifting is a hypothesis model test: arbitrary interleavings of
inserts and deletes are mirrored into a dict-of-lists model; after every
batch the tree must agree with the model on content, order and range
queries, and pass its own structural invariant check.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.storage.btree import BTree
from repro.storage.btree_store import BTreeBucketStore


class TestBasics:
    def test_min_degree_validated(self):
        with pytest.raises(ConfigurationError):
            BTree(t=1)

    def test_empty_tree(self):
        tree = BTree(t=2)
        assert len(tree) == 0
        assert tree.get(1) == ()
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_insert_and_get(self):
        tree = BTree(t=2)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == ("a", "b")
        assert len(tree) == 2
        assert tree.key_count == 1

    def test_items_sorted(self):
        tree = BTree(t=2)
        for k in [9, 2, 7, 4, 1, 8, 3, 6, 5, 0]:
            tree.insert(k, k)
        assert [k for k, __ in tree.items()] == list(range(10))
        tree.check_invariants()

    def test_range_half_open(self):
        tree = BTree(t=2)
        for k in range(10):
            tree.insert(k, k)
        assert [k for k, __ in tree.range(3, 7)] == [3, 4, 5, 6]
        assert [k for k, __ in tree.range(100, 200)] == []

    def test_contains(self):
        tree = BTree(t=3)
        tree.insert("x", 1)
        assert "x" in tree
        assert "y" not in tree

    def test_height_grows_logarithmically(self):
        tree = BTree(t=2)
        for k in range(100):
            tree.insert(k, k)
        assert tree.height() <= 7  # 2t-1 = 3 keys/node -> height <= log2(100)
        tree.check_invariants()

    def test_delete_missing_pair(self):
        tree = BTree(t=2)
        tree.insert(1, "a")
        assert not tree.delete(1, "b")
        assert not tree.delete(2, "a")
        assert len(tree) == 1

    def test_delete_one_of_many_values(self):
        tree = BTree(t=2)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a")
        assert tree.get(1) == ("b",)
        assert tree.key_count == 1

    def test_delete_last_value_removes_key(self):
        tree = BTree(t=2)
        tree.insert(1, "a")
        assert tree.delete(1, "a")
        assert 1 not in tree
        assert tree.key_count == 0
        tree.check_invariants()

    def test_delete_everything_sequential(self):
        tree = BTree(t=2)
        keys = list(range(50))
        for k in keys:
            tree.insert(k, k)
        for k in keys:
            assert tree.delete(k, k)
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_everything_reverse(self):
        tree = BTree(t=3)
        keys = list(range(60))
        for k in keys:
            tree.insert(k, k)
        for k in reversed(keys):
            assert tree.delete(k, k)
        tree.check_invariants()
        assert len(tree) == 0


@st.composite
def operation_sequences(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(0, 30),
                st.integers(0, 3),
            ),
            max_size=150,
        )
    )
    t = draw(st.sampled_from([2, 3, 5]))
    return t, ops


class TestModelBased:
    @given(operation_sequences())
    @settings(max_examples=80, deadline=None)
    def test_tree_matches_dict_model(self, case):
        t, ops = case
        tree = BTree(t=t)
        model: dict[int, list[int]] = {}
        for op, key, value in ops:
            if op == "insert":
                tree.insert(key, value)
                model.setdefault(key, []).append(value)
            else:
                expected = key in model and value in model[key]
                assert tree.delete(key, value) == expected
                if expected:
                    model[key].remove(value)
                    if not model[key]:
                        del model[key]
        tree.check_invariants()
        assert len(tree) == sum(len(v) for v in model.values())
        assert tree.key_count == len(model)
        assert [k for k, __ in tree.items()] == sorted(model)
        for key, values in model.items():
            assert sorted(tree.get(key)) == sorted(values)

    @given(operation_sequences(), st.integers(0, 30), st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_range_matches_model(self, case, low, high):
        t, ops = case
        tree = BTree(t=t)
        model: dict[int, list[int]] = {}
        for op, key, value in ops:
            if op == "insert":
                tree.insert(key, value)
                model.setdefault(key, []).append(value)
            elif key in model and value in model[key]:
                tree.delete(key, value)
                model[key].remove(value)
                if not model[key]:
                    del model[key]
        got = [k for k, __ in tree.range(low, high)]
        assert got == sorted(k for k in model if low <= k < high)


class TestBTreeBucketStore:
    def test_bucketstore_interface_parity(self):
        """Same behaviour as the hash-directory store on a shared script."""
        from repro.storage.bucket_store import BucketStore

        stores = [BucketStore(), BTreeBucketStore(t=2)]
        script = [
            ("insert", (0, 1), "a"),
            ("insert", (0, 1), "b"),
            ("insert", (2, 3), "c"),
            ("delete", (0, 1), "a"),
            ("delete", (9, 9), "zzz"),
        ]
        for store in stores:
            for op, bucket, record in script:
                if op == "insert":
                    store.insert(bucket, record)
                else:
                    store.delete(bucket, record)
        a, b = stores
        assert a.record_count == b.record_count == 2
        assert a.bucket_count == b.bucket_count == 2
        assert a.records_in((0, 1)) == b.records_in((0, 1)) == ("b",)
        assert sorted(a.buckets()) == sorted(b.buckets())
        b.check_invariants()

    def test_ordered_bucket_iteration(self):
        store = BTreeBucketStore(t=2)
        for bucket in [(3, 0), (1, 2), (2, 1), (1, 0)]:
            store.insert(bucket, "x")
        assert list(store.buckets()) == [(1, 0), (1, 2), (2, 1), (3, 0)]

    def test_range_records(self):
        store = BTreeBucketStore(t=2)
        for i in range(6):
            store.insert((i, 0), f"r{i}")
        scanned = list(store.range_records((2, 0), (5, 0)))
        assert [bucket for bucket, __ in scanned] == [(2, 0), (3, 0), (4, 0)]

    def test_clear(self):
        store = BTreeBucketStore()
        store.insert((1, 1), "x")
        store.clear()
        assert store.record_count == 0

    def test_plugs_into_partitioned_file(self):
        from repro.core.fx import FXDistribution
        from repro.hashing.fields import FileSystem
        from repro.storage.parallel_file import PartitionedFile

        fs = FileSystem.of(4, 8, m=4)
        pf = PartitionedFile(
            FXDistribution(fs), store_factory=lambda: BTreeBucketStore(t=4)
        )
        pf.insert_all([(i, f"v{i}") for i in range(60)])
        pf.check_invariants()
        result = pf.search({0: 10})
        assert any(record[0] == 10 for record in result.records)

    def test_height_property(self):
        store = BTreeBucketStore(t=2)
        for i in range(64):
            store.insert((i,), i)
        assert store.height >= 3
