"""Tests for the method advisor, total-time model and trace workloads."""

import pytest

from repro.analysis.cpu_cost import CpuCostModel
from repro.analysis.total_time import TotalTimeModel, total_time_table
from repro.core.fx import FXDistribution
from repro.distribution.advisor import recommend_method
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.errors import AnalysisError, QueryError
from repro.hashing.fields import FileSystem
from repro.query.trace import dump_trace, format_query, load_trace, parse_trace
from repro.query.workload import QueryWorkload, WorkloadSpec


class TestAdvisor:
    def test_fx_wins_on_small_field_systems(self):
        fs = FileSystem.of(4, 4, m=16)
        rec = recommend_method(fs)
        assert rec.best.name == "fx-theorem9"
        assert rec.best.optimal_fraction == 1.0

    def test_candidates_sorted_by_expected_largest(self):
        fs = FileSystem.of(4, 4, 8, m=16)
        rec = recommend_method(fs)
        values = [c.expected_largest for c in rec.candidates]
        assert values == sorted(values)

    def test_search_included_for_four_small_fields(self):
        fs = FileSystem.uniform(4, 4, m=32)
        rec = recommend_method(fs)
        names = {c.name for c in rec.candidates}
        assert "fx-searched" in names
        searched = next(c for c in rec.candidates if c.name == "fx-searched")
        paper = next(c for c in rec.candidates if c.name == "fx-paper")
        assert searched.expected_largest <= paper.expected_largest

    def test_search_excluded_below_threshold(self):
        fs = FileSystem.of(4, 4, m=16)
        names = {c.name for c in recommend_method(fs).candidates}
        assert "fx-searched" not in names

    def test_render(self):
        fs = FileSystem.of(4, 4, m=16)
        text = recommend_method(fs).render()
        assert "fx-theorem9" in text
        assert "E[largest response]" in text

    def test_bad_probability(self):
        with pytest.raises(AnalysisError):
            recommend_method(FileSystem.of(4, 4, m=16), p=2.0)


class TestTotalTimeModel:
    FS = FileSystem.uniform(6, 8, m=32)

    def test_requires_separable(self):
        with pytest.raises(AnalysisError):
            TotalTimeModel(RandomDistribution(self.FS))

    def test_inverse_steps(self):
        model = TotalTimeModel(FXDistribution(self.FS))
        # 3 unspecified fields of size 8: enumerate two, solve one -> 64
        assert model.inverse_steps(frozenset({0, 1, 2})) == 64
        assert model.inverse_steps(frozenset()) == 1

    def test_exact_match_cost_is_address_only_plus_bucket(self):
        fx = FXDistribution(self.FS)
        model = TotalTimeModel(fx, bucket_cycles=0.0)
        cpu = CpuCostModel.for_processor("mc68000")
        expected = cpu.address_cycles(fx) + cpu.inverse_step_cycles(fx)
        assert model.query_cycles(frozenset()) == expected

    def test_fx_beats_gdm_and_gap_grows_with_k(self):
        fx_model = TotalTimeModel(FXDistribution(self.FS))
        gdm_model = TotalTimeModel(GDMDistribution.preset(self.FS, "GDM1"))
        gaps = []
        for k in (1, 2, 3, 4):
            fx_cycles = fx_model.average_cycles(k)
            gdm_cycles = gdm_model.average_cycles(k)
            assert fx_cycles < gdm_cycles
            gaps.append(gdm_cycles - fx_cycles)
        assert gaps == sorted(gaps)  # absolute gap grows with response size

    def test_table_renders(self):
        methods = {
            "FX": FXDistribution(self.FS),
            "Modulo": ModuloDistribution(self.FS),
        }
        text = total_time_table(self.FS, methods, ks=(1, 2))
        assert "MC68000" in text
        assert "FX" in text


class TestTrace:
    FS = FileSystem.of(4, 8, m=4)

    def test_round_trip(self, tmp_path):
        workload = QueryWorkload(self.FS, WorkloadSpec(seed=3))
        queries = workload.take(25)
        path = tmp_path / "trace.txt"
        dump_trace(queries, path)
        assert load_trace(self.FS, path) == queries

    def test_comments_and_blanks_ignored(self):
        lines = ["# header", "", "f0=1 f1=2  # inline", "   ", "f0=* f1=*"]
        queries = list(parse_trace(self.FS, lines))
        assert len(queries) == 2
        assert queries[0].values == (1, 2)
        assert queries[1].values == (None, None)

    def test_format_query(self):
        from repro.query.partial_match import PartialMatchQuery

        q = PartialMatchQuery.from_dict(self.FS, {1: 5})
        assert format_query(q) == "f0=* f1=5"

    @pytest.mark.parametrize(
        "line,fragment",
        [
            ("f0=1", "not mentioned"),
            ("f0=1 f1=2 f0=3", "twice"),
            ("f0=1 f9=2", "no field 9"),
            ("f0=x f1=2", "non-integer"),
            ("g0=1 f1=2", "malformed"),
            ("f0=9 f1=2", "outside domain"),
        ],
    )
    def test_malformed_lines_rejected_with_location(self, line, fragment):
        with pytest.raises(QueryError) as excinfo:
            list(parse_trace(self.FS, [line]))
        message = str(excinfo.value)
        assert "line 1" in message
        assert fragment in message

    def test_error_reports_correct_line_number(self):
        with pytest.raises(QueryError) as excinfo:
            list(parse_trace(self.FS, ["f0=1 f1=2", "broken"]))
        assert "line 2" in str(excinfo.value)
