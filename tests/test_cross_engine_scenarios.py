"""Cross-engine verification on the paper's own evaluation scenarios.

Runs the three-way verifier (brute force / convolution / rank criterion)
over the exact file systems and methods behind Tables 7-9 and the figure
sweeps — if the reproduction's engines ever drift apart on the scenarios
the numbers in EXPERIMENTS.md come from, these tests fail first.
"""

import pytest

from repro.distribution.zorder import ZOrderDistribution
from repro.experiments.filesystems import (
    figure_scenario,
    table7_setup,
    table8_setup,
    table9_setup,
)
from repro.experiments.verification import verify_method


@pytest.mark.parametrize(
    "setup_factory", [table7_setup, table8_setup, table9_setup],
    ids=["table7", "table8", "table9"],
)
def test_table_scenarios_consistent(setup_factory):
    setup = setup_factory()
    for name, method in setup.methods.items():
        report = verify_method(method, brute_force_limit=50_000)
        assert report.consistent, f"{setup.table_id}/{name}: {report.summary()}"


@pytest.mark.parametrize("figure_id", ["figure1", "figure3"])
def test_figure_scenarios_consistent(figure_id):
    scenario = figure_scenario(figure_id)
    # endpoints of the sweep: all-large and all-small
    for fs in (scenario.filesystems[0], scenario.filesystems[-1]):
        report = verify_method(
            scenario.fx_builder(fs), brute_force_limit=10_000
        )
        assert report.consistent


def test_zorder_consistent_on_table7_grid():
    fs = table7_setup().filesystem
    report = verify_method(ZOrderDistribution(fs), brute_force_limit=50_000)
    assert report.consistent
    assert report.rank_checked == 0  # zorder is separable but not FX-typed
