"""Property-based tests for the query algebra (hypothesis).

The algebra claims partial match queries over one file system form a
meet-semilattice under ``subsumes``/``intersect``.  These properties pin
that down — both the order-theoretic laws and the *semantic* ground truth:
on a file system small enough to enumerate, every claim is checked against
the actual qualified-bucket sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.fields import FileSystem
from repro.query.algebra import are_disjoint, intersect, subsumes
from repro.query.partial_match import PartialMatchQuery

FS = FileSystem.of(4, 4, m=4)  # 16 buckets: qualified sets enumerable
FS3 = FileSystem.of(2, 4, 2, m=4)


def queries(fs):
    """Strategy over every partial match query of *fs* (free fields
    included), built straight from the value-tuple representation."""
    per_field = [
        st.one_of(st.none(), st.integers(0, size - 1))
        for size in fs.field_sizes
    ]
    return st.tuples(*per_field).map(
        lambda values: PartialMatchQuery(fs, values)
    )


def qualified_set(query):
    return set(query.qualified_buckets())


class TestSubsumptionOrder:
    @given(queries(FS))
    def test_reflexive(self, q):
        assert subsumes(q, q)

    @given(queries(FS), queries(FS))
    def test_antisymmetric_on_distinct_queries(self, a, b):
        if a != b:
            assert not (subsumes(a, b) and subsumes(b, a))

    @settings(max_examples=60)
    @given(queries(FS3), queries(FS3), queries(FS3))
    def test_transitive(self, a, b, c):
        if subsumes(a, b) and subsumes(b, c):
            assert subsumes(a, c)

    @given(queries(FS), queries(FS))
    def test_matches_qualified_set_containment(self, a, b):
        # the semantic definition, enumerated exhaustively
        assert subsumes(a, b) == (qualified_set(b) <= qualified_set(a))

    @given(queries(FS))
    def test_full_scan_is_top(self, q):
        assert subsumes(PartialMatchQuery.full_scan(FS), q)


class TestIntersection:
    @given(queries(FS), queries(FS))
    def test_commutative(self, a, b):
        assert intersect(a, b) == intersect(b, a)

    @given(queries(FS))
    def test_idempotent(self, q):
        assert intersect(q, q) == q

    @given(queries(FS), queries(FS))
    def test_is_the_meet_of_qualified_sets(self, a, b):
        meet = intersect(a, b)
        both = qualified_set(a) & qualified_set(b)
        if meet is None:
            assert both == set()
        else:
            assert qualified_set(meet) == both

    @given(queries(FS), queries(FS))
    def test_intersection_subsumption_consistency(self, a, b):
        # both operands subsume their meet, and any query they both
        # subsume is subsumed by the meet (greatest lower bound)
        meet = intersect(a, b)
        if meet is not None:
            assert subsumes(a, meet)
            assert subsumes(b, meet)

    @settings(max_examples=60)
    @given(queries(FS3), queries(FS3), queries(FS3))
    def test_meet_is_greatest_lower_bound(self, a, b, c):
        if subsumes(a, c) and subsumes(b, c):
            meet = intersect(a, b)
            assert meet is not None
            assert subsumes(meet, c)

    @given(queries(FS), queries(FS))
    def test_disjointness_agrees_with_intersection(self, a, b):
        assert are_disjoint(a, b) == (intersect(a, b) is None)

    @given(queries(FS), queries(FS))
    def test_subsumption_absorbs_intersection(self, a, b):
        if subsumes(a, b):
            assert intersect(a, b) == b
