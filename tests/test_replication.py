"""Tests for chained replica placement and failure masking."""

import pytest

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import ConfigurationError, StorageError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.replicated_file import (
    DataUnavailableError,
    ReplicatedFile,
)

FS = FileSystem.of(4, 8, m=4)


def _scheme(offset=1):
    return ChainedReplicaScheme(FXDistribution(FS), offset=offset)


class TestChainedReplicaScheme:
    def test_backup_is_offset_primary(self):
        scheme = _scheme()
        for bucket in FS.buckets():
            primary, backup = scheme.replicas_of(bucket)
            assert backup == (primary + 1) % 4
            assert primary == scheme.primary_of(bucket)
            assert backup == scheme.backup_of(bucket)

    def test_replicas_always_distinct(self):
        scheme = _scheme(offset=3)
        assert all(
            len(set(scheme.replicas_of(b))) == 2 for b in FS.buckets()
        )

    def test_zero_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            _scheme(offset=0)

    def test_offset_multiple_of_m_rejected(self):
        with pytest.raises(ConfigurationError):
            _scheme(offset=8)

    def test_single_device_rejected(self):
        fs = FileSystem.of(4, m=1)
        with pytest.raises(ConfigurationError):
            ChainedReplicaScheme(ModuloDistribution(fs))

    def test_describe(self):
        assert "chained(+1)" in _scheme().describe()


class TestDualWrites:
    def test_each_record_stored_twice(self):
        rf = ReplicatedFile(_scheme())
        rf.insert_all([(i, f"r{i}") for i in range(40)])
        assert rf.record_count == 40
        physical = sum(device.record_count for device in rf.devices)
        assert physical == 80
        rf.check_invariants()

    def test_invariant_detects_misplacement(self):
        rf = ReplicatedFile(_scheme())
        bucket = (0, 0)
        wrong = next(
            d
            for d in range(4)
            if d not in rf.scheme.replicas_of(bucket)
        )
        rf.devices[wrong].insert(bucket, ("rogue",))
        with pytest.raises(StorageError):
            rf.check_invariants()


class TestHealthyReads:
    def test_search_equals_unreplicated_results(self):
        rf = ReplicatedFile(_scheme())
        records = [(i, f"name-{i % 6}") for i in range(100)]
        rf.insert_all(records)
        result = rf.search({1: "name-3"})
        expected = [r for r in records if r[1] == "name-3"]
        # hashing may co-locate other records in qualified buckets, but all
        # true matches must be present exactly once
        for record in expected:
            assert result.records.count(record) == 1

    def test_no_backup_reads_when_healthy(self):
        rf = ReplicatedFile(_scheme())
        rf.insert_all([(i, "x") for i in range(20)])
        result = rf.execute(PartialMatchQuery.full_scan(FS))
        assert result.served_by_backup == 0

    def test_no_duplicate_records_from_replicas(self):
        rf = ReplicatedFile(_scheme())
        rf.insert((5, "only-once"))
        result = rf.execute(PartialMatchQuery.full_scan(FS))
        assert result.records.count((5, "only-once")) == 1


class TestFailureMasking:
    def _loaded(self):
        rf = ReplicatedFile(_scheme())
        rf.insert_all([(i, f"n{i}") for i in range(120)])
        return rf

    def test_single_failure_masks(self):
        rf = self._loaded()
        rf.fail_device(2)
        result = rf.execute(PartialMatchQuery.full_scan(FS))
        assert result.served_by_backup > 0
        assert result.buckets_per_device[2] == 0
        assert sum(result.buckets_per_device) == FS.bucket_count
        # every logical record still retrievable exactly once
        assert len(result.records) == 120

    def test_failed_load_lands_on_neighbour(self):
        rf = self._loaded()
        query = PartialMatchQuery.full_scan(FS)
        healthy = rf.degraded_histogram(query)
        rf.fail_device(1)
        degraded = rf.degraded_histogram(query)
        assert degraded[1] == 0
        assert degraded[2] == healthy[2] + healthy[1]
        assert degraded[0] == healthy[0]

    def test_adjacent_pair_failure_loses_data(self):
        rf = self._loaded()
        rf.fail_device(1)
        rf.fail_device(2)  # backups of device 1's primaries
        with pytest.raises(DataUnavailableError):
            rf.execute(PartialMatchQuery.full_scan(FS))

    def test_non_adjacent_pair_failure_survives(self):
        rf = self._loaded()
        rf.fail_device(0)
        rf.fail_device(2)
        result = rf.execute(PartialMatchQuery.full_scan(FS))
        assert len(result.records) == 120

    def test_restore_clears_masking(self):
        rf = self._loaded()
        rf.fail_device(3)
        rf.restore_device(3)
        result = rf.execute(PartialMatchQuery.full_scan(FS))
        assert result.served_by_backup == 0
        assert rf.failed_devices == frozenset()

    def test_fail_unknown_device(self):
        rf = self._loaded()
        with pytest.raises(StorageError):
            rf.fail_device(9)

    def test_degraded_strict_optimality_lost(self):
        """Degraded mode roughly doubles one device's share, so a strict
        optimal query generally stops being strict optimal."""
        rf = self._loaded()
        query = PartialMatchQuery.full_scan(FS)
        assert rf.execute(query).strict_optimal
        rf.fail_device(0)
        assert not rf.execute(query).strict_optimal
