"""Tests for the optimality-probability analysis (Figures 1-4 engine)."""

import pytest

from repro.analysis.optim_prob import (
    exact_fraction,
    exact_optimality_series,
    fx_sufficient_fraction,
    modulo_sufficient_fraction,
    optimal_pattern_fraction,
    pattern_probability,
    sufficient_optimality_series,
)
from repro.core.fx import FXDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem


class TestPatternProbability:
    def test_uniform_at_half(self):
        assert pattern_probability(frozenset({0, 2}), 4, 0.5) == pytest.approx(
            1 / 16
        )

    def test_sums_to_one(self):
        from repro.query.patterns import all_patterns

        for p in (0.0, 0.3, 0.5, 0.9, 1.0):
            total = sum(
                pattern_probability(pattern, 5, p) for pattern in all_patterns(5)
            )
            assert total == pytest.approx(1.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(AnalysisError):
            pattern_probability(frozenset(), 3, 1.5)


class TestFractions:
    def test_always_true_predicate(self):
        assert optimal_pattern_fraction(4, lambda __: True) == pytest.approx(1.0)

    def test_exact_equals_sufficient_when_conditions_tight(self):
        # Two small fields with distinct transforms: both 100%.
        fs = FileSystem.of(4, 4, m=16)
        fx = FXDistribution(fs, transforms=["I", "U"])
        assert fx_sufficient_fraction(fx) == pytest.approx(1.0)
        assert exact_fraction(fx) == pytest.approx(1.0)

    def test_sufficient_never_exceeds_exact_for_fx(self):
        """Soundness at the aggregate level: the certified fraction is a
        lower bound on the true fraction."""
        for sizes, m in [((4, 4, 4, 4), 16), ((8, 8, 2, 2), 32), ((4, 8, 16), 16)]:
            fs = FileSystem.of(*sizes, m=m)
            fx = FXDistribution(fs, policy="paper")
            assert fx_sufficient_fraction(fx) <= exact_fraction(fx) + 1e-12

    def test_modulo_fraction_known_value(self):
        # n=2 small fields: optimal patterns are {}, {0}, {1} of 4 -> 75%.
        fs = FileSystem.of(4, 4, m=16)
        assert modulo_sufficient_fraction(fs) == pytest.approx(0.75)

    def test_p_weighting_moves_mass(self):
        # With p -> 1 almost every query is an exact match: fraction -> 1.
        fs = FileSystem.of(4, 4, m=16)
        fraction = modulo_sufficient_fraction(fs, p=0.99)
        assert fraction > 0.97


class TestSeries:
    def _sweep(self):
        return [
            FileSystem.of(*([4] * k + [16] * (3 - k)), m=16) for k in range(4)
        ]

    def test_sufficient_series_shape(self):
        series = sufficient_optimality_series(
            self._sweep(), lambda fs: FXDistribution(fs, policy="paper")
        )
        assert series.x == (0, 1, 2, 3)
        assert set(series.series) == {"FD (FX)", "MD (Modulo)"}
        assert all(len(v) == 4 for v in series.series.values())

    def test_fx_dominates_modulo_in_series(self):
        series = sufficient_optimality_series(
            self._sweep(), lambda fs: FXDistribution(fs, policy="paper")
        )
        fd = series.series["FD (FX)"]
        md = series.series["MD (Modulo)"]
        assert all(f >= m_val for f, m_val in zip(fd, md))

    def test_exact_series_bounds_sufficient(self):
        sweep = self._sweep()
        build = lambda fs: FXDistribution(fs, policy="paper")
        sufficient = sufficient_optimality_series(sweep, build)
        exact = exact_optimality_series(sweep, build)
        for s_val, e_val in zip(
            sufficient.series["FD (FX)"], exact.series["FD (FX)"]
        ):
            assert s_val <= e_val + 1e-9

    def test_x_values_length_checked(self):
        with pytest.raises(AnalysisError):
            sufficient_optimality_series(
                self._sweep(),
                lambda fs: FXDistribution(fs),
                x_values=[0, 1],
            )

    def test_render(self):
        series = sufficient_optimality_series(
            self._sweep(), lambda fs: FXDistribution(fs), title="demo"
        )
        text = series.render()
        assert "demo" in text
        assert "FD (FX)" in text
