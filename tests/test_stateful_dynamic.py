"""Stateful testing of the dynamic (directory-doubling) file.

Hypothesis interleaves inserts and searches while the directories double
underneath; a plain list model provides ground truth throughout.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.hashing.fields import FileSystem
from repro.storage.dynamic_file import DynamicPartitionedFile


class DynamicFileMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 100))
    def setup(self, seed):
        self.file = DynamicPartitionedFile(
            FileSystem.of(2, 2, m=4), max_occupancy=2.0, seed=seed
        )
        self.model: list[tuple[int, int]] = []
        self.next_key = 0

    @rule(payload=st.integers(0, 1000), count=st.integers(1, 15))
    def insert_batch(self, payload, count):
        for __ in range(count):
            record = (self.next_key, payload)
            self.file.insert(record)
            self.model.append(record)
            self.next_key += 1

    @rule()
    def search_random_existing(self):
        if not self.model:
            return
        key = self.model[len(self.model) // 2][0]
        expected = [record for record in self.model if record[0] == key]
        found = self.file.search({0: key})
        for record in expected:
            assert record in found

    @invariant()
    def accounting_and_placement_hold(self):
        assert self.file.record_count == len(self.model)
        assert sum(self.file.device_loads()) == len(self.model)
        # every stored bucket sits where the current method routes it
        for device in self.file.devices:
            for bucket in device.store.buckets():
                assert self.file.method.device_of(bucket) == device.device_id

    @invariant()
    def occupancy_bounded_while_growable(self):
        fs = self.file.filesystem
        if all(size * 2 <= self.file.max_field_size for size in fs.field_sizes):
            assert self.file.occupancy() <= self.file.max_occupancy + 1e-9


DynamicFileMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestDynamicFileStateful = DynamicFileMachine.TestCase
