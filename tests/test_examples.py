"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable: at least three runnable examples


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=lambda path: path.name
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
