"""Tests for the discrete-event workload simulator."""

import pytest

from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.storage.costs import DiskCostModel, UnitCostModel
from repro.storage.simulator import (
    ParallelQuerySimulator,
    QueryArrival,
    poisson_arrivals,
)

FS = FileSystem.of(4, 4, m=4)


def _fx():
    return FXDistribution(FS)


class TestSingleQuery:
    def test_idle_array_latency_is_service_time(self):
        sim = ParallelQuerySimulator(_fx(), cost_model=UnitCostModel())
        query = PartialMatchQuery.full_scan(FS)
        report = sim.run([QueryArrival(query, 5.0)])
        (outcome,) = report.queries
        assert outcome.latency_ms == outcome.service_ms
        assert outcome.queueing_ms == 0.0
        assert outcome.largest_response == 4  # 16 buckets over 4 devices

    def test_exact_match_touches_one_device(self):
        sim = ParallelQuerySimulator(_fx())
        query = PartialMatchQuery.exact(FS, (1, 2))
        report = sim.run([QueryArrival(query, 0.0)])
        busy_devices = sum(1 for busy in report.device_busy_ms if busy > 0)
        assert busy_devices == 1

    def test_negative_arrival_rejected(self):
        sim = ParallelQuerySimulator(_fx())
        query = PartialMatchQuery.full_scan(FS)
        with pytest.raises(ConfigurationError):
            sim.run([QueryArrival(query, -1.0)])


class TestQueueing:
    def test_back_to_back_queries_queue(self):
        sim = ParallelQuerySimulator(_fx(), cost_model=UnitCostModel())
        query = PartialMatchQuery.full_scan(FS)  # 4 units on every device
        report = sim.run([QueryArrival(query, 0.0), QueryArrival(query, 0.0)])
        first, second = report.queries
        assert first.latency_ms == 4.0
        assert second.latency_ms == 8.0
        assert second.queueing_ms == 4.0

    def test_disjoint_queries_do_not_interfere(self):
        # Two exact matches homed on different devices overlap fully.
        fx = _fx()
        buckets = [(0, 0), (0, 1)]
        devices = [fx.device_of(b) for b in buckets]
        assert devices[0] != devices[1]
        sim = ParallelQuerySimulator(fx, cost_model=UnitCostModel())
        arrivals = [
            QueryArrival(PartialMatchQuery.exact(FS, b), 0.0) for b in buckets
        ]
        report = sim.run(arrivals)
        assert all(q.queueing_ms == 0.0 for q in report.queries)

    def test_arrivals_sorted_internally(self):
        sim = ParallelQuerySimulator(_fx())
        query = PartialMatchQuery.full_scan(FS)
        report = sim.run(
            [QueryArrival(query, 10.0), QueryArrival(query, 0.0)]
        )
        assert report.queries[0].arrival_ms == 0.0

    def test_skewed_method_queues_more(self):
        """The second-order cost of skew: Modulo's hot device inflates mean
        latency under concurrency relative to FX on the same workload."""
        fs = FileSystem.of(4, 4, m=16)
        queries = [PartialMatchQuery.full_scan(fs)] * 8
        arrivals = [QueryArrival(q, 0.0) for q in queries]
        fx_report = ParallelQuerySimulator(
            FXDistribution(fs, transforms=["I", "U"])
        ).run(arrivals)
        modulo_report = ParallelQuerySimulator(ModuloDistribution(fs)).run(
            arrivals
        )
        assert fx_report.mean_latency_ms < modulo_report.mean_latency_ms


class TestReportAggregates:
    def test_empty_run(self):
        report = ParallelQuerySimulator(_fx()).run([])
        assert report.mean_latency_ms == 0.0
        assert report.max_latency_ms == 0.0
        assert report.throughput_qps == 0.0

    def test_utilisation_bounds(self):
        sim = ParallelQuerySimulator(_fx(), cost_model=DiskCostModel())
        workload = QueryWorkload(FS, WorkloadSpec(seed=4))
        report = sim.run(poisson_arrivals(workload, 50, rate_qps=10.0, seed=1))
        for u in report.utilisation():
            assert 0.0 <= u <= 1.0

    def test_throughput_positive_under_load(self):
        sim = ParallelQuerySimulator(_fx())
        workload = QueryWorkload(FS, WorkloadSpec(seed=4))
        report = sim.run(poisson_arrivals(workload, 30, rate_qps=50.0))
        assert report.throughput_qps > 0.0
        assert len(report.queries) == 30

    def test_makespan_at_least_last_completion(self):
        sim = ParallelQuerySimulator(_fx())
        workload = QueryWorkload(FS, WorkloadSpec(seed=9))
        report = sim.run(poisson_arrivals(workload, 20, rate_qps=5.0))
        assert report.makespan_ms == max(
            q.completion_ms for q in report.queries
        )


class TestPoissonArrivals:
    def test_deterministic_per_seed(self):
        workload = QueryWorkload(FS, WorkloadSpec(seed=1))
        a = poisson_arrivals(workload, 20, rate_qps=10.0, seed=5)
        workload.reset()
        b = poisson_arrivals(workload, 20, rate_qps=10.0, seed=5)
        assert [x.arrival_ms for x in a] == [x.arrival_ms for x in b]

    def test_monotone_times(self):
        workload = QueryWorkload(FS, WorkloadSpec(seed=1))
        arrivals = poisson_arrivals(workload, 50, rate_qps=100.0)
        times = [a.arrival_ms for a in arrivals]
        assert times == sorted(times)

    def test_fixed_sequence_cycles(self):
        queries = [PartialMatchQuery.full_scan(FS)]
        arrivals = poisson_arrivals(queries, 5, rate_qps=1.0)
        assert all(a.query is queries[0] for a in arrivals)

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals([], 1, rate_qps=0.0)

    def test_negative_count(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals([], -1, rate_qps=1.0)


class TestSpeedFactors:
    def test_straggler_slows_its_own_tasks(self):
        sim_uniform = ParallelQuerySimulator(_fx(), cost_model=UnitCostModel())
        sim_straggler = ParallelQuerySimulator(
            _fx(),
            cost_model=UnitCostModel(),
            speed_factors=[1.0, 1.0, 0.5, 1.0],
        )
        query = PartialMatchQuery.full_scan(FS)
        fast = sim_uniform.run([QueryArrival(query, 0.0)])
        slow = sim_straggler.run([QueryArrival(query, 0.0)])
        # the half-speed device doubles the balanced query's completion
        assert slow.queries[0].latency_ms == 2 * fast.queries[0].latency_ms

    def test_speed_factor_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelQuerySimulator(_fx(), speed_factors=[1.0, 1.0])
        with pytest.raises(ConfigurationError):
            ParallelQuerySimulator(_fx(), speed_factors=[1.0, 1.0, 0.0, 1.0])


class TestLatencyPercentile:
    def test_percentiles_ordered(self):
        sim = ParallelQuerySimulator(_fx())
        workload = QueryWorkload(FS, WorkloadSpec(seed=2))
        report = sim.run(poisson_arrivals(workload, 40, rate_qps=50.0))
        p50 = report.latency_percentile(0.5)
        p95 = report.latency_percentile(0.95)
        assert p50 <= p95 <= report.max_latency_ms

    def test_empty_report(self):
        report = ParallelQuerySimulator(_fx()).run([])
        assert report.latency_percentile(0.9) == 0.0

    def test_quantile_validated(self):
        report = ParallelQuerySimulator(_fx()).run([])
        with pytest.raises(ConfigurationError):
            report.latency_percentile(1.5)


class TestBoxArrivals:
    def test_box_queries_flow_through_the_simulator(self):
        from repro.query.box import BoxQuery

        sim = ParallelQuerySimulator(_fx(), cost_model=UnitCostModel())
        box = BoxQuery.from_spec(FS, {0: (0, 1)})  # 8 qualified buckets
        report = sim.run([QueryArrival(box, 0.0)])
        (outcome,) = report.queries
        assert outcome.largest_response == max(
            __import__("repro.analysis.box", fromlist=["x"]).box_response_histogram(
                _fx(), box
            )
        )
        assert sum(report.device_busy_ms) > 0

    def test_mixed_arrival_stream(self):
        from repro.query.box import BoxQuery

        sim = ParallelQuerySimulator(_fx())
        arrivals = [
            QueryArrival(PartialMatchQuery.full_scan(FS), 0.0),
            QueryArrival(BoxQuery.from_spec(FS, {1: (1, 2)}), 1.0),
        ]
        report = sim.run(arrivals)
        assert len(report.queries) == 2

    def test_box_on_non_separable_method_rejected(self):
        from repro.distribution.random_alloc import RandomDistribution
        from repro.query.box import BoxQuery

        sim = ParallelQuerySimulator(RandomDistribution(FS))
        with pytest.raises(ConfigurationError):
            sim.run([QueryArrival(BoxQuery.from_spec(FS, {}), 0.0)])
