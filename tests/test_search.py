"""Tests for the transform-assignment search (section 6 extension)."""

import pytest

from repro.core.fx import FXDistribution
from repro.distribution.search import (
    assignment_score,
    exhaustive_assignment_search,
    hill_climb_assignment_search,
)
from repro.analysis.optim_prob import exact_fraction
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem


class TestAssignmentScore:
    def test_perfect_configuration_scores_one(self):
        fs = FileSystem.of(4, 4, m=16)
        assert assignment_score(fs, ["I", "U"]) == pytest.approx(1.0)

    def test_bad_configuration_scores_below_one(self):
        fs = FileSystem.of(4, 4, m=16)
        assert assignment_score(fs, ["I", "I"]) < 1.0


class TestExhaustiveSearch:
    def test_finds_perfect_assignment_for_two_small_fields(self):
        fs = FileSystem.of(4, 4, m=16)
        result = exhaustive_assignment_search(fs)
        assert result.score == pytest.approx(1.0)
        assert result.evaluations == 16  # 4 families ** 2 fields

    def test_large_field_kept_identity(self):
        fs = FileSystem.of(4, 32, 4, m=16)
        result = exhaustive_assignment_search(fs)
        assert result.methods[1] == "I"

    def test_history_monotone(self):
        fs = FileSystem.of(4, 4, 4, m=16)
        result = exhaustive_assignment_search(fs)
        scores = [score for __, score in result.history]
        assert scores == sorted(scores)

    def test_too_many_small_fields_rejected(self):
        fs = FileSystem.uniform(9, 2, m=16)
        with pytest.raises(ConfigurationError):
            exhaustive_assignment_search(fs)

    def test_build_returns_fx(self):
        fs = FileSystem.of(4, 4, m=16)
        fx = exhaustive_assignment_search(fs).build(fs)
        assert isinstance(fx, FXDistribution)

    def test_search_never_below_paper_assignment(self):
        """The searched assignment must dominate the paper's round-robin."""
        for sizes, m in [((4, 4, 4, 4), 32), ((2, 2, 4, 4), 16)]:
            fs = FileSystem.of(*sizes, m=m)
            searched = exhaustive_assignment_search(fs)
            paper = exact_fraction(FXDistribution(fs, policy="paper"))
            assert searched.score >= paper - 1e-12


class TestHillClimb:
    def test_no_small_fields_trivial(self):
        fs = FileSystem.of(32, 32, m=16)
        result = hill_climb_assignment_search(fs)
        assert result.score == pytest.approx(1.0)
        assert result.methods == ("I", "I")

    def test_deterministic_for_seed(self):
        fs = FileSystem.of(4, 4, 4, 4, m=32)
        a = hill_climb_assignment_search(fs, seed=7, restarts=2)
        b = hill_climb_assignment_search(fs, seed=7, restarts=2)
        assert a.methods == b.methods
        assert a.score == b.score

    def test_never_below_paper_start(self):
        fs = FileSystem.of(4, 4, 4, 4, m=32)
        paper = exact_fraction(FXDistribution(fs, policy="paper"))
        result = hill_climb_assignment_search(fs, restarts=1)
        assert result.score >= paper - 1e-12

    def test_matches_exhaustive_on_small_instance(self):
        fs = FileSystem.of(4, 4, 4, m=16)
        exhaustive = exhaustive_assignment_search(fs)
        climbed = hill_climb_assignment_search(fs, restarts=4, seed=1)
        assert climbed.score == pytest.approx(exhaustive.score)
