"""Tests for partial match queries, patterns and workloads."""

import math
import tempfile
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QueryError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.query.patterns import (
    all_patterns,
    patterns_with_k_unspecified,
    queries_for_pattern,
    representative_query,
)
from repro.query.trace import dump_trace, format_query, load_trace, parse_trace
from repro.query.workload import QueryWorkload, WorkloadSpec


FS = FileSystem.of(2, 4, 8, m=4)


class TestPartialMatchQueryConstruction:
    def test_from_dict(self):
        q = PartialMatchQuery.from_dict(FS, {0: 1, 2: 5})
        assert q.values == (1, None, 5)

    def test_from_dict_unknown_field(self):
        with pytest.raises(QueryError):
            PartialMatchQuery.from_dict(FS, {3: 0})

    def test_value_out_of_domain(self):
        with pytest.raises(QueryError):
            PartialMatchQuery.from_dict(FS, {0: 2})

    def test_wrong_arity(self):
        with pytest.raises(QueryError):
            PartialMatchQuery(FS, (None, None))

    def test_exact(self):
        q = PartialMatchQuery.exact(FS, (1, 3, 7))
        assert q.num_unspecified == 0
        assert q.qualified_count == 1

    def test_full_scan(self):
        q = PartialMatchQuery.full_scan(FS)
        assert q.num_unspecified == 3
        assert q.qualified_count == FS.bucket_count


class TestQueryIntrospection:
    def test_fields_partition(self):
        q = PartialMatchQuery.from_dict(FS, {1: 2})
        assert q.specified_fields == (1,)
        assert q.unspecified_fields == (0, 2)
        assert q.pattern == frozenset({0, 2})

    def test_qualified_count(self):
        q = PartialMatchQuery.from_dict(FS, {1: 2})
        assert q.qualified_count == 2 * 8

    def test_describe(self):
        q = PartialMatchQuery.from_dict(FS, {0: 1})
        assert q.describe() == "<1, *, *>"

    def test_specified_items(self):
        q = PartialMatchQuery.from_dict(FS, {0: 1, 2: 3})
        assert list(q.specified_items()) == [(0, 1), (2, 3)]


class TestQueryEvaluation:
    def test_qualified_buckets_enumeration(self):
        q = PartialMatchQuery.from_dict(FS, {0: 1, 1: 2})
        buckets = list(q.qualified_buckets())
        assert buckets == [(1, 2, j) for j in range(8)]

    def test_matches(self):
        q = PartialMatchQuery.from_dict(FS, {0: 1})
        assert q.matches((1, 0, 0))
        assert not q.matches((0, 0, 0))

    def test_matches_agrees_with_enumeration(self):
        q = PartialMatchQuery.from_dict(FS, {1: 3})
        qualified = set(q.qualified_buckets())
        for bucket in FS.buckets():
            assert q.matches(bucket) == (bucket in qualified)

    def test_with_specified(self):
        q = PartialMatchQuery.full_scan(FS).with_specified(1, 2)
        assert q.values == (None, 2, None)


class TestPatterns:
    def test_all_patterns_count(self):
        assert sum(1 for __ in all_patterns(5)) == 32

    def test_patterns_with_k_count(self):
        assert sum(1 for __ in patterns_with_k_unspecified(6, 3)) == math.comb(6, 3)

    def test_patterns_with_k_invalid(self):
        with pytest.raises(QueryError):
            list(patterns_with_k_unspecified(3, 4))

    def test_queries_for_pattern_count(self):
        queries = list(queries_for_pattern(FS, {0}))
        # specified fields 1 and 2 -> 4 * 8 value combos
        assert len(queries) == 32
        assert all(q.pattern == frozenset({0}) for q in queries)

    def test_queries_for_pattern_bad_field(self):
        with pytest.raises(QueryError):
            list(queries_for_pattern(FS, {5}))

    def test_representative_query(self):
        q = representative_query(FS, {2})
        assert q.values == (0, 0, None)

    @given(st.integers(1, 6))
    def test_patterns_partition_by_k(self, n):
        total = 0
        for k in range(n + 1):
            total += sum(1 for __ in patterns_with_k_unspecified(n, k))
        assert total == 2**n


class TestWorkload:
    def test_reproducible(self):
        a = QueryWorkload(FS, WorkloadSpec(seed=11)).take(50)
        b = QueryWorkload(FS, WorkloadSpec(seed=11)).take(50)
        assert a == b

    def test_reset_replays(self):
        wl = QueryWorkload(FS, WorkloadSpec(seed=3))
        first = wl.take(10)
        wl.reset()
        assert wl.take(10) == first

    def test_exclude_trivial(self):
        spec = WorkloadSpec(seed=1, exclude_trivial=True)
        for q in QueryWorkload(FS, spec).take(200):
            assert 0 < q.num_unspecified < FS.n_fields

    def test_probability_zero_never_specifies(self):
        spec = WorkloadSpec(spec_probability=0.0, seed=2)
        assert all(
            q.num_unspecified == FS.n_fields
            for q in QueryWorkload(FS, spec).take(20)
        )

    def test_probability_one_always_exact(self):
        spec = WorkloadSpec(spec_probability=1.0, seed=2)
        assert all(
            q.num_unspecified == 0 for q in QueryWorkload(FS, spec).take(20)
        )

    def test_per_field_probabilities(self):
        spec = WorkloadSpec(spec_probability=(1.0, 0.0, 1.0), seed=4)
        for q in QueryWorkload(FS, spec).take(50):
            assert q.values[0] is not None
            assert q.values[1] is None
            assert q.values[2] is not None

    def test_wrong_probability_count(self):
        with pytest.raises(ConfigurationError):
            QueryWorkload(FS, WorkloadSpec(spec_probability=(0.5,)))

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            QueryWorkload(FS, WorkloadSpec(spec_probability=1.5))

    def test_trivial_only_model_raises(self):
        spec = WorkloadSpec(spec_probability=1.0, exclude_trivial=True, seed=0)
        with pytest.raises(QueryError):
            QueryWorkload(FS, spec).next_query()

    def test_negative_take_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryWorkload(FS).take(-1)

    def test_iter_protocol(self):
        wl = QueryWorkload(FS, WorkloadSpec(seed=8))
        iterator = iter(wl)
        assert next(iterator).filesystem is FS


class TestTraceRoundTrip:
    """Property: serialising a workload and parsing it back is lossless."""

    @given(data=st.data())
    def test_format_parse_round_trip(self, data):
        sizes = data.draw(
            st.lists(st.sampled_from((2, 4, 8)), min_size=1, max_size=4)
        )
        fs = FileSystem.of(*sizes, m=2)
        query_strategy = st.tuples(
            *[
                st.one_of(st.none(), st.integers(0, size - 1))
                for size in sizes
            ]
        ).map(lambda values: PartialMatchQuery(fs, values))
        queries = data.draw(
            st.lists(query_strategy, min_size=0, max_size=20)
        )
        lines = [format_query(query) for query in queries]
        assert list(parse_trace(fs, lines)) == queries

    @given(seed=st.integers(0, 2**16))
    def test_dump_load_file_round_trip(self, seed):
        queries = QueryWorkload(FS, WorkloadSpec(seed=seed)).take(12)
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "trace.txt"
            dump_trace(queries, path)
            assert load_trace(FS, path) == queries
