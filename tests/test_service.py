"""Tests for the concurrent query-serving front end.

The soak test here is the PR's acceptance criterion: many client threads
interleaving inserts and queries against one service must produce zero
exceptions, zero shed responses under ample capacity, and — verified by
serial replay of the request log — zero stale reads.
"""

import threading
import time

import pytest

from repro import obs
from repro.api import make_service
from repro.core.fx import FXDistribution
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.runtime import RetryPolicy
from repro.service import (
    AdmissionController,
    LoadGenerator,
    LoadSpec,
    QueryService,
    ServiceConfig,
)
from repro.service.admission import ADMITTED, SHED, TIMEOUT
from repro.storage.bucket_store import BucketStore
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(8, 8, m=4)


class SlowStore(BucketStore):
    """Bucket store with a per-bucket read delay, to make flights overlap."""

    delay_s = 0.002

    def records_in(self, bucket):
        time.sleep(self.delay_s)
        return super().records_in(bucket)


class GatedStore(BucketStore):
    """Bucket store whose reads block until the test opens the gate."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()

    def records_in(self, bucket):
        self.gate.wait(5.0)
        return super().records_in(bucket)


def _service(store_factory=None, records=48, **config_overrides):
    pf = PartitionedFile(FXDistribution(FS), store_factory=store_factory)
    pf.insert_all([(i, i % 11) for i in range(records)])
    return QueryService(pf, ServiceConfig(**config_overrides))


def _ground_truth(pf, query):
    records = []
    for device in pf.devices:
        for bucket in device.store.buckets():
            if query.matches(bucket):
                records.extend(device.store.records_in(bucket))
    return sorted(records)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_admit_and_release(self):
        controller = AdmissionController(max_concurrent=2, queue_limit=0)
        first = controller.admit(None)
        second = controller.admit(None)
        assert first.outcome == second.outcome == ADMITTED
        assert controller.admit(None).outcome == SHED
        controller.release()
        assert controller.admit(None).outcome == ADMITTED
        controller.release()
        controller.release()

    def test_full_queue_sheds_immediately(self):
        controller = AdmissionController(max_concurrent=1, queue_limit=0)
        assert controller.admit(None).admitted
        decision = controller.admit(None)
        assert decision.outcome == SHED
        assert not decision.admitted
        controller.release()

    def test_queued_request_times_out_at_deadline(self):
        controller = AdmissionController(max_concurrent=1, queue_limit=4)
        assert controller.admit(None).admitted
        started = time.perf_counter()
        decision = controller.admit(deadline_ms=20.0)
        waited_ms = (time.perf_counter() - started) * 1000.0
        assert decision.outcome == TIMEOUT
        assert waited_ms >= 15.0
        controller.release()

    def test_retry_policy_governs_shed_attempts(self):
        controller = AdmissionController(
            max_concurrent=1,
            queue_limit=0,
            retry=RetryPolicy(max_attempts=3, base_delay_ms=1.0),
        )
        assert controller.admit(None).admitted
        decision = controller.admit(None)
        assert decision.outcome == SHED
        assert decision.attempts == 3
        controller.release()

    def test_queued_request_admitted_on_release(self):
        controller = AdmissionController(max_concurrent=1, queue_limit=4)
        assert controller.admit(None).admitted
        outcomes = []

        def waiter():
            outcomes.append(controller.admit(deadline_ms=2000.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        controller.release()
        thread.join()
        assert outcomes[0].outcome == ADMITTED
        assert outcomes[0].queue_ms > 0.0
        controller.release()

    def test_configuration_validated(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(queue_limit=-1)

    def test_service_sheds_explicitly_under_saturation(self):
        obs.reset_telemetry()
        service = _service(max_concurrent=1, queue_limit=0)
        assert service.admission.admit(None).admitted  # occupy the permit
        try:
            result = service.execute(service.file.query({0: 1}))
        finally:
            service.admission.release()
        assert result.status == "shed"
        assert not result.ok
        assert result.records == []
        counters = obs.telemetry().metrics.snapshot().counters
        assert counters.get("service.shed") == 1

    def test_service_timeout_reported_as_status(self):
        obs.reset_telemetry()
        service = _service(max_concurrent=1, queue_limit=4)
        assert service.admission.admit(None).admitted
        try:
            result = service.execute(
                service.file.query({0: 1}), deadline_ms=15.0
            )
        finally:
            service.admission.release()
        assert result.status == "timeout"
        counters = obs.telemetry().metrics.snapshot().counters
        assert counters.get("service.timeout") == 1


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_followers_share_one_device_round_trip(self):
        obs.reset_telemetry()
        service = _service(
            store_factory=SlowStore, cache_capacity=None, max_concurrent=16
        )
        query = PartialMatchQuery.full_scan(FS)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads

        def client(i):
            barrier.wait()
            results[i] = service.execute(query)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(r.ok for r in results)
        expected = _ground_truth(service.file, query)
        for result in results:
            assert sorted(result.records) == expected
        counters = obs.telemetry().metrics.snapshot().counters
        # the acceptance criterion: coalescing measurably reduces
        # device round-trips — strictly fewer leader fetches than requests
        assert counters["service.requests"] == n_threads
        assert counters["service.leader_fetches"] < n_threads
        assert counters.get("service.coalesced", 0) >= 1
        assert counters["service.leader_fetches"] + counters[
            "service.coalesced"
        ] == n_threads

    def test_coalesced_and_uncoalesced_return_identical_records(self):
        reference = None
        for coalesce in (True, False):
            service = _service(
                store_factory=SlowStore,
                cache_capacity=None,
                coalesce=coalesce,
                max_concurrent=16,
            )
            query = service.file.query({0: 3})
            barrier = threading.Barrier(6)
            collected = [None] * 6

            def client(i, service=service, query=query, barrier=barrier,
                       collected=collected):
                barrier.wait()
                collected[i] = sorted(service.execute(query).records)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(r is not None for r in collected)
            assert len({tuple(map(tuple, r)) for r in collected}) == 1
            if reference is None:
                reference = collected[0]
            else:
                assert collected[0] == reference

    def test_subsumed_query_joins_broad_flight(self):
        store_holder = []

        def store_factory():
            store = GatedStore()
            store_holder.append(store)
            return store

        service = _service(store_factory=store_factory, cache_capacity=None)
        broad = PartialMatchQuery.full_scan(FS)
        narrow = service.file.query({0: 3})
        results = {}

        def leader():
            results["leader"] = service.execute(broad)

        def follower():
            results["follower"] = service.execute(narrow)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        deadline = time.perf_counter() + 5.0
        while not service._inflight and time.perf_counter() < deadline:
            time.sleep(0.001)
        assert service._inflight, "leader never registered its flight"
        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        time.sleep(0.02)  # let the follower reach the flight
        for store in store_holder:
            store.gate.set()
        leader_thread.join()
        follower_thread.join()

        assert results["leader"].ok and results["follower"].ok
        assert results["follower"].coalesced
        assert sorted(results["follower"].records) == _ground_truth(
            service.file, narrow
        )

    def test_stale_flight_is_not_joined_after_write(self):
        service = _service(cache_capacity=None)
        query = service.file.query({0: 3})
        flight, leader = service._join_or_lead(query)
        assert leader
        service.insert((3, 7))  # bumps the write version mid-flight
        replacement, leader_again = service._join_or_lead(query)
        assert leader_again, "joined a flight older than a completed write"
        assert replacement is not flight
        service._retire(replacement)
        flight.fail(RuntimeError("abandoned by test"))

    def test_insert_versioned_is_atomic_under_contention(self):
        pf = PartitionedFile(FXDistribution(FS))
        versions = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def writer(i):
            barrier.wait()
            local = [
                pf.insert_versioned((i, j))[1] for j in range(25)
            ]
            with lock:
                versions.extend(local)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(versions) == list(range(1, 201))


# ----------------------------------------------------------------------
# The soak: the PR's acceptance criterion
# ----------------------------------------------------------------------
class TestSoak:
    @pytest.mark.parametrize(
        "cache_capacity,coalesce",
        [(64, True), (None, True), (64, False), (None, False)],
    )
    def test_interleaved_soak_zero_stale_reads(self, cache_capacity, coalesce):
        service = _service(
            records=0,
            cache_capacity=cache_capacity,
            coalesce=coalesce,
            max_concurrent=8,
            queue_limit=64,
        )
        initial = [(i, i % 5) for i in range(32)]
        service.file.insert_all(initial)
        spec = LoadSpec(
            clients=8,
            requests_per_client=40,
            seed=3,
            write_every=3,
            hot_fraction=0.5,
        )
        report = LoadGenerator(service, spec).run()

        assert report.errors == []
        counts = report.status_counts()
        assert counts.get("shed", 0) == 0
        assert counts.get("timeout", 0) == 0
        assert counts.get("ok") == len(report.requests)
        # serial replay: byte-identical records, zero stale reads
        mismatches = report.verify(
            service.file.multikey_hash, initial_records=initial
        )
        assert mismatches == []

    def test_soak_with_cache_sees_hits_and_stays_fresh(self):
        obs.reset_telemetry()
        service = _service(records=0, cache_capacity=64, max_concurrent=8)
        initial = [(i, i % 5) for i in range(32)]
        service.file.insert_all(initial)
        spec = LoadSpec(
            clients=8,
            requests_per_client=30,
            seed=11,
            write_every=6,
            hot_fraction=0.7,
            hot_pool=3,
        )
        report = LoadGenerator(service, spec).run()
        assert report.errors == []
        assert report.verify(
            service.file.multikey_hash, initial_records=initial
        ) == []
        stats = service.cache.stats
        assert stats.exact_hits + stats.subsumption_hits > 0
        assert stats.write_invalidations > 0


# ----------------------------------------------------------------------
# Load generator determinism
# ----------------------------------------------------------------------
class TestLoadGenerator:
    def test_client_ops_deterministic_across_generators(self):
        spec = LoadSpec(clients=3, requests_per_client=20, seed=7,
                        write_every=4, hot_fraction=0.3)
        first = LoadGenerator(_service(), spec)
        second = LoadGenerator(_service(), spec)
        for client in range(spec.clients):
            assert first.client_ops(client) == second.client_ops(client)

    def test_different_seeds_differ(self):
        base = LoadSpec(clients=1, requests_per_client=20, seed=1)
        other = LoadSpec(clients=1, requests_per_client=20, seed=2)
        assert LoadGenerator(_service(), base).client_ops(0) != LoadGenerator(
            _service(), other
        ).client_ops(0)

    def test_spec_validated(self):
        with pytest.raises(ConfigurationError):
            LoadSpec(clients=0)
        with pytest.raises(ConfigurationError):
            LoadSpec(hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            LoadSpec(write_every=-1)

    def test_report_percentiles_and_dict(self):
        service = _service()
        spec = LoadSpec(clients=2, requests_per_client=10, seed=0)
        report = LoadGenerator(service, spec).run()
        data = report.to_dict()
        assert data["requests"] == 20
        assert data["errors"] == 0
        assert data["p50_ms"] <= data["p95_ms"] <= data["p99_ms"]
        assert report.throughput_qps > 0
        with pytest.raises(ConfigurationError):
            report.latency_percentile(1.5)


# ----------------------------------------------------------------------
# Facade and config
# ----------------------------------------------------------------------
class TestFacade:
    def test_make_service_round_trip(self):
        service = make_service("fx", fields=(4, 4), devices=4)
        bucket, version = service.insert((1, 2))
        assert version == 1
        result = service.execute(service.file.query({0: 1}))
        assert result.ok
        assert (1, 2) in [tuple(r) for r in result.records]

    def test_make_service_passes_method_options(self):
        service = make_service(
            "gdm", fields=(4, 4), devices=4, multipliers=(3, 5)
        )
        assert service.file.method.name == "gdm"

    def test_search_convenience(self):
        service = _service()
        result = service.search({0: 3})
        assert result.ok
        assert sorted(result.records) == _ground_truth(
            service.file, service.file.query({0: 3})
        )

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            _service(deadline_ms=0.0)
