"""Seeded randomized conformance sweep at larger scale.

A deterministic stress complement to the hypothesis suites: wider file
systems (up to six fields, M up to 64) and sampled concrete queries, with
every core contract checked against brute force — response histograms,
strict optimality, the section 4.2 certificate, inverse mapping, and the
rank criterion — under one reproducible RNG.
"""

import random

import pytest

from repro.analysis.histograms import evaluator_for
from repro.core.fx import FXDistribution
from repro.core.linear import linear_pattern_is_optimal, linearize
from repro.core.theorems import fx_strict_optimal_sufficient
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.util.numbers import ceil_div

SEEDS = [1, 7, 42, 1988]


def _random_configuration(rng):
    n = rng.randint(2, 6)
    m = rng.choice([8, 16, 32, 64])
    sizes = [rng.choice([2, 4, 8, 16, 32]) for __ in range(n)]
    fs = FileSystem.of(*sizes, m=m)
    methods = [
        "I" if size >= m else rng.choice(["I", "U", "IU1", "IU2"])
        for size in sizes
    ]
    return fs, FXDistribution(fs, transforms=methods)


def _random_query(rng, fs):
    values = []
    for size in fs.field_sizes:
        values.append(rng.randrange(size) if rng.random() < 0.5 else None)
    return PartialMatchQuery(fs, tuple(values))


@pytest.mark.parametrize("seed", SEEDS)
def test_fx_conformance_sweep(seed):
    rng = random.Random(seed)
    for __ in range(8):
        fs, fx = _random_configuration(rng)
        evaluator = evaluator_for(fx)
        matrices = linearize(fx)
        for __ in range(6):
            query = _random_query(rng, fs)
            if query.qualified_count > 20_000:
                continue
            # 1. histogram vs brute force
            naive = [0] * fs.m
            for bucket in query.qualified_buckets():
                naive[fx.device_of(bucket)] += 1
            assert fx.response_histogram(query) == naive
            # 2. strict optimality agrees between count and engine
            bound = ceil_div(query.qualified_count, fs.m)
            assert (max(naive) <= bound) == evaluator.is_strict_optimal(
                query.pattern
            )
            # 3. the certificate never overclaims
            if fx_strict_optimal_sufficient(fx, query.pattern):
                assert max(naive) <= bound
            # 4. the rank criterion agrees with ground truth
            assert linear_pattern_is_optimal(
                matrices, query.pattern, fs.m
            ) == (max(naive) <= bound)
            # 5. inverse mapping partitions R(q)
            collected = []
            for device in range(fs.m):
                for bucket in fx.qualified_on_device(device, query):
                    assert fx.device_of(bucket) == device
                    collected.append(bucket)
            assert sorted(collected) == sorted(query.qualified_buckets())


@pytest.mark.parametrize("seed", SEEDS)
def test_baseline_conformance_sweep(seed):
    rng = random.Random(seed)
    for __ in range(6):
        n = rng.randint(2, 5)
        m = rng.choice([8, 16, 32])
        sizes = [rng.choice([2, 4, 8, 16]) for __ in range(n)]
        fs = FileSystem.of(*sizes, m=m)
        for method in (
            ModuloDistribution(fs),
            GDMDistribution(
                fs, multipliers=tuple(rng.randrange(1, 60) for __ in range(n))
            ),
        ):
            for __ in range(4):
                query = _random_query(rng, fs)
                if query.qualified_count > 20_000:
                    continue
                naive = [0] * fs.m
                for bucket in query.qualified_buckets():
                    naive[method.device_of(bucket)] += 1
                assert method.response_histogram(query) == naive
                collected = []
                for device in range(fs.m):
                    collected.extend(
                        method.qualified_on_device(device, query)
                    )
                assert sorted(collected) == sorted(query.qualified_buckets())
