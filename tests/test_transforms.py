"""Tests for the field transformation functions (paper section 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FieldValueError, TransformError
from repro.core.transforms import (
    IU1Transform,
    IU2Transform,
    IdentityTransform,
    UTransform,
    assign_transforms,
    make_transform,
    paper_assignment,
    theorem9_assignment,
)


def small_field_cases():
    """(F, M) pairs with F < M, both powers of two."""
    cases = []
    for m_bits in range(1, 10):
        for f_bits in range(0, m_bits):
            cases.append((1 << f_bits, 1 << m_bits))
    return cases


small_case_strategy = st.sampled_from(small_field_cases())


class TestIdentity:
    def test_identity_values(self):
        t = IdentityTransform(8, 4)
        assert t.image() == tuple(range(8))

    def test_large_field_allowed(self):
        # Identity is the mandatory choice for F >= M.
        IdentityTransform(64, 4)

    def test_value_out_of_domain(self):
        with pytest.raises(FieldValueError):
            IdentityTransform(4, 16).apply(4)


class TestUTransform:
    def test_paper_table2_image(self):
        # U(f2) = {0, 4, 8, 12} for F = 4, M = 16.
        assert UTransform(4, 16).image() == (0, 4, 8, 12)

    def test_requires_small_field(self):
        with pytest.raises(TransformError):
            UTransform(16, 16)

    @given(small_case_strategy)
    def test_equally_spaced(self, case):
        f, m = case
        image = UTransform(f, m).image()
        d = m // f
        assert image == tuple(i * d for i in range(f))


class TestIU1Transform:
    def test_paper_example_4(self):
        # F = 8, M = 16 -> {0, 3, 6, 5, 12, 15, 10, 9}.
        assert IU1Transform(8, 16).image() == (0, 3, 6, 5, 12, 15, 10, 9)

    def test_paper_example_5(self):
        # F = 4, M = 16 -> {0, 5, 10, 15}.
        assert IU1Transform(4, 16).image() == (0, 5, 10, 15)

    @given(small_case_strategy)
    def test_injective_into_zm(self, case):
        """Lemma 5.1: IU1 is injective into Z_M."""
        f, m = case
        image = IU1Transform(f, m).image()
        assert len(set(image)) == f
        assert all(0 <= v < m for v in image)

    @given(small_case_strategy)
    def test_one_element_per_interval(self, case):
        """Lemma 5.4: exactly one image element per d-aligned interval."""
        f, m = case
        d = m // f
        intervals = {v // d for v in IU1Transform(f, m).image()}
        assert intervals == set(range(f))


class TestIU2Transform:
    def test_paper_example_7(self):
        # F = 2, M = 16 -> {0, 13}.
        assert IU2Transform(2, 16).image() == (0, 13)

    def test_collapses_to_iu1_when_square_large(self):
        # F = 8, M = 16: F**2 >= M, so IU2 == IU1 and d2 == 0.
        iu2 = IU2Transform(8, 16)
        assert iu2.d2 == 0
        assert iu2.effective_method == "IU1"
        assert iu2.image() == IU1Transform(8, 16).image()

    def test_effective_method_iu2_when_square_small(self):
        iu2 = IU2Transform(2, 16)
        assert iu2.d2 == 4
        assert iu2.effective_method == "IU2"

    @given(small_case_strategy)
    def test_injective_into_zm(self, case):
        """Lemma 7.1: IU2 is injective into Z_M."""
        f, m = case
        image = IU2Transform(f, m).image()
        assert len(set(image)) == f
        assert all(0 <= v < m for v in image)

    @given(small_case_strategy)
    def test_one_element_per_interval(self, case):
        """Lemma 7.2: exactly one image element per d1-aligned interval."""
        f, m = case
        d1 = m // f
        intervals = {v // d1 for v in IU2Transform(f, m).image()}
        assert intervals == set(range(f))


class TestInverse:
    @given(small_case_strategy, st.sampled_from(["U", "IU1", "IU2"]))
    def test_inverse_round_trip(self, case, method):
        f, m = case
        t = make_transform(method, f, m)
        for value in range(f):
            assert t.inverse(t.apply(value)) == value

    def test_inverse_of_missing_value(self):
        t = make_transform("U", 4, 16)
        assert t.inverse(1) is None


class TestMakeTransform:
    def test_unknown_method(self):
        with pytest.raises(TransformError):
            make_transform("XYZ", 4, 16)

    def test_equality_and_hash(self):
        assert make_transform("U", 4, 16) == make_transform("U", 4, 16)
        assert make_transform("U", 4, 16) != make_transform("I", 4, 16)
        assert hash(make_transform("IU1", 4, 16)) == hash(
            make_transform("IU1", 4, 16)
        )


class TestPaperAssignment:
    def test_cycles_over_small_fields(self):
        transforms = paper_assignment([8] * 6, 32)
        assert [t.method for t in transforms] == [
            "I", "U", "IU1", "I", "U", "IU1"
        ]

    def test_large_fields_identity(self):
        transforms = paper_assignment([64, 8, 8, 8], 32)
        assert [t.method for t in transforms] == ["I", "I", "U", "IU1"]

    def test_iu2_variant(self):
        transforms = paper_assignment([8, 8, 8], 512, variant="IU2")
        assert [t.method for t in transforms] == ["I", "U", "IU2"]

    def test_bad_variant(self):
        with pytest.raises(ConfigurationError):
            paper_assignment([8], 32, variant="IU3")


class TestTheorem9Assignment:
    def test_three_small_fields_follow_recipe(self):
        # Sizes 4, 2, 8 with M = 16: largest (8) -> I, middle (4) -> IU2,
        # smallest (2) -> U.
        transforms = theorem9_assignment([4, 2, 8], 16)
        assert [t.method for t in transforms] == ["IU2", "U", "I"]

    def test_two_small_fields(self):
        transforms = theorem9_assignment([4, 2, 32], 16)
        assert [t.method for t in transforms] == ["I", "IU2", "I"]

    def test_iu2_size_not_less_than_u_size(self):
        # Lemma 9.1's second condition must hold by construction.
        for sizes in ([2, 4, 8], [8, 4, 2], [4, 8, 2], [2, 2, 4]):
            transforms = theorem9_assignment(sizes, 64)
            by_method = {t.method: t.field_size for t in transforms}
            assert by_method["IU2"] >= by_method["U"]


class TestAssignTransforms:
    def test_explicit_names(self):
        transforms = assign_transforms([4, 4], 16, policy=["I", "IU1"])
        assert [t.method for t in transforms] == ["I", "IU1"]

    def test_explicit_wrong_length(self):
        with pytest.raises(ConfigurationError):
            assign_transforms([4, 4], 16, policy=["I"])

    def test_large_field_must_be_identity(self):
        with pytest.raises(TransformError):
            assign_transforms([16, 4], 16, policy=["U", "I"])

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            assign_transforms([4, 4], 16, policy="magic")
