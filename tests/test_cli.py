"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.cli import main


class TestTableCommand:
    def test_table7_prints_golden_row(self, capsys):
        assert main(["table", "table7"]) == 0
        out = capsys.readouterr().out
        assert "Table 7" in out
        assert "18152.0" in out  # Modulo k=6

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "table42"])


class TestFigureCommand:
    def test_figure_renders_series(self, capsys):
        assert main(["figure", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "FD (FX)" in out
        assert "MD (Modulo)" in out

    def test_chart_flag(self, capsys):
        assert main(["figure", "figure1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "% strict optimal" in out


class TestCensusCommand:
    def test_perfect_census_exit_zero(self, capsys):
        code = main(
            [
                "census", "--fields", "4,4", "--devices", "16",
                "--method", "fx", "--transforms", "I,U",
            ]
        )
        assert code == 0
        assert "100.0%" in capsys.readouterr().out

    def test_imperfect_census_exit_one(self, capsys):
        code = main(
            ["census", "--fields", "4,4", "--devices", "16",
             "--method", "modulo"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "worst failures" in out

    def test_failures_suppressed(self, capsys):
        main(
            ["census", "--fields", "4,4", "--devices", "16",
             "--method", "modulo", "--failures", "0"]
        )
        assert "worst failures" not in capsys.readouterr().out

    def test_gdm_with_multipliers(self, capsys):
        code = main(
            ["census", "--fields", "4,4", "--devices", "4",
             "--method", "gdm", "--multipliers", "1,3"]
        )
        assert code in (0, 1)
        assert "gdm" in capsys.readouterr().out

    def test_bad_filesystem_reports_error(self):
        with pytest.raises(SystemExit):
            main(["census", "--fields", "3,4", "--devices", "16"])


class TestSkewCommand:
    def test_skew_table(self, capsys):
        assert main(["skew", "--fields", "4,4", "--devices", "16"]) == 0
        out = capsys.readouterr().out
        assert "fx (theorem9)" in out
        assert "modulo" in out


class TestSearchCommand:
    def test_families_search(self, capsys):
        assert main(
            ["search", "--fields", "4,4", "--devices", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "best assignment" in out
        assert "100.00%" in out

    def test_linear_search(self, capsys):
        assert main(
            ["search", "--fields", "4,4,4,4", "--devices", "32",
             "--space", "linear", "--iterations", "200", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "linear transforms" in out
        assert "matrix" in out


class TestReportCommand:
    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "exp.md"
        assert main(
            ["report", "--output", str(out_file), "--no-exact-figures"]
        ) == 0
        assert out_file.exists()
        assert "Tables 1-6" in out_file.read_text()


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestDesignCommand:
    def test_design_allocation(self, capsys):
        assert main(
            ["design", "--probabilities", "0.9,0.1", "--bits", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "expected qualified buckets" in out
        assert "directory size" in out

    def test_design_with_cap(self, capsys):
        assert main(
            ["design", "--probabilities", "0.9,0.1", "--bits", "4",
             "--max-bits", "3"]
        ) == 0

    def test_design_bad_probability(self):
        with pytest.raises(SystemExit):
            main(["design", "--probabilities", "2.0", "--bits", "4"])


class TestSimulateCommand:
    def test_simulate_prints_comparison(self, capsys):
        code = main(
            ["simulate", "--fields", "4,4", "--devices", "8",
             "--queries", "20", "--rate", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean latency" in out
        assert "FX" in out and "Modulo" in out


class TestRecommendCommand:
    def test_recommend_ranks_methods(self, capsys):
        assert main(
            ["recommend", "--fields", "4,4", "--devices", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "recommended: fx-theorem9" in out
        assert "Modulo".lower() in out.lower()


class TestPerfCommand:
    def test_perf_report_shows_counters(self, capsys):
        assert main(
            ["perf", "report", "--fields", "8,8", "--devices", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "Engine perf counters" in out
        assert "evaluator_lru" in out
        assert "pattern_histogram" in out
        assert "inverse mapping sweep" in out

    def test_perf_report_parallel_and_modulo(self, capsys):
        assert main(
            ["perf", "report", "--fields", "4,4,4", "--devices", "8",
             "--method", "modulo", "--parallel", "2"]
        ) == 0
        assert "modulo" in capsys.readouterr().out

    def test_perf_unknown_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["perf", "bogus", "--fields", "4,4", "--devices", "8"])


class TestParallelFlags:
    def test_census_parallel_matches_serial(self, capsys):
        args = ["census", "--fields", "4,4", "--devices", "16",
                "--method", "modulo"]
        main(args)
        serial_out = capsys.readouterr().out
        main([*args, "--parallel", "4"])
        assert capsys.readouterr().out == serial_out

    def test_search_parallel_matches_serial(self, capsys):
        args = ["search", "--fields", "4,4", "--devices", "16"]
        main(args)
        serial_out = capsys.readouterr().out
        main([*args, "--parallel", "2"])
        assert capsys.readouterr().out == serial_out
