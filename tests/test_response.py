"""Tests for the largest-response-size analysis (Tables 7-9 engine)."""

import pytest

from repro.analysis.response import (
    average_largest_response,
    largest_response_table,
    optimal_largest_response,
)
from repro.core.fx import FXDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.distribution.random_alloc import RandomDistribution
from repro.errors import AnalysisError
from repro.hashing.fields import FileSystem
from repro.query.patterns import patterns_with_k_unspecified, queries_for_pattern


class TestOptimalColumn:
    def test_uniform_sizes(self):
        fs = FileSystem.uniform(6, 8, m=32)
        # every 3-subset qualifies 512 buckets -> ceil(512/32) = 16
        assert optimal_largest_response(fs, 3) == 16.0

    def test_mixed_sizes_unweighted_matches_paper_table9(self):
        fs = FileSystem.of(8, 8, 8, 16, 16, 16, m=512)
        assert optimal_largest_response(fs, 4, weighted=False) == pytest.approx(35.2)
        assert optimal_largest_response(fs, 2, weighted=False) == 1.0

    def test_weighted_vs_unweighted_differ_on_mixed_sizes(self):
        fs = FileSystem.of(8, 8, 8, 16, 16, 16, m=512)
        weighted = optimal_largest_response(fs, 3, weighted=True)
        unweighted = optimal_largest_response(fs, 3, weighted=False)
        assert weighted != unweighted


class TestAverageLargestResponse:
    def test_matches_manual_average_separable(self):
        fs = FileSystem.of(4, 4, 4, m=8)
        fx = FXDistribution(fs)
        manual = []
        for pattern in patterns_with_k_unspecified(3, 2):
            worsts = [
                fx.largest_response(q) for q in queries_for_pattern(fs, pattern)
            ]
            # pattern-invariance: all queries in a pattern agree
            assert len(set(worsts)) == 1
            manual.append(worsts[0])
        expected = sum(manual) / len(manual)
        assert average_largest_response(fx, 2, weighted=False) == expected

    def test_non_separable_brute_force_path(self):
        fs = FileSystem.of(4, 4, m=4)
        method = RandomDistribution(fs, seed=9)
        value = average_largest_response(method, 1)
        manual = []
        for pattern in patterns_with_k_unspecified(2, 1):
            for q in queries_for_pattern(fs, pattern):
                manual.append(method.largest_response(q))
        assert value == pytest.approx(sum(manual) / len(manual))

    def test_work_limit(self):
        fs = FileSystem.of(16, 16, 16, m=4)
        with pytest.raises(AnalysisError):
            average_largest_response(
                RandomDistribution(fs), 2, work_limit=10
            )

    def test_never_below_optimal(self):
        fs = FileSystem.uniform(4, 8, m=16)
        for k in range(1, 5):
            for method in (
                FXDistribution(fs),
                ModuloDistribution(fs),
            ):
                assert (
                    average_largest_response(method, k, weighted=False)
                    >= optimal_largest_response(fs, k, weighted=False)
                )


class TestResponseTable:
    def _table(self):
        fs = FileSystem.uniform(4, 8, m=16)
        methods = {
            "Modulo": ModuloDistribution(fs),
            "FX": FXDistribution(fs),
        }
        return largest_response_table(fs, methods, ks=(2, 3), title="T")

    def test_layout(self):
        table = self._table()
        assert table.columns == ("Modulo", "FX", "Optimal")
        assert table.ks == (2, 3)
        assert len(table.rows) == 2

    def test_column_accessor(self):
        table = self._table()
        assert len(table.column("FX")) == 2
        with pytest.raises(AnalysisError):
            table.column("GDM9")

    def test_render_contains_title_and_ks(self):
        text = self._table().render()
        assert text.startswith("T")
        assert "k unspecified" in text

    def test_rejects_method_on_other_filesystem(self):
        fs = FileSystem.uniform(4, 8, m=16)
        other = FileSystem.uniform(4, 8, m=8)
        with pytest.raises(AnalysisError):
            largest_response_table(
                fs, {"FX": FXDistribution(other)}, ks=(2,)
            )

    def test_fx_dominates_modulo_everywhere(self):
        """The paper's qualitative claim on these scenarios."""
        table = self._table()
        for row in table.rows:
            modulo_value, fx_value, optimal_value = row
            assert fx_value <= modulo_value
            assert optimal_value <= fx_value
