"""Tests for FieldSpec / FileSystem (repro.hashing.fields)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FieldValueError, NotPowerOfTwoError
from repro.hashing.fields import FieldSpec, FileSystem


filesystem_strategy = st.builds(
    lambda sizes, m: FileSystem.of(*sizes, m=m),
    st.lists(st.sampled_from([2, 4, 8, 16]), min_size=1, max_size=4),
    st.sampled_from([2, 4, 8, 16, 32]),
)


class TestFieldSpec:
    def test_bits(self):
        assert FieldSpec(8).bits == 3

    def test_domain(self):
        assert list(FieldSpec(4).domain()) == [0, 1, 2, 3]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(NotPowerOfTwoError):
            FieldSpec(6)


class TestFileSystemConstruction:
    def test_of(self):
        fs = FileSystem.of(2, 8, m=4)
        assert fs.field_sizes == (2, 8)
        assert fs.m == 4

    def test_uniform(self):
        fs = FileSystem.uniform(6, 8, m=32)
        assert fs.field_sizes == (8,) * 6

    def test_uniform_rejects_zero_fields(self):
        with pytest.raises(ConfigurationError):
            FileSystem.uniform(0, 8, m=32)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FileSystem(fields=(), num_devices=4)

    def test_rejects_non_power_of_two_m(self):
        with pytest.raises(NotPowerOfTwoError):
            FileSystem.of(4, m=6)

    def test_equality(self):
        assert FileSystem.of(2, 8, m=4) == FileSystem.of(2, 8, m=4)
        assert FileSystem.of(2, 8, m=4) != FileSystem.of(2, 8, m=8)


class TestFileSystemProperties:
    def test_bucket_count(self):
        assert FileSystem.of(2, 8, 4, m=4).bucket_count == 64

    def test_small_and_large_fields(self):
        fs = FileSystem.of(2, 32, 8, m=16)
        assert fs.small_fields() == (0, 2)
        assert fs.large_fields() == (1,)

    def test_describe(self):
        assert FileSystem.of(2, 8, m=4).describe() == "F=(2, 8), M=4"


class TestBuckets:
    def test_enumeration_row_major(self):
        fs = FileSystem.of(2, 2, m=2)
        assert list(fs.buckets()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_check_bucket_arity(self):
        with pytest.raises(FieldValueError):
            FileSystem.of(2, 2, m=2).check_bucket((0,))

    def test_check_bucket_range(self):
        with pytest.raises(FieldValueError):
            FileSystem.of(2, 2, m=2).check_bucket((0, 2))

    @given(filesystem_strategy, st.data())
    def test_bucket_index_round_trip(self, fs, data):
        index = data.draw(st.integers(0, fs.bucket_count - 1))
        bucket = fs.bucket_from_index(index)
        assert fs.bucket_index(bucket) == index

    @given(filesystem_strategy)
    def test_indices_are_a_bijection(self, fs):
        indices = {fs.bucket_index(b) for b in fs.buckets()}
        assert indices == set(range(fs.bucket_count))

    def test_bucket_from_index_out_of_range(self):
        with pytest.raises(FieldValueError):
            FileSystem.of(2, 2, m=2).bucket_from_index(4)
