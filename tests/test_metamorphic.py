"""Metamorphic properties of FX distribution.

Relations that must hold for *any* correct implementation, independent of
expected values — the strongest kind of property test available here:

* every paper transform is GF(2)-linear, so FX's device map is affine:
  ``device(a ^ b) == device(a) ^ device(b) ^ device(0)`` (componentwise
  XOR of bucket addresses),
* permuting fields (with their transforms) permutes nothing observable,
* relabelling one field's values through XOR by a constant permutes devices
  but preserves every histogram shape.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histograms import evaluator_for
from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.query.patterns import all_patterns

_SIZES = st.sampled_from([2, 4, 8, 16])


@st.composite
def fx_cases(draw):
    n = draw(st.integers(2, 4))
    m = draw(st.sampled_from([4, 8, 16, 32]))
    sizes = [draw(_SIZES) for __ in range(n)]
    methods = [
        "I" if s >= m else draw(st.sampled_from(["I", "U", "IU1", "IU2"]))
        for s in sizes
    ]
    return FXDistribution(FileSystem.of(*sizes, m=m), transforms=methods)


class TestAffinity:
    @given(fx_cases(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_device_map_is_affine_over_xor(self, fx, data):
        sizes = fx.filesystem.field_sizes
        a = tuple(data.draw(st.integers(0, s - 1)) for s in sizes)
        b = tuple(data.draw(st.integers(0, s - 1)) for s in sizes)
        combined = tuple((x ^ y) % s for x, y, s in zip(a, b, sizes))
        # (x ^ y) stays in-range because sizes are powers of two
        zero = (0,) * len(sizes)
        assert fx.device_of(combined) == (
            fx.device_of(a) ^ fx.device_of(b) ^ fx.device_of(zero)
        )

    @given(fx_cases())
    @settings(max_examples=30, deadline=None)
    def test_origin_maps_to_zero(self, fx):
        # All four transform families fix 0, so bucket 0...0 -> device 0.
        assert fx.device_of((0,) * fx.filesystem.n_fields) == 0


class TestFieldPermutation:
    @given(fx_cases(), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_permuting_fields_preserves_histograms(self, fx, rng):
        n = fx.filesystem.n_fields
        order = list(range(n))
        rng.shuffle(order)
        permuted_fs = FileSystem.of(
            *(fx.filesystem.field_sizes[i] for i in order),
            m=fx.filesystem.m,
        )
        permuted = FXDistribution(
            permuted_fs,
            transforms=[fx.transforms[i].method for i in order],
        )
        original = evaluator_for(fx)
        mirrored = evaluator_for(permuted)
        position = {field: slot for slot, field in enumerate(order)}
        for pattern in all_patterns(n):
            mirrored_pattern = frozenset(position[i] for i in pattern)
            assert sorted(original.histogram(pattern).tolist()) == sorted(
                mirrored.histogram(mirrored_pattern).tolist()
            )


class TestValueRelabelling:
    @given(fx_cases(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_xor_relabelling_one_field_preserves_shapes(self, fx, data):
        """Replacing field i's values v by v ^ c is a bijection of the
        bucket grid that only composes the device map with a XOR constant,
        so every pattern histogram keeps its sorted shape."""
        fs = fx.filesystem
        i = data.draw(st.integers(0, fs.n_fields - 1))
        c = data.draw(st.integers(0, fs.field_sizes[i] - 1))
        evaluator = evaluator_for(fx)
        for pattern in all_patterns(fs.n_fields):
            baseline = sorted(evaluator.histogram(pattern).tolist())
            counts = [0] * fs.m
            # brute-force the relabelled grid on a small sub-check: the
            # full grid for small systems is fine
            from repro.query.patterns import representative_query

            query = representative_query(fs, pattern)
            for bucket in query.qualified_buckets():
                relabelled = list(bucket)
                relabelled[i] ^= c
                counts[fx.device_of(tuple(relabelled))] += 1
            assert sorted(counts) == baseline
