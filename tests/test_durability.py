"""Tests for the durability layer (``repro.durability``).

Covers the CRC page checksums and corruption detection, the write-ahead
log (framing, torn tails, crash injection), the crash-recovery
byte-identity property at *every* WAL record boundary, scrub-and-repair
from chained replicas, device rebuild with the post-rebuild optimality
check, the ``make_durable_file`` facade, and the ``repro recover`` CLI
group.
"""

import json

import pytest

from repro import obs
from repro.api import make_durable_file
from repro.cli import main
from repro.durability import (
    ChecksummedBucketStore,
    CrashPoint,
    DeviceRebuilder,
    DurableFile,
    Scrubber,
    WalEntry,
    WriteAheadLog,
    page_checksum,
    read_wal,
    recover,
)
from repro.durability.checksummed_store import TAMPERED_RECORD
from repro.errors import (
    ConfigurationError,
    CorruptPageError,
    RecoveryError,
    SimulatedCrashError,
    StorageError,
    WalError,
)
from repro.obs import ManualClock, MonotonicClock, telemetry
from repro.runtime import FaultInjector, FaultPlan
from repro.storage.bucket_store import content_digest


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.configure(enabled=True, clock=MonotonicClock(), reset=True)
    yield
    obs.configure(enabled=True, clock=MonotonicClock(), reset=True)


def _records(count, domain=4):
    # Sweeps all domain^2 buckets before repeating, so every device of a
    # replicated 8-way layout holds pages once count >= 16.
    return [
        (i % domain, (i // domain) % domain) for i in range(count)
    ]


def _durable(records=24, devices=8, **opts):
    durable = make_durable_file("fx", fields=(4, 4), devices=devices, **opts)
    durable.insert_all(_records(records))
    return durable


# ----------------------------------------------------------------------
# Checksummed pages
# ----------------------------------------------------------------------
class TestChecksummedStore:
    def test_clean_reads_verify(self):
        store = ChecksummedBucketStore()
        store.insert((0, 1), (5, 6))
        store.insert((0, 1), (7, 8))
        assert store.records_in((0, 1)) == ((5, 6), (7, 8))
        assert store.verify_bucket((0, 1))
        assert store.checksum_count == 1
        store.check_invariants()

    def test_tamper_detected_on_read(self):
        store = ChecksummedBucketStore()
        store.insert((2,), (1,))
        store.corrupt_bucket((2,), kind="tamper")
        assert not store.verify_bucket((2,))
        with pytest.raises(CorruptPageError):
            store.records_in((2,))
        with pytest.raises(CorruptPageError):
            store.check_invariants()

    def test_drop_leaves_checksum_behind(self):
        store = ChecksummedBucketStore()
        store.insert((3,), (9,))
        store.corrupt_bucket((3,), kind="drop")
        assert not store.has_bucket((3,))
        assert store.tracked_buckets() == [(3,)]
        with pytest.raises(CorruptPageError):
            store.records_in((3,))

    def test_mutations_keep_checksums_current(self):
        store = ChecksummedBucketStore()
        store.insert((0,), (1,))
        store.insert((0,), (2,))
        assert store.delete((0,), (1,))
        assert store.records_in((0,)) == ((2,),)
        store.replace_bucket((0,), [(7,), (8,)])
        assert store.records_in((0,)) == ((7,), (8,))
        store.replace_bucket((0,), [])
        assert store.records_in((0,)) == ()
        assert store.checksum_count == 0

    def test_deleting_last_record_clears_checksum(self):
        store = ChecksummedBucketStore()
        store.insert((1,), (4,))
        store.delete((1,), (4,))
        assert store.checksum_count == 0
        assert store.records_in((1,)) == ()

    def test_tampered_record_is_distinctive(self):
        store = ChecksummedBucketStore()
        store.insert((0,), (1, 2))
        store.corrupt_bucket((0,))
        assert store._buckets[(0,)][0] == TAMPERED_RECORD

    def test_corrupting_absent_bucket_rejected(self):
        store = ChecksummedBucketStore()
        with pytest.raises(StorageError):
            store.corrupt_bucket((9,))
        store.insert((0,), (1,))
        with pytest.raises(ConfigurationError):
            store.corrupt_bucket((0,), kind="gamma-ray")

    def test_checksum_is_content_sensitive(self):
        assert page_checksum((0,), ((1,),)) != page_checksum((0,), ((2,),))
        assert page_checksum((0,), ((1,),)) != page_checksum((1,), ((1,),))


class TestContentDigest:
    def test_layout_independent(self):
        a = [((0,), ((1,), (2,))), ((1,), ((3,),))]
        b = list(reversed(a))
        assert content_digest(a) == content_digest(b)

    def test_content_sensitive(self):
        a = [((0,), ((1,),))]
        b = [((0,), ((2,),))]
        assert content_digest(a) != content_digest(b)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWal:
    def test_round_trip(self):
        wal = WriteAheadLog()
        wal.append("insert", (1, 2))
        wal.append("delete", (1, 2))
        wal.append("move", (3, 0))
        entries, torn = read_wal(wal.to_bytes())
        assert torn == 0
        assert [(e.op, e.record) for e in entries] == [
            ("insert", (1, 2)),
            ("delete", (1, 2)),
            ("move", (3, 0)),
        ]

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            WalEntry("truncate", (1,))

    def test_malformed_payload_rejected(self):
        with pytest.raises(WalError):
            WalEntry.from_payload(b"not json")
        with pytest.raises(WalError):
            WalEntry.from_payload(b'{"op": 3, "record": []}')

    def test_torn_final_frame_tolerated(self):
        wal = WriteAheadLog()
        wal.append("insert", (1,))
        wal.append("insert", (2,))
        data = wal.to_bytes()
        second_frame = WalEntry("insert", (2,)).frame()
        for cut in range(1, len(second_frame)):
            entries, torn = read_wal(data[:-cut])
            assert len(entries) == 1
            assert entries[0].record == (1,)
            assert torn == len(second_frame) - cut

    def test_mid_log_corruption_raises(self):
        wal = WriteAheadLog()
        wal.append("insert", (1,))
        wal.append("insert", (2,))
        data = bytearray(wal.to_bytes())
        data[10] ^= 0xFF  # inside the first frame's payload
        with pytest.raises(WalError):
            read_wal(bytes(data))

    def test_final_frame_crc_failure_is_torn_tail(self):
        wal = WriteAheadLog()
        wal.append("insert", (1,))
        wal.append("insert", (2,))
        data = bytearray(wal.to_bytes())
        data[-1] ^= 0xFF
        entries, torn = read_wal(bytes(data))
        assert len(entries) == 1
        assert torn > 0

    def test_from_bytes_truncates_torn_tail(self):
        wal = WriteAheadLog()
        wal.append("insert", (1,))
        frame = WalEntry("insert", (2,)).frame()
        data = wal.to_bytes() + frame[: len(frame) // 2]
        reopened = WriteAheadLog.from_bytes(data)
        assert reopened.entry_count == 1
        assert reopened.torn_bytes_discarded == len(frame) // 2
        reopened.append("insert", (3,))
        entries, torn = reopened.scan()
        assert torn == 0
        assert [e.record for e in entries] == [(1,), (3,)]

    def test_crash_point_fires_at_boundary(self):
        wal = WriteAheadLog(crash=CrashPoint(2))
        wal.append("insert", (1,))
        wal.append("insert", (2,))
        with pytest.raises(SimulatedCrashError):
            wal.append("insert", (3,))
        assert wal.crashed
        assert wal.entry_count == 2
        with pytest.raises(SimulatedCrashError):
            wal.append("insert", (4,))

    def test_crash_with_torn_tail_leaves_half_frame(self):
        wal = WriteAheadLog(crash=CrashPoint(1, torn_tail=True))
        wal.append("insert", (1,))
        clean_size = wal.byte_size
        with pytest.raises(SimulatedCrashError):
            wal.append("insert", (2,))
        assert wal.byte_size > clean_size
        entries, torn = wal.scan()
        assert len(entries) == 1 and torn > 0

    def test_negative_crash_boundary_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashPoint(-1)


# ----------------------------------------------------------------------
# Crash recovery byte-identity (the acceptance property)
# ----------------------------------------------------------------------
class TestCrashRecovery:
    RECORDS = _records(20)

    def _baseline_digests(self, **opts):
        durable = make_durable_file("fx", fields=(4, 4), devices=8, **opts)
        digests = [durable.state_digest()]
        for record in self.RECORDS:
            durable.insert(record)
            digests.append(durable.state_digest())
        return digests

    @pytest.mark.parametrize("torn_tail", [False, True])
    def test_byte_identity_at_every_boundary(self, torn_tail):
        digests = self._baseline_digests()
        for k in range(len(self.RECORDS) + 1):
            crashed = make_durable_file(
                "fx", fields=(4, 4), devices=8,
                crash_after=k, torn_tail=torn_tail,
            )
            try:
                crashed.insert_all(self.RECORDS)
            except SimulatedCrashError:
                pass
            assert crashed.wal.entry_count == k
            fresh = make_durable_file("fx", fields=(4, 4), devices=8)
            report = recover(crashed.wal, fresh.file)
            assert report.entries_replayed == k
            assert report.had_torn_tail == (torn_tail and k < len(self.RECORDS))
            assert fresh.state_digest() == digests[k]
            assert report.digest == digests[k]

    def test_recovery_from_raw_bytes(self):
        digests = self._baseline_digests()
        crashed = make_durable_file(
            "fx", fields=(4, 4), devices=8, crash_after=7, torn_tail=True
        )
        with pytest.raises(SimulatedCrashError):
            crashed.insert_all(self.RECORDS)
        fresh = make_durable_file("fx", fields=(4, 4), devices=8)
        report = recover(crashed.wal.to_bytes(), fresh.file)
        assert report.entries_replayed == 7
        assert report.had_torn_tail
        assert fresh.state_digest() == digests[7]

    def test_unreplicated_recovery(self):
        durable = make_durable_file(
            "fx", fields=(4, 4), devices=8, replicate=False, crash_after=5
        )
        with pytest.raises(SimulatedCrashError):
            durable.insert_all(self.RECORDS)
        baseline = make_durable_file(
            "fx", fields=(4, 4), devices=8, replicate=False
        )
        baseline.insert_all(self.RECORDS[:5])
        fresh = make_durable_file(
            "fx", fields=(4, 4), devices=8, replicate=False
        )
        durable.recover_into(fresh.file)
        assert fresh.state_digest() == baseline.state_digest()

    def test_deletes_replay(self):
        durable = _durable(records=10)
        durable.delete(self.RECORDS[0])
        fresh = make_durable_file("fx", fields=(4, 4), devices=8)
        report = recover(durable.wal, fresh.file)
        assert report.deletes == 1
        assert fresh.state_digest() == durable.state_digest()
        assert fresh.record_count == durable.record_count

    def test_move_entries_are_noops(self):
        wal = WriteAheadLog()
        wal.append("insert", (1, 2))
        wal.append("move", (1, 2))
        fresh = make_durable_file("fx", fields=(4, 4), devices=8)
        report = recover(wal, fresh.file)
        assert report.moves_skipped == 1
        assert fresh.record_count == 1

    def test_recovery_target_must_be_fresh(self):
        durable = _durable(records=4)
        with pytest.raises(RecoveryError):
            recover(durable.wal, durable.file)

    def test_arm_crash_mid_life(self):
        durable = _durable(records=4)
        durable.arm_crash(durable.wal.entry_count + 2)
        durable.insert((0, 0))
        durable.insert((1, 1))
        with pytest.raises(SimulatedCrashError):
            durable.insert((2, 2))
        assert durable.crashed

    def test_recovery_emits_span_and_counters(self):
        durable = make_durable_file(
            "fx", fields=(4, 4), devices=8, crash_after=3, torn_tail=True
        )
        with pytest.raises(SimulatedCrashError):
            durable.insert_all(self.RECORDS)
        fresh = make_durable_file("fx", fields=(4, 4), devices=8)
        recover(durable.wal, fresh.file)
        spans = [r for r in telemetry().events.records()
                 if r["type"] == "span" and r["name"] == "recovery.replay"]
        assert len(spans) == 1
        assert any(e["name"] == "wal.torn_tail" for e in spans[0]["events"])
        counters = telemetry().metrics.snapshot().counters
        assert counters["durability.wal_replayed"] == 3
        assert counters["durability.torn_tails"] == 1


# ----------------------------------------------------------------------
# Fault-plan corruption and crash kinds (satellite: golden draws)
# ----------------------------------------------------------------------
class TestCorruptionFaults:
    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(corruption_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(corruption_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(crash_after_writes=-1)
        assert FaultPlan.corrupt(0.1).corruption_rate == 0.1
        assert FaultPlan.crash(5).crash_after_writes == 5
        assert not FaultPlan.corrupt(0.1).is_trivial
        assert not FaultPlan.crash(0).is_trivial
        assert "corruption" in FaultPlan.corrupt(0.1).describe()
        assert "crash" in FaultPlan.crash(5).describe()

    def test_corruption_draws_deterministic(self):
        injector = FaultInjector(FaultPlan.corrupt(0.3, seed=9), 8)
        again = FaultInjector(FaultPlan.corrupt(0.3, seed=9), 8)
        draws = [
            injector.page_corrupted(d, p)
            for d in range(8) for p in range(20)
        ]
        assert draws == [
            again.page_corrupted(d, p) for d in range(8) for p in range(20)
        ]
        assert any(draws) and not all(draws)

    def test_corruption_kind_partitions_draws(self):
        injector = FaultInjector(FaultPlan.corrupt(0.4, seed=3), 8)
        kinds = {
            injector.page_corruption_kind(d, p)
            for d in range(8) for p in range(30)
        }
        assert kinds == {None, "drop", "tamper"}
        for d in range(8):
            for p in range(30):
                kind = injector.page_corruption_kind(d, p)
                assert (kind is not None) == injector.page_corrupted(d, p)

    def test_sweep_index_changes_draws(self):
        injector = FaultInjector(FaultPlan.corrupt(0.3, seed=1), 8)
        first = [injector.page_corrupted(d, p, 0)
                 for d in range(8) for p in range(30)]
        second = [injector.page_corrupted(d, p, 1)
                  for d in range(8) for p in range(30)]
        assert first != second

    def test_zero_rate_never_corrupts(self):
        injector = FaultInjector(FaultPlan.none(), 8)
        assert not any(
            injector.page_corrupted(d, p) for d in range(8) for p in range(50)
        )
        assert injector.page_corruption_kind(0, 0) is None

    def test_crash_boundary_exposed(self):
        assert FaultInjector(FaultPlan.crash(4), 8).crash_boundary() == 4
        assert FaultInjector(FaultPlan.none(), 8).crash_boundary() is None

    def test_golden_transient_draws_unchanged(self):
        """The seeded transient-fault stream must stay byte-identical
        across extensions of FaultPlan: these 120 draws were captured
        before corruption/crash kinds existed."""
        injector = FaultInjector(
            FaultPlan(seed=42, transient_error_rate=0.2), 8
        )
        bits = "".join(
            str(int(injector.attempt_fails(d, q, a)))
            for d in range(8) for q in range(5) for a in range(1, 4)
        )
        assert bits == (
            "0000000000000001000100001010000000010100000000010000000100001"
            "10000000000010001000000000000000000100000000000100010000000"
        )


# ----------------------------------------------------------------------
# Scrub and repair
# ----------------------------------------------------------------------
class TestScrubber:
    def test_clean_file_sweeps_clean(self):
        durable = _durable()
        report = Scrubber(durable.file).sweep()
        assert report.clean and report.healed
        assert report.pages_checked > 0
        assert report.devices_swept == 8

    def test_detects_and_repairs_injected_damage(self):
        durable = _durable(records=200)
        scrubber = Scrubber(durable.file)
        injector = FaultInjector(FaultPlan.corrupt(0.1, seed=7), 8)
        damaged = scrubber.inject(injector)
        assert damaged, "rate 0.1 over ~64 pages should damage something"
        report = scrubber.sweep()
        assert report.bad_pages == len(damaged)
        assert report.repaired_pages == len(damaged)
        assert report.healed
        verify = Scrubber(durable.file).sweep()
        assert verify.clean
        durable.check_invariants()

    def test_repair_restores_exact_content(self):
        durable = _durable(records=120)
        before = durable.state_digest()
        scrubber = Scrubber(durable.file)
        damaged = scrubber.inject(
            FaultInjector(FaultPlan.corrupt(0.15, seed=2), 8)
        )
        assert damaged
        scrubber.sweep()
        assert durable.state_digest() == before

    def test_injection_is_deterministic(self):
        plan = FaultPlan.corrupt(0.1, seed=5)
        first = Scrubber(_durable(records=150).file).inject(
            FaultInjector(plan, 8)
        )
        second = Scrubber(_durable(records=150).file).inject(
            FaultInjector(plan, 8)
        )
        assert first == second

    def test_both_replicas_bad_is_unrepairable(self):
        durable = _durable(records=60)
        file = durable.file
        bucket = next(iter(file.devices[0].store.buckets()), None)
        if bucket is None:
            pytest.skip("device 0 holds no buckets for this workload")
        primary, backup = file.scheme.replicas_of(bucket)
        file.devices[primary].store.corrupt_bucket(bucket, kind="tamper")
        file.devices[backup].store.corrupt_bucket(bucket, kind="tamper")
        report = Scrubber(file).sweep()
        assert not report.healed
        assert (primary, tuple(bucket)) in report.unrepairable
        assert (backup, tuple(bucket)) in report.unrepairable

    def test_dropped_page_found_via_partner(self):
        durable = _durable(records=60)
        file = durable.file
        bucket = next(iter(file.devices[0].store.buckets()))
        file.devices[0].store.corrupt_bucket(bucket, kind="drop")
        report = Scrubber(file).sweep()
        assert report.missing_pages >= 1
        assert report.healed
        assert file.devices[0].store.verify_bucket(bucket)

    def test_sweep_emits_span_events_and_counters(self):
        durable = _durable(records=120)
        scrubber = Scrubber(durable.file)
        damaged = scrubber.inject(
            FaultInjector(FaultPlan.corrupt(0.1, seed=7), 8)
        )
        scrubber.sweep()
        spans = [r for r in telemetry().events.records()
                 if r["type"] == "span" and r["name"] == "scrub.sweep"]
        assert len(spans) == 1
        detected = [e for e in spans[0]["events"]
                    if e["name"] == "corruption.detected"]
        repaired = [e for e in spans[0]["events"]
                    if e["name"] == "page.repaired"]
        assert len(detected) == len(damaged)
        assert len(repaired) == len(damaged)
        counters = telemetry().metrics.snapshot().counters
        assert counters["durability.corruption_detected"] == len(damaged)
        assert counters["durability.pages_repaired"] == len(damaged)

    def test_requires_replicated_checksummed_file(self):
        from repro.core.fx import FXDistribution
        from repro.hashing.fields import FileSystem
        from repro.storage.parallel_file import PartitionedFile

        fs = FileSystem.of(4, 4, m=8)
        with pytest.raises(ConfigurationError):
            Scrubber(PartitionedFile(FXDistribution(fs)))
        plain = make_durable_file(
            "fx", fields=(4, 4), devices=8, checksummed=False
        )
        with pytest.raises(ConfigurationError):
            Scrubber(plain.file)

    def test_injector_device_count_must_match(self):
        durable = _durable()
        with pytest.raises(ConfigurationError):
            Scrubber(durable.file).inject(
                FaultInjector(FaultPlan.corrupt(0.1), 4)
            )


# ----------------------------------------------------------------------
# Device rebuild
# ----------------------------------------------------------------------
class TestDeviceRebuilder:
    def test_rebuild_restores_digest(self):
        durable = _durable(records=200)
        before = durable.state_digest()
        durable.file.lose_device(3)
        assert durable.state_digest() != before
        report = DeviceRebuilder(durable.file).rebuild(3)
        assert durable.state_digest() == before
        assert report.buckets_restored > 0
        assert report.records_restored > 0
        assert 3 not in report.source_devices
        durable.check_invariants()

    def test_rebuild_verifies_optimality(self):
        from repro.query.workload import QueryWorkload, WorkloadSpec

        durable = _durable(records=200)
        durable.file.lose_device(5)
        queries = QueryWorkload(
            durable.filesystem,
            WorkloadSpec(exclude_trivial=True, seed=1),
        ).take(15)
        report = DeviceRebuilder(durable.file).rebuild(5, queries=queries)
        assert report.optimality_verified is True
        assert report.optimality_queries == 15
        assert "strict-optimal" in report.summary()

    def test_rebuilt_file_answers_queries(self):
        durable = _durable(records=100)
        expected = sorted(durable.search({0: 1}).records)
        durable.file.lose_device(0)
        DeviceRebuilder(durable.file).rebuild(0)
        assert sorted(durable.search({0: 1}).records) == expected

    def test_corrupt_source_aborts_rebuild(self):
        durable = _durable(records=200)
        file = durable.file
        file.lose_device(2)
        # Corrupt a surviving replica of a bucket device 2 must re-host.
        for partner in file.devices:
            if partner.device_id == 2:
                continue
            for bucket in partner.store.buckets():
                if 2 in file.scheme.replicas_of(bucket):
                    partner.store.corrupt_bucket(bucket, kind="tamper")
                    with pytest.raises(CorruptPageError):
                        DeviceRebuilder(file).rebuild(2)
                    return
        pytest.fail("no surviving replica found to corrupt")

    def test_rebuild_emits_span_and_counters(self):
        durable = _durable(records=100)
        durable.file.lose_device(1)
        report = DeviceRebuilder(durable.file).rebuild(1)
        spans = [r for r in telemetry().events.records()
                 if r["type"] == "span" and r["name"] == "rebuild.device"]
        assert len(spans) == 1
        assert any(e["name"] == "device.rebuilt" for e in spans[0]["events"])
        counters = telemetry().metrics.snapshot().counters
        assert counters["durability.devices_rebuilt"] == 1
        assert (
            counters["durability.records_restored"]
            == report.records_restored
        )

    def test_requires_replicated_file(self):
        plain = make_durable_file(
            "fx", fields=(4, 4), devices=8, replicate=False
        )
        with pytest.raises(RecoveryError):
            DeviceRebuilder(plain.file)

    def test_out_of_range_device_rejected(self):
        durable = _durable()
        with pytest.raises(StorageError):
            DeviceRebuilder(durable.file).rebuild(99)
        with pytest.raises(StorageError):
            durable.file.lose_device(99)


# ----------------------------------------------------------------------
# The construction facade
# ----------------------------------------------------------------------
class TestMakeDurableFile:
    def test_default_is_replicated_and_checksummed(self):
        durable = make_durable_file("fx", fields=(4, 4), devices=8)
        from repro.storage.replicated_file import ReplicatedFile

        assert isinstance(durable.file, ReplicatedFile)
        assert all(
            isinstance(d.store, ChecksummedBucketStore)
            for d in durable.devices
        )

    def test_unreplicated_variant(self):
        from repro.storage.parallel_file import PartitionedFile

        durable = make_durable_file(
            "modulo", fields=(4, 4), devices=8, replicate=False
        )
        assert isinstance(durable.file, PartitionedFile)
        assert isinstance(durable.devices[0].store, ChecksummedBucketStore)

    def test_crash_after_arms_the_wal(self):
        durable = make_durable_file(
            "fx", fields=(4, 4), devices=8, crash_after=2
        )
        assert durable.wal.crash == CrashPoint(2, torn_tail=False)

    def test_query_results_match_plain_file(self):
        durable = _durable(records=64)
        from repro.core.fx import FXDistribution
        from repro.storage.parallel_file import PartitionedFile

        plain = PartitionedFile(FXDistribution(durable.filesystem))
        plain.insert_all(_records(64))
        assert sorted(durable.search({1: 2}).records) == sorted(
            plain.search({1: 2}).records
        )


# ----------------------------------------------------------------------
# Migration audit entries
# ----------------------------------------------------------------------
class TestMigrationWal:
    def test_migration_logs_moves(self):
        from repro.core.fx import FXDistribution
        from repro.distribution.modulo import ModuloDistribution
        from repro.hashing.fields import FileSystem
        from repro.storage.migration import Migration
        from repro.storage.parallel_file import PartitionedFile

        fs = FileSystem.of(4, 8, m=4)
        pf = PartitionedFile(ModuloDistribution(fs))
        pf.insert_all([(i % 4, i % 8) for i in range(50)])
        wal = WriteAheadLog()
        report = Migration(pf, FXDistribution(fs), wal=wal).apply()
        assert wal.entry_count == report.records_moved
        assert all(e.op == "move" for e in wal.entries())
        spans = [r for r in telemetry().events.records()
                 if r["type"] == "span" and r["name"] == "migration.apply"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["records_moved"] == report.records_moved


# ----------------------------------------------------------------------
# The recover CLI group
# ----------------------------------------------------------------------
class TestRecoverCli:
    def test_scrub_json(self, capsys):
        code = main([
            "recover", "scrub", "--fields", "4,4", "--devices", "8",
            "--records", "200", "--corruption-rate", "0.05", "--json",
        ])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["ok"]
        assert data["verify_clean"]
        assert data["sweep"]["repaired_pages"] == data["pages_damaged"]

    def test_replay_all_offsets_json(self, capsys):
        code = main([
            "recover", "replay", "--fields", "4,4", "--devices", "8",
            "--records", "12", "--all-offsets", "--torn-tail", "--json",
        ])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["byte_identical"]
        assert data["boundaries_tested"] == 13
        assert data["torn_tails_discarded"] == 12

    def test_replay_single_offset_table(self, capsys):
        code = main([
            "recover", "replay", "--fields", "4,4", "--devices", "8",
            "--records", "16", "--crash-after", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "byte-identical" in out

    def test_rebuild_json(self, capsys):
        code = main([
            "recover", "rebuild", "--fields", "4,4", "--devices", "8",
            "--records", "200", "--lose", "2", "--queries", "10", "--json",
        ])
        data = json.loads(capsys.readouterr().out)
        assert code == 0
        assert data["digest_identical"]
        assert data["optimality_verified"] is True
        assert data["device"] == 2

    def test_report_deterministic_json(self, capsys):
        argv = [
            "recover", "report", "--fields", "4,4", "--devices", "8",
            "--records", "32", "--deterministic-clock", "--json",
        ]
        code = main(argv)
        first = capsys.readouterr().out
        assert code == 0
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        data = json.loads(first)
        assert data["ok"]
        assert data["counters"]["durability.wal_replayed"] > 0

    def test_report_table(self, capsys):
        code = main([
            "recover", "report", "--fields", "4,4", "--devices", "8",
            "--records", "32",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Durability health report" in out
        assert "healthy" in out
