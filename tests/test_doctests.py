"""Run every doctest in the library so docstring examples stay truthful."""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for __, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


def test_module_discovery_found_the_library():
    assert "repro.core.fx" in MODULES
    assert len(MODULES) > 30


@pytest.mark.parametrize("module_name", MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
