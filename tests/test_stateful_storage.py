"""Stateful (rule-based) testing of the storage layer.

Hypothesis drives arbitrary interleavings of inserts, deletes, searches and
invariant checks against a :class:`PartitionedFile`, mirrored into a plain
list model.  Catches cross-operation bugs (lost records after delete,
misrouting after repeated mutation) that example-based tests miss.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.fx import FXDistribution
from repro.hashing.fields import FileSystem
from repro.storage.btree_store import BTreeBucketStore
from repro.storage.executor import QueryExecutor
from repro.storage.parallel_file import PartitionedFile


class PartitionedFileMachine(RuleBasedStateMachine):
    """Model-checks PartitionedFile against a list of live records."""

    records = Bundle("records")

    @initialize(use_btree=st.booleans())
    def setup(self, use_btree):
        fs = FileSystem.of(4, 8, m=4)
        factory = (lambda: BTreeBucketStore(t=2)) if use_btree else None
        self.file = PartitionedFile(FXDistribution(fs), store_factory=factory)
        self.model: list[tuple] = []

    @rule(
        target=records,
        key=st.integers(0, 50),
        tag=st.sampled_from(["a", "b", "c"]),
    )
    def insert(self, key, tag):
        record = (key, tag)
        self.file.insert(record)
        self.model.append(record)
        return record

    @rule(record=records)
    def delete(self, record):
        expected = record in self.model
        assert self.file.delete(record) == expected
        if expected:
            self.model.remove(record)

    @rule(key=st.integers(0, 50))
    def search_by_first_attribute(self, key):
        result = self.file.search({0: key})
        # every live record with this attribute must be found (hash
        # collisions may add extra candidates, never remove true matches)
        for record in self.model:
            if record[0] == key:
                assert record in result.records

    @rule()
    def full_scan_finds_everything(self):
        fs = self.file.filesystem
        from repro.query.partial_match import PartialMatchQuery

        result = QueryExecutor(self.file).execute(
            PartialMatchQuery.full_scan(fs)
        )
        assert sorted(map(str, result.records)) == sorted(
            map(str, self.model)
        )

    @invariant()
    def counts_and_placement_consistent(self):
        assert self.file.record_count == len(self.model)
        self.file.check_invariants()


PartitionedFileMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestPartitionedFileStateful = PartitionedFileMachine.TestCase
