"""Tests for the adaptive declustering loop (bridge, score, hot-swap).

The scenario used throughout: ``F=(2, 2, 2, 2), M=16`` has four small
fields, so (Sung's impossibility) no assignment is perfect for *all*
patterns — the uniform-optimal assignment ``I,U,IU1,IU2`` fails on the
pattern leaving field 3 specified (load factor 2.0), while ``I,U,IU2,I``
is strict optimal on every pattern of the skewed mix below.  The mix is
therefore one the uniform choice serves at E[load factor] 1.5 and the
adaptive search must serve at 1.0, the lower bound.
"""

from __future__ import annotations

import itertools
import json
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.adaptive import (
    AdaptivePlan,
    EmpiricalQueryModel,
    adaptive_transform_search,
    apply_plan,
    content_digest_of,
    load_profile,
    mix_lower_bound,
    pattern_to_unspecified,
    representative_queries,
    score_method,
    unspecified_to_pattern,
)
from repro.analysis.query_model import IndependenceModel
from repro.analysis.skew import (
    expected_load_factor,
    pattern_load_factor,
)
from repro.api import make_durable_file
from repro.cli import main
from repro.core.fx import FXDistribution
from repro.durability.durable_file import recover
from repro.errors import AnalysisError, ReproError, SimulatedCrashError
from repro.hashing.fields import FileSystem
from repro.obs.profile import QueryMixProfile, pattern_of_query
from repro.query.patterns import all_patterns, representative_query
from repro.storage.parallel_file import PartitionedFile

FIELDS = (2, 2, 2, 2)
DEVICES = 16
#: Uniform-optimal assignment for FIELDS/DEVICES (what `search` deploys).
UNIFORM_BEST = ("I", "U", "IU1", "IU2")
#: Skewed mix: dominated by queries specifying only field 3 — the one
#: pattern UNIFORM_BEST serves at twice the optimal load.
MIX = {"***1": 50, "**11": 20, "*1*1": 15, "1**1": 15}


def _fs() -> FileSystem:
    return FileSystem.of(*FIELDS, m=DEVICES)


def _baseline(fs: FileSystem) -> FXDistribution:
    return FXDistribution(fs, transforms=list(UNIFORM_BEST))


def _model(fs: FileSystem) -> EmpiricalQueryModel:
    return EmpiricalQueryModel.from_counts(MIX, fs.n_fields)


def _records(n: int = 64, seed: int = 7) -> list[tuple[int, ...]]:
    rng = random.Random(seed)
    return [
        tuple(rng.randrange(size) for size in FIELDS) for __ in range(n)
    ]


@pytest.fixture
def telemetry_on():
    obs.reset_telemetry()
    obs.configure(enabled=True)
    yield
    obs.reset_telemetry()


# ======================================================================
# Pattern bridge
# ======================================================================
class TestPatternBridge:
    @pytest.mark.parametrize("n_fields", [2, 3, 4])
    def test_round_trip_over_all_patterns(self, n_fields):
        for pattern in all_patterns(n_fields):
            indicator = unspecified_to_pattern(pattern, n_fields)
            assert len(indicator) == n_fields
            assert set(indicator) <= {"1", "*"}
            assert pattern_to_unspecified(indicator, n_fields) == pattern

    @pytest.mark.parametrize("n_fields", [2, 3, 4])
    def test_round_trip_from_indicator_side(self, n_fields):
        for cells in itertools.product("1*", repeat=n_fields):
            indicator = "".join(cells)
            pattern = pattern_to_unspecified(indicator, n_fields)
            assert unspecified_to_pattern(pattern, n_fields) == indicator

    @pytest.mark.parametrize("n_fields", [2, 3, 4])
    def test_agrees_with_observed_pattern_of_query(self, n_fields):
        """The obs layer's canonical pattern of a live query converts to
        exactly the frozenset the analysis layer would sweep."""
        fs = FileSystem.of(*(2,) * n_fields, m=4)
        for pattern in all_patterns(n_fields):
            query = representative_query(fs, pattern)
            assert (
                pattern_to_unspecified(pattern_of_query(query), n_fields)
                == pattern
            )

    @given(st.lists(st.sampled_from("1*"), min_size=2, max_size=4))
    def test_property_round_trip(self, cells):
        indicator = "".join(cells)
        n_fields = len(indicator)
        pattern = pattern_to_unspecified(indicator, n_fields)
        assert pattern == frozenset(
            i for i, cell in enumerate(indicator) if cell == "*"
        )
        assert unspecified_to_pattern(pattern, n_fields) == indicator

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            pattern_to_unspecified("1*1", 4)

    def test_bad_character_rejected(self):
        with pytest.raises(AnalysisError):
            pattern_to_unspecified("1x1", 3)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(AnalysisError):
            unspecified_to_pattern(frozenset({3}), 3)


# ======================================================================
# Empirical query model
# ======================================================================
class TestEmpiricalQueryModel:
    def test_weights_normalised(self):
        model = EmpiricalQueryModel.from_counts({"1*": 3, "*1": 1}, 2)
        assert model.pattern_weight(frozenset({1}), 2) == pytest.approx(0.75)
        assert model.pattern_weight(frozenset({0}), 2) == pytest.approx(0.25)

    def test_unobserved_pattern_weighs_zero(self):
        model = EmpiricalQueryModel.from_counts({"1*": 1}, 2)
        assert model.pattern_weight(frozenset(), 2) == 0.0

    def test_patterns_enumerate_support_deterministically(self):
        model = _model(_fs())
        listed = list(model.patterns(4))
        assert listed == sorted(
            listed, key=lambda pattern: (len(pattern), sorted(pattern))
        )
        assert len(listed) == len(MIX)

    def test_zero_count_dropped(self):
        model = EmpiricalQueryModel.from_counts({"1*": 1, "*1": 0}, 2)
        assert list(model.patterns(2)) == [frozenset({1})]

    def test_empty_and_zero_total_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalQueryModel({}, 2)
        with pytest.raises(AnalysisError):
            EmpiricalQueryModel.from_counts({"1*": 0}, 2)

    def test_negative_weight_rejected(self):
        with pytest.raises(AnalysisError):
            EmpiricalQueryModel({frozenset({0}): -1.0}, 2)

    def test_field_count_mismatch_rejected(self):
        model = EmpiricalQueryModel.from_counts({"1*": 1}, 2)
        with pytest.raises(AnalysisError):
            model.pattern_weight(frozenset({0}), 3)
        with pytest.raises(AnalysisError):
            list(model.patterns(3))

    def test_frequencies_round_trip(self):
        model = _model(_fs())
        total = sum(MIX.values())
        assert model.frequencies() == {
            pattern: pytest.approx(count / total)
            for pattern, count in MIX.items()
        }

    def test_from_profile_single_tenant_and_pooled(self):
        profile = QueryMixProfile()
        profile.tenant("acme").record("1*", 3)
        profile.tenant("zeta").record("*1", 1)
        profile.observed = 4
        pooled = EmpiricalQueryModel.from_profile(profile, 2)
        assert pooled.pattern_weight(frozenset({1}), 2) == pytest.approx(0.75)
        acme = EmpiricalQueryModel.from_profile(profile, 2, tenant="acme")
        assert acme.pattern_weight(frozenset({1}), 2) == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            EmpiricalQueryModel.from_profile(profile, 2, tenant="nobody")

    def test_plugs_into_expected_load_factor(self):
        """The model= hook reproduces the hand-computed weighted sum."""
        fs = _fs()
        method = _baseline(fs)
        model = _model(fs)
        expected = sum(
            (count / 100) * pattern_load_factor(
                method, pattern_to_unspecified(indicator, 4)
            )
            for indicator, count in MIX.items()
        )
        assert expected_load_factor(method, model=model) == pytest.approx(
            expected
        )
        assert expected == pytest.approx(1.5)


# ======================================================================
# Mix scoring and the lower bound
# ======================================================================
class TestMixScore:
    def test_lower_bound_hand_computed(self):
        fs = _fs()
        # every observed pattern qualifies at most 8 of 16 devices' worth
        # of buckets, so each floor is ceil(q/16) = 1 and the bound is 1.
        assert mix_lower_bound(fs, _model(fs)) == pytest.approx(1.0)

    def test_lower_bound_with_large_patterns(self):
        fs = FileSystem.of(4, 4, m=4)
        model = EmpiricalQueryModel.from_counts({"**": 1, "1*": 1}, 2)
        # "**" qualifies 16 buckets -> floor 4; "1*" qualifies 4 -> floor 1
        assert mix_lower_bound(fs, model) == pytest.approx((4 + 1) / 2)

    def test_score_baseline_known_numbers(self):
        fs = _fs()
        score = score_method(_baseline(fs), _model(fs))
        assert score.expected_load_factor == pytest.approx(1.5)
        assert score.lower_bound == pytest.approx(1.0)
        assert score.gap == pytest.approx(1.5)
        assert score.optimal_weight == pytest.approx(0.5)

    def test_gap_never_below_one(self):
        fs = _fs()
        model = _model(fs)
        for combo in itertools.product(("I", "U", "IU1", "IU2"), repeat=2):
            method = FXDistribution(
                fs, transforms=["I", "U", combo[0], combo[1]]
            )
            assert score_method(method, model).gap >= 1.0 - 1e-12

    def test_independence_model_also_accepted(self):
        fs = _fs()
        score = score_method(_baseline(fs), IndependenceModel(0.5))
        assert score.expected_load_factor == pytest.approx(
            expected_load_factor(_baseline(fs), p=0.5)
        )


# ======================================================================
# Adaptive search
# ======================================================================
class TestAdaptiveSearch:
    def test_beats_uniform_baseline_on_skewed_mix(self):
        fs = _fs()
        plan = adaptive_transform_search(fs, _model(fs), baseline=_baseline(fs))
        assert plan.baseline.expected_load_factor == pytest.approx(1.5)
        assert plan.candidate.expected_load_factor == pytest.approx(1.0)
        assert plan.candidate.gap == pytest.approx(1.0)
        assert plan.worthwhile
        assert plan.improvement == pytest.approx(0.5)
        # exhaustive over 4 small fields: 4^4 assignments
        assert plan.evaluations == 256
        assert 0.0 < plan.moved_fraction <= 1.0

    def test_deterministic_per_seed(self):
        fs = _fs()
        first = adaptive_transform_search(
            fs, _model(fs), baseline=_baseline(fs), seed=3, linear_draws=4
        )
        second = adaptive_transform_search(
            fs, _model(fs), baseline=_baseline(fs), seed=3, linear_draws=4
        )
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_linear_draws_extend_the_search(self):
        fs = _fs()
        plan = adaptive_transform_search(
            fs, _model(fs), baseline=_baseline(fs), linear_draws=8
        )
        assert plan.evaluations == 256 + 8
        # the family optimum already hits the lower bound; random linear
        # candidates must not displace it
        assert plan.candidate.expected_load_factor == pytest.approx(1.0)

    def test_build_reconstructs_the_scored_method(self):
        fs = _fs()
        model = _model(fs)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        rebuilt = plan.build()
        assert expected_load_factor(rebuilt, model=model) == pytest.approx(
            plan.candidate.expected_load_factor
        )
        assert tuple(t.method for t in rebuilt.transforms) == (
            plan.candidate_names
        )

    def test_hill_climb_path_on_many_small_fields(self):
        fs = FileSystem.of(2, 2, 2, 2, 2, 2, 2, 2, 2, m=1024)
        model = EmpiricalQueryModel.from_counts(
            {"*" * 8 + "1": 3, "1" * 8 + "*": 1}, 9
        )
        plan = adaptive_transform_search(
            fs, model, baseline=FXDistribution(fs), restarts=2
        )
        assert plan.candidate.expected_load_factor <= (
            plan.baseline.expected_load_factor + 1e-12
        )

    def test_baseline_filesystem_mismatch_rejected(self):
        fs = _fs()
        other = FileSystem.of(4, 4, m=16)
        with pytest.raises(AnalysisError):
            adaptive_transform_search(
                fs, _model(fs), baseline=FXDistribution(other)
            )

    def test_negative_linear_draws_rejected(self):
        fs = _fs()
        with pytest.raises(ReproError):
            adaptive_transform_search(
                fs, _model(fs), baseline=_baseline(fs), linear_draws=-1
            )


# ======================================================================
# Crash-safe hot-swap
# ======================================================================
def _durable(records):
    durable = make_durable_file(
        "fx",
        fields=FIELDS,
        devices=DEVICES,
        replicate=False,
        transforms=list(UNIFORM_BEST),
    )
    durable.insert_all(records)
    return durable


class TestHotSwap:
    def test_swap_improves_and_verifies(self, telemetry_on):
        fs = _fs()
        model = _model(fs)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        durable = _durable(_records())
        report = apply_plan(durable, plan, model)
        assert report.verified
        assert report.content_preserved
        assert report.before.expected_load_factor == pytest.approx(1.5)
        assert report.after.expected_load_factor == pytest.approx(1.0)
        assert report.verified_queries == len(MIX)
        # the swapped file now answers by the candidate method
        assert durable.file.method.transform_methods() == tuple(
            t.effective_method for t in plan.transforms
        )
        durable.check_invariants()

    def test_every_moved_record_is_wal_audited(self, telemetry_on):
        fs = _fs()
        model = _model(fs)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        records = _records()
        durable = _durable(records)
        report = apply_plan(durable, plan, model)
        assert report.wal_moves == report.records_moved > 0
        entries, torn = durable.wal.scan()
        assert torn == 0
        moves = [e for e in entries if e.op == "move"]
        assert len(moves) == report.records_moved
        # moves log the records themselves, in multiset terms exactly the
        # subset that changed device
        assert {m.record for m in moves} <= {tuple(r) for r in records}

    def test_crash_mid_migration_recovers_pre_swap_content(
        self, telemetry_on
    ):
        """A crash partway through the bucket moves loses nothing: WAL
        replay (which skips moves — placement is method-derived) into a
        fresh file reproduces the pre-swap content digest exactly."""
        fs = _fs()
        model = _model(fs)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        records = _records()
        durable = _durable(records)
        pre_digest = content_digest_of(durable.file)
        durable.arm_crash(after_records=len(records) + 10)
        with pytest.raises(SimulatedCrashError):
            apply_plan(durable, plan, model, verify=False)
        fresh = PartitionedFile(
            FXDistribution(fs, transforms=list(UNIFORM_BEST))
        )
        report = recover(durable.wal, fresh)
        assert report.inserts == len(records)
        assert report.moves_skipped == 10
        assert content_digest_of(fresh) == pre_digest
        fresh.check_invariants()

    def test_crash_recovery_into_candidate_method_also_exact(
        self, telemetry_on
    ):
        """Recovery can equally rebuild directly onto the *target* method
        (the post-crash operator choice): same content, new placement."""
        fs = _fs()
        model = _model(fs)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        records = _records()
        durable = _durable(records)
        pre_digest = content_digest_of(durable.file)
        durable.arm_crash(after_records=len(records) + 5)
        with pytest.raises(SimulatedCrashError):
            apply_plan(durable, plan, model, verify=False)
        fresh = PartitionedFile(plan.build())
        recover(durable.wal, fresh)
        assert content_digest_of(fresh) == pre_digest
        fresh.check_invariants()

    def test_non_improving_plan_rejected_unless_forced(self, telemetry_on):
        fs = _fs()
        # a mix of exact-match queries: every assignment is optimal
        model = EmpiricalQueryModel.from_counts({"1111": 1}, 4)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        assert not plan.worthwhile
        durable = _durable(_records())
        with pytest.raises(AnalysisError):
            apply_plan(durable, plan, model)
        report = apply_plan(durable, plan, model, require_improvement=False)
        assert report.content_preserved

    def test_replicated_file_rejected(self, telemetry_on):
        fs = _fs()
        model = _model(fs)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        replicated = make_durable_file(
            "fx", fields=FIELDS, devices=DEVICES, replicate=True
        )
        with pytest.raises(AnalysisError):
            apply_plan(replicated, plan, model)

    def test_filesystem_mismatch_rejected(self, telemetry_on):
        fs = _fs()
        model = _model(fs)
        plan = adaptive_transform_search(fs, model, baseline=_baseline(fs))
        other = make_durable_file(
            "fx", fields=(4, 4), devices=16, replicate=False
        )
        with pytest.raises(AnalysisError):
            apply_plan(other, plan, model)

    def test_representative_queries_cover_the_support(self):
        fs = _fs()
        model = _model(fs)
        queries = representative_queries(fs, model)
        assert len(queries) == len(MIX)
        assert {pattern_of_query(q) for q in queries} == set(MIX)


# ======================================================================
# Offline profile feed
# ======================================================================
class TestLoadProfile:
    def test_profile_document(self, tmp_path):
        profile = QueryMixProfile()
        profile.tenant("acme").record("1*", 2)
        profile.observed = 2
        path = tmp_path / "profile.json"
        path.write_text(profile.to_json(), encoding="utf-8")
        loaded = load_profile(str(path))
        assert loaded.tenant("acme").patterns == {"1*": 2}

    def test_jsonl_export(self, tmp_path):
        lines = [
            json.dumps(
                {
                    "type": "span", "id": 1, "trace": 1, "parent": None,
                    "name": "query.execute",
                    "attrs": {"query": "<1, *>"},
                }
            ),
            json.dumps({"type": "metrics"}),
        ]
        path = tmp_path / "export.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        loaded = load_profile(str(path))
        assert loaded.observed == 1
        assert loaded.tenant("").patterns == {"1*": 1}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_profile(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_profile(str(path))


# ======================================================================
# CLI
# ======================================================================
MIX_ARG = ",".join(f"{pattern}={count}" for pattern, count in MIX.items())
CLI_BASE = ["--fields", "2,2,2,2", "--devices", "16"]


class TestAdaptCli:
    def test_score(self, capsys):
        assert main(["adapt", "score", *CLI_BASE, "--mix", MIX_ARG]) == 0
        out = capsys.readouterr().out
        assert "E[load factor]" in out
        assert "1.5000" in out

    def test_score_json(self, capsys):
        assert (
            main(["adapt", "score", *CLI_BASE, "--mix", MIX_ARG, "--json"])
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["score"]["expected_load_factor"] == pytest.approx(1.5)
        assert data["score"]["gap"] == pytest.approx(1.5)

    def test_plan_finds_improvement(self, capsys):
        assert main(["adapt", "plan", *CLI_BASE, "--mix", MIX_ARG]) == 0
        out = capsys.readouterr().out
        assert "1.5000 -> 1.0000" in out

    def test_plan_json_deterministic(self, capsys):
        assert (
            main(["adapt", "plan", *CLI_BASE, "--mix", MIX_ARG, "--json"])
            == 0
        )
        first = capsys.readouterr().out
        assert (
            main(["adapt", "plan", *CLI_BASE, "--mix", MIX_ARG, "--json"])
            == 0
        )
        assert capsys.readouterr().out == first

    def test_plan_rc_one_when_nothing_improves(self, capsys):
        assert main(["adapt", "plan", *CLI_BASE, "--mix", "1111=5"]) == 1

    def test_apply_swaps_and_verifies(self, capsys):
        assert main(["adapt", "apply", *CLI_BASE, "--mix", MIX_ARG]) == 0
        out = capsys.readouterr().out
        assert "verified strict optimal from telemetry" in out

    def test_apply_json(self, capsys):
        assert (
            main(["adapt", "apply", *CLI_BASE, "--mix", MIX_ARG, "--json"])
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["swap"]["verified"] is True
        assert data["swap"]["content_preserved"] is True
        assert data["swap"]["wal_moves"] == data["swap"]["records_moved"]

    def test_apply_rc_one_without_improvement(self, capsys):
        assert main(["adapt", "apply", *CLI_BASE, "--mix", "1111=5"]) == 1

    def test_profile_feed(self, tmp_path, capsys):
        profile = QueryMixProfile()
        for pattern, count in MIX.items():
            profile.tenant("acme").record(pattern, count)
        profile.observed = sum(MIX.values())
        path = tmp_path / "profile.json"
        path.write_text(profile.to_json(), encoding="utf-8")
        assert (
            main(
                [
                    "adapt", "plan", *CLI_BASE,
                    "--profile", str(path), "--tenant", "acme", "--json",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["worthwhile"] is True

    def test_mix_and_profile_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["adapt", "score", *CLI_BASE])
        path = tmp_path / "p.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(
                [
                    "adapt", "score", *CLI_BASE,
                    "--mix", "11=1", "--profile", str(path),
                ]
            )

    def test_malformed_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["adapt", "score", *CLI_BASE, "--mix", "***1"])
