"""Tests for batch execution and vectorised bulk device assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.distribution.modulo import ModuloDistribution
from repro.errors import DistributionError, QueryError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.storage.batch import BatchExecutor
from repro.storage.parallel_file import PartitionedFile

FS = FileSystem.of(4, 8, m=4)


class TestDevicesOfArray:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda fs: FXDistribution(fs),
            lambda fs: ModuloDistribution(fs),
            lambda fs: GDMDistribution(fs, multipliers=(3, 5)),
        ],
    )
    def test_matches_scalar_path(self, factory):
        method = factory(FS)
        buckets = np.array(list(FS.buckets()))
        vectorised = method.devices_of_array(buckets)
        scalar = [method.device_of(tuple(b)) for b in buckets]
        assert vectorised.tolist() == scalar

    def test_shape_validated(self):
        fx = FXDistribution(FS)
        with pytest.raises(DistributionError):
            fx.devices_of_array(np.zeros((3, 5), dtype=np.int64))

    def test_range_validated(self):
        fx = FXDistribution(FS)
        with pytest.raises(DistributionError):
            fx.devices_of_array([[0, 8]])

    def test_empty_batch(self):
        fx = FXDistribution(FS)
        assert fx.devices_of_array(np.empty((0, 2), dtype=np.int64)).size == 0

    @given(st.integers(0, 2**31), st.integers(1, 200))
    @settings(max_examples=20, deadline=None)
    def test_random_batches(self, seed, count):
        rng = np.random.default_rng(seed)
        buckets = np.column_stack(
            [rng.integers(0, size, size=count) for size in FS.field_sizes]
        )
        fx = FXDistribution(FS)
        vectorised = fx.devices_of_array(buckets)
        assert all(
            v == fx.device_of(tuple(int(x) for x in b))
            for v, b in zip(vectorised, buckets)
        )


class TestBatchExecutor:
    def _loaded(self):
        pf = PartitionedFile(FXDistribution(FS))
        pf.insert_all([(i, f"n{i % 9}") for i in range(80)])
        return pf

    def test_identical_queries_fully_shared(self):
        pf = self._loaded()
        q = pf.query({0: 3})
        report = BatchExecutor(pf).execute([q, q, q])
        assert report.sharing_factor == pytest.approx(3.0)
        assert report.bucket_reads == q.qualified_count

    def test_records_match_single_query_execution(self):
        pf = self._loaded()
        queries = [pf.query({0: 1}), pf.query({1: "n3"}), pf.query({0: 2})]
        report = BatchExecutor(pf).execute(queries)
        from repro.storage.executor import QueryExecutor

        for query, batch_records in zip(queries, report.records_per_query):
            single = QueryExecutor(pf).execute(query)
            assert sorted(map(str, batch_records)) == sorted(
                map(str, single.records)
            )

    def test_disjoint_queries_share_nothing(self):
        pf = self._loaded()
        queries = [
            PartialMatchQuery.exact(FS, (0, 0)),
            PartialMatchQuery.exact(FS, (1, 1)),
        ]
        report = BatchExecutor(pf).execute(queries)
        assert report.reads_saved == 0
        assert report.sharing_factor == 1.0

    def test_overlapping_queries_save_reads(self):
        pf = self._loaded()
        # both leave field 1 free and share field-0 slices partially via
        # the full scan
        queries = [pf.query({0: 3}), PartialMatchQuery.full_scan(FS)]
        report = BatchExecutor(pf).execute(queries)
        assert report.reads_saved == 8  # the {0:3} slice is inside the scan
        assert report.bucket_reads == FS.bucket_count

    def test_empty_batch(self):
        pf = self._loaded()
        report = BatchExecutor(pf).execute([])
        assert report.bucket_reads == 0
        assert report.sharing_factor == 1.0
        assert report.response_time_ms == 0.0

    def test_foreign_query_rejected(self):
        pf = self._loaded()
        other = FileSystem.of(4, 8, m=8)
        with pytest.raises(QueryError):
            BatchExecutor(pf).execute([PartialMatchQuery.full_scan(other)])

    def test_device_stats_accounted(self):
        pf = self._loaded()
        before = sum(d.stats.bucket_reads for d in pf.devices)
        BatchExecutor(pf).execute([PartialMatchQuery.full_scan(FS)])
        after = sum(d.stats.bucket_reads for d in pf.devices)
        assert after - before == FS.bucket_count
