"""Tests for the chaos-hardened network tier.

Covers the deterministic fault models (seeded draws, scripts), the
fault-injecting proxy with scripted exactly-once scenarios per fault
kind, the circuit breaker (manual clock), client socket timeouts as
typed errors, WAL entry metadata round-trips, crash-restart recovery
through the supervisor, the invariant-proving harness (zero stale reads,
no lost/duplicated acknowledged writes, byte-identical reports per
seed), frame-decoder fuzzing under torn/garbage input, and the ``chaos``
CLI exit semantics.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.chaos import (
    FAULT_KINDS,
    ChaosReport,
    ChaosSpec,
    NetFaultInjector,
    NetFaultPlan,
    RestartableGateway,
    run_chaos_load,
)
from repro.chaos.proxy import ChaosEndpoint
from repro.cli import main
from repro.durability.wal import WalEntry, WriteAheadLog, read_wal
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    ConnectionLostError,
    FrameTooLargeError,
    GatewayTimeoutError,
    ProtocolError,
    ReproError,
)
from repro.gateway import (
    CircuitBreaker,
    FrameDecoder,
    Gateway,
    GatewayClient,
    ResilientGatewayClient,
    TenantSpec,
    encode_frame,
)
from repro.runtime import RetryPolicy

FIELDS = (4, 4)
DEVICES = 4


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    obs.reset_telemetry()
    yield
    obs.reset_telemetry()


def _spec(name="alpha", **options):
    return TenantSpec.of(name, FIELDS, DEVICES, **options)


FAST_RETRY = RetryPolicy(max_attempts=5, base_delay_ms=1.0, max_delay_ms=5.0)


# ----------------------------------------------------------------------
# Fault models
# ----------------------------------------------------------------------
class TestNetFaultPlan:
    def test_default_plan_is_trivial(self):
        assert NetFaultPlan.none().is_trivial
        assert not NetFaultPlan(tear_rate=0.1).is_trivial
        assert not NetFaultPlan(script={(0, 0): "tear"}).is_trivial

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            NetFaultPlan(tear_rate=1.5)
        with pytest.raises(ConfigurationError):
            NetFaultPlan(refuse_rate=-0.1)
        with pytest.raises(ConfigurationError):
            # Exchange rates must sum below 1.
            NetFaultPlan.uniform(0.25)
        with pytest.raises(ConfigurationError):
            NetFaultPlan(script={(0, 0): "explode"})
        with pytest.raises(ConfigurationError):
            NetFaultPlan(tear_chunks=1)

    def test_draws_are_deterministic_and_seed_sensitive(self):
        plan = NetFaultPlan.uniform(0.15, seed=42)
        a = NetFaultInjector(plan)
        b = NetFaultInjector(plan)
        draws = [
            a.exchange_fault("alpha", 0, epoch, exchange)
            for epoch in range(4)
            for exchange in range(16)
        ]
        assert draws == [
            b.exchange_fault("alpha", 0, epoch, exchange)
            for epoch in range(4)
            for exchange in range(16)
        ]
        assert any(kind is not None for kind in draws)
        other = NetFaultInjector(NetFaultPlan.uniform(0.15, seed=43))
        assert draws != [
            other.exchange_fault("alpha", 0, epoch, exchange)
            for epoch in range(4)
            for exchange in range(16)
        ]

    def test_endpoints_draw_independent_streams(self):
        injector = NetFaultInjector(NetFaultPlan.uniform(0.15, seed=1))
        alpha = [
            injector.exchange_fault("alpha", 0, 0, k) for k in range(64)
        ]
        beta = [
            injector.exchange_fault("beta", 0, 0, k) for k in range(64)
        ]
        assert alpha != beta

    def test_script_and_refuse_epochs_pin_faults(self):
        injector = NetFaultInjector(
            NetFaultPlan(
                script={(0, 2): "duplicate", (1, 0): "tear"},
                refuse_epochs=frozenset({3}),
            )
        )
        assert injector.exchange_fault("any", 9, 0, 2) == "duplicate"
        assert injector.exchange_fault("any", 9, 1, 0) == "tear"
        assert injector.exchange_fault("any", 9, 0, 0) is None
        assert injector.refuse_connection("any", 9, 3)
        assert not injector.refuse_connection("any", 9, 2)

    def test_zero_rate_kind_never_drawn(self):
        injector = NetFaultInjector(
            NetFaultPlan(seed=5, tear_rate=0.3, delay_rate=0.3)
        )
        draws = {
            injector.exchange_fault("alpha", 0, epoch, exchange)
            for epoch in range(8)
            for exchange in range(32)
        }
        assert draws <= {None, "tear", "delay"}


# ----------------------------------------------------------------------
# Circuit breaker (manual clock: no wall-clock flake)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold_and_fails_fast(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_s=10.0, clock=lambda: clock[0]
        )
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_probe_and_recovery(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 5.0
        # First caller after cooldown is the probe; the next is not.
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_s=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        breaker.record_failure()
        clock[0] = 1.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=0.0)


# ----------------------------------------------------------------------
# Typed client timeouts (satellite: no indefinite hangs)
# ----------------------------------------------------------------------
class TestClientTimeouts:
    def test_unresponsive_server_raises_typed_timeout(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(listener.accept()[0]),
            daemon=True,
        )
        thread.start()
        try:
            client = GatewayClient(host, port, tenant="alpha", timeout_s=0.2)
            with pytest.raises(GatewayTimeoutError) as excinfo:
                client.ping()
            assert isinstance(excinfo.value, ReproError)
            assert "0.2" in str(excinfo.value)
            client.close()
        finally:
            listener.close()
            thread.join(timeout=1.0)
            for sock in accepted:
                sock.close()

    def test_refused_connect_raises_connection_lost(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionLostError):
            GatewayClient("127.0.0.1", port, tenant="alpha", timeout_s=0.5)


# ----------------------------------------------------------------------
# WAL entry metadata
# ----------------------------------------------------------------------
class TestWalMeta:
    def test_meta_round_trips_through_frames(self):
        wal = WriteAheadLog()
        wal.append_insert((1, 2), meta={"idem": "k:0"})
        wal.append_insert((3, 4))
        entries, torn = read_wal(wal.to_bytes())
        assert torn == 0
        assert entries[0].meta == {"idem": "k:0"}
        assert entries[1].meta is None

    def test_none_meta_preserves_pre_meta_bytes(self):
        # The meta field must be additive: entries without meta serialise
        # exactly as they did before the field existed.
        assert (
            WalEntry("insert", (1, 2)).payload()
            == b'{"op":"insert","record":[1,2]}'
        )

    def test_from_bytes_rebuilds_meta_and_torn_tail(self):
        wal = WriteAheadLog()
        wal.append_insert((9, 9), meta={"idem": "x"})
        frame = WalEntry("insert", (0, 0)).frame()
        reopened = WriteAheadLog.from_bytes(
            wal.to_bytes() + frame[: len(frame) // 2]
        )
        assert reopened.entry_count == 1
        assert reopened.entries()[0].meta == {"idem": "x"}
        assert reopened.torn_bytes_discarded == len(frame) // 2

    def test_bad_meta_rejected(self):
        with pytest.raises(ConfigurationError):
            WalEntry("insert", (1,), meta="not-a-mapping")


# ----------------------------------------------------------------------
# Scripted faults through the proxy: exactly-once per fault kind
# ----------------------------------------------------------------------
@pytest.fixture
def supervised():
    """A WAL-durable supervised gateway plus teardown bookkeeping."""
    supervisor = RestartableGateway([_spec()])
    supervisor.start()
    endpoints: list[ChaosEndpoint] = []
    clients: list[ResilientGatewayClient] = []
    try:
        yield supervisor, endpoints, clients
    finally:
        for client in clients:
            client.close()
        for endpoint in endpoints:
            endpoint.stop()
        supervisor.stop()


def _chaos_client(supervisor, endpoints, clients, plan, **kwargs):
    endpoint = ChaosEndpoint(
        supervisor.address, NetFaultInjector(plan), "alpha", 0
    )
    host, port = endpoint.start()
    endpoints.append(endpoint)
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("timeout_s", 2.0)
    kwargs.setdefault("trace_seed", 7)
    kwargs.setdefault("idem_prefix", "t")
    client = ResilientGatewayClient(
        host, port, tenant="alpha", fields=FIELDS, devices=DEVICES, **kwargs
    )
    clients.append(client)
    return client, endpoint


class TestScriptedExactlyOnce:
    @pytest.mark.parametrize(
        "kind,expect_dedup,expect_retries",
        [
            ("reset_request", 0, 1),
            ("reset_response", 1, 1),
            ("tear", 0, 0),
            ("duplicate", 0, 0),
            ("delay", 0, 0),
        ],
    )
    def test_one_faulted_write_applies_exactly_once(
        self, supervised, kind, expect_dedup, expect_retries
    ):
        supervisor, endpoints, clients = supervised
        client, endpoint = _chaos_client(
            supervisor,
            endpoints,
            clients,
            NetFaultPlan(script={(0, 0): kind}),
        )
        bucket, version = client.insert((1, 2))
        entries = supervisor.wal_entries("alpha")
        assert len(entries) == 1, (
            f"{kind}: write must apply exactly once, got {len(entries)}"
        )
        assert entries[0].record == (1, 2)
        assert entries[0].meta == {"idem": "t:0"}
        assert version == 1
        assert client.deduped == expect_dedup
        assert client.retries == expect_retries
        assert endpoint.faults.get(kind) == 1

    def test_refused_connection_retries_on_fresh_epoch(self, supervised):
        supervisor, endpoints, clients = supervised
        client, endpoint = _chaos_client(
            supervisor,
            endpoints,
            clients,
            NetFaultPlan(refuse_epochs=frozenset({0})),
        )
        assert client.ping()
        assert client.retries >= 1
        assert endpoint.faults.get("refuse") == 1

    def test_duplicate_response_never_corrupts_the_stream(self, supervised):
        supervisor, endpoints, clients = supervised
        client, __ = _chaos_client(
            supervisor,
            endpoints,
            clients,
            NetFaultPlan(script={(0, 0): "duplicate"}),
        )
        # The duplicated frame is followed by a proxy-side close; the
        # *next* request must come back correct on a fresh connection.
        assert client.ping()
        result = client.query({0: 1})
        assert result.ok
        assert client.reconnects == 1

    def test_breaker_opens_against_a_dead_endpoint(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ResilientGatewayClient(
            "127.0.0.1",
            port,
            tenant="alpha",
            retry=RetryPolicy(max_attempts=6, base_delay_ms=0.0),
            timeout_s=0.5,
            breaker=CircuitBreaker(failure_threshold=2, cooldown_s=60.0),
        )
        with pytest.raises(CircuitOpenError):
            client.ping()
        # Fail-fast: the breaker is open, no further connects are tried.
        with pytest.raises(CircuitOpenError):
            client.ping()
        snap = obs.telemetry().metrics.snapshot()
        assert snap.counters.get("chaos.breaker_open{tenant=alpha}", 0) >= 1


# ----------------------------------------------------------------------
# Crash-restart recovery
# ----------------------------------------------------------------------
class TestRestartableGateway:
    def test_crash_restart_recovers_writes_and_idem_window(self):
        supervisor = RestartableGateway([_spec()])
        host, port = supervisor.start()
        try:
            with GatewayClient(host, port, tenant="alpha") as client:
                acked = []
                for n in range(4):
                    __, version = client.insert((n, n), idem=f"k:{n}")
                    acked.append(version)
            supervisor.crash(torn_tail=True)
            assert supervisor.gateway is None
            restarted = supervisor.restart()
            assert restarted == (host, port)
            tenant = supervisor.gateway.tenants["alpha"]
            assert tenant.recovered["entries"] == 4
            assert tenant.recovered["torn_bytes"] > 0
            with GatewayClient(host, port, tenant="alpha") as client:
                # Retrying a pre-crash idempotency key must dedup, not
                # re-apply: the window was rebuilt from WAL metadata.
                __, version = client.insert((0, 0), idem="k:0")
                assert version == acked[0]
                stats = client.stats()
                assert stats["write_version"] == 4
                assert stats["durable"] is True
            assert len(supervisor.wal_entries("alpha")) == 4
        finally:
            supervisor.stop()

    def test_health_op_reports_readiness_and_recovery(self):
        supervisor = RestartableGateway([_spec()])
        host, port = supervisor.start()
        try:
            with GatewayClient(host, port, tenant="alpha") as client:
                health = client.health()
                assert health["ready"] is True
                assert health["draining"] is False
                assert health["tenants"]["alpha"]["recovered"] is None
                client.insert((1, 1), idem="h:0")
            supervisor.crash()
            supervisor.restart()
            with GatewayClient(host, port, tenant="alpha") as client:
                health = client.health()
                assert health["tenants"]["alpha"]["recovered"] == {
                    "entries": 1,
                    "torn_bytes": 0,
                }
        finally:
            supervisor.stop()

    def test_crash_without_running_gateway_raises(self):
        supervisor = RestartableGateway([_spec()])
        with pytest.raises(ReproError):
            supervisor.crash()


# ----------------------------------------------------------------------
# The harness: invariants under randomized chaos
# ----------------------------------------------------------------------
def _run(spec_kwargs=None, tenants=("alpha",)):
    spec = ChaosSpec(
        connections_per_tenant=2,
        requests_per_connection=8,
        write_every=3,
        preload=2,
        timeout_s=5.0,
        retry=FAST_RETRY,
        **(spec_kwargs or {}),
    )
    return run_chaos_load([_spec(name) for name in tenants], spec)


class TestChaosHarness:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_invariants_hold_per_fault_kind(self, kind):
        rate_field = f"{kind}_rate"
        report = _run(
            {
                "faults": NetFaultPlan(seed=11, **{rate_field: 0.2}),
                "crash_at": None,
                "seed": 11,
            }
        )
        assert report.verify() == []
        assert report.errors == []

    def test_invariants_hold_through_crash_restart(self):
        report = _run(
            {
                "faults": NetFaultPlan.uniform(0.06, seed=5, refuse_rate=0.1),
                "crash_at": 0.5,
                "torn_tail": True,
                "seed": 5,
            },
            tenants=("alpha", "beta"),
        )
        assert report.crashes == 1
        assert report.verify() == []
        # Recovery actually happened: the preloads guarantee WAL content.
        assert all(
            (info or {}).get("entries", 0) >= 2
            for info in report.recovered.values()
        )
        assert isinstance(report, ChaosReport)

    def test_identical_seeds_produce_identical_reports(self):
        kwargs = {
            "faults": NetFaultPlan.uniform(0.08, seed=7, refuse_rate=0.1),
            "crash_at": 0.5,
            "torn_tail": True,
            "seed": 7,
        }
        a, b = _run(kwargs), _run(kwargs)
        canonical_a = json.dumps(a.canonical_dict(), sort_keys=True)
        canonical_b = json.dumps(b.canonical_dict(), sort_keys=True)
        assert canonical_a == canonical_b
        assert a.canonical_digest() == b.canonical_digest()

    def test_different_seeds_differ(self):
        base = {"faults": NetFaultPlan.uniform(0.08, seed=1), "seed": 1}
        other = {"faults": NetFaultPlan.uniform(0.08, seed=2), "seed": 2}
        assert (
            _run(base).canonical_digest() != _run(other).canonical_digest()
        )

    def test_clean_run_has_no_faults_and_full_availability(self):
        report = _run({"crash_at": None})
        assert report.faults_injected == 0
        assert report.availability == 1.0
        assert report.total_retries == 0
        assert report.verify() == []

    def test_verify_flags_lost_and_duplicated_writes(self):
        report = _run({"crash_at": None})
        # Forge a lost acknowledged write…
        report.acked["alpha"].append((999, (1, 2)))
        violations = report.verify()
        assert any("LOST" in message for message in violations)
        # …and a doubly applied idempotency key.
        report.acked["alpha"].pop()
        report.wal_idem["alpha"] = ["dup", "dup"]
        assert any(
            "DOUBLY APPLIED" in message for message in report.verify()
        )

    def test_chaos_metrics_are_tenant_labeled(self):
        obs.reset_telemetry()
        _run(
            {
                "faults": NetFaultPlan(seed=3, reset_response_rate=0.25),
                "crash_at": 0.5,
                "seed": 3,
            }
        )
        counters = obs.telemetry().metrics.snapshot().counters
        assert any(
            name.startswith("chaos.faults{") and "tenant=alpha" in name
            for name in counters
        )
        assert counters.get("chaos.crashes", 0) == 1
        assert "chaos.recovered_writes{tenant=alpha}" in counters
        assert "gateway.retries{tenant=alpha}" in counters

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(crash_at=1.5)
        with pytest.raises(ConfigurationError):
            ChaosSpec(connections_per_tenant=0)
        with pytest.raises(ConfigurationError):
            ChaosSpec(timeout_s=0.0)


# ----------------------------------------------------------------------
# FrameDecoder fuzzing (satellite: torn frames and garbage never crash)
# ----------------------------------------------------------------------
def _frame_of(payload: dict) -> bytes:
    return encode_frame(payload)


@settings(max_examples=60, deadline=None)
@given(
    payloads=st.lists(
        st.dictionaries(
            st.sampled_from(["op", "id", "tenant", "x"]),
            st.one_of(st.integers(-(2**31), 2**31), st.text(max_size=8)),
            max_size=4,
        ),
        min_size=1,
        max_size=5,
    ),
    chunk_sizes=st.lists(st.integers(1, 7), min_size=1, max_size=40),
)
def test_decoder_is_chunking_invariant(payloads, chunk_sizes):
    stream = b"".join(_frame_of(payload) for payload in payloads)
    decoder = FrameDecoder()
    decoded: list[dict] = []
    offset = 0
    k = 0
    while offset < len(stream):
        size = chunk_sizes[k % len(chunk_sizes)]
        decoded.extend(decoder.feed(stream[offset : offset + size]))
        offset += size
        k += 1
    assert decoded == payloads
    assert decoder.buffered == 0


@settings(max_examples=60, deadline=None)
@given(garbage=st.binary(min_size=1, max_size=64))
def test_decoder_never_crashes_on_garbage(garbage):
    decoder = FrameDecoder(max_frame_bytes=1024)
    try:
        decoder.feed(garbage)
    except (ProtocolError, FrameTooLargeError):
        # A poisoned stream is a *protocol* error — the typed signal the
        # server maps to a coded ``bad_frame`` response.  Anything else
        # (KeyError, struct.error, UnicodeDecodeError…) is a crash bug.
        pass


@settings(max_examples=30, deadline=None)
@given(
    garbage=st.binary(min_size=1, max_size=32),
    payload=st.dictionaries(
        st.sampled_from(["op", "id"]), st.integers(0, 100), max_size=2
    ),
)
def test_decoder_after_garbage_either_errors_or_stays_consistent(
    garbage, payload
):
    # Feeding garbage then a valid frame must never yield a *wrong*
    # payload silently: either the stream errors (close + resync on a new
    # connection, which is what the resilient client does) or the garbage
    # was a syntactically valid prefix still waiting for bytes.
    decoder = FrameDecoder(max_frame_bytes=1024)
    try:
        first = decoder.feed(garbage)
        assert first == []  # garbage alone can never complete a frame
        decoder.feed(_frame_of(payload))
    except (ProtocolError, FrameTooLargeError):
        pass


def test_decoder_rejects_oversized_header_immediately():
    decoder = FrameDecoder(max_frame_bytes=64)
    with pytest.raises(FrameTooLargeError):
        decoder.feed(struct.pack(">I", 65))
    # Undersized declarations buffer quietly.
    fresh = FrameDecoder(max_frame_bytes=64)
    assert fresh.feed(struct.pack(">I", 64)) == []
    assert fresh.buffered == 4


# ----------------------------------------------------------------------
# Trace propagation across retries
# ----------------------------------------------------------------------
def test_retried_request_is_one_trace(supervised):
    supervisor, endpoints, clients = supervised
    client, __ = _chaos_client(
        supervisor,
        endpoints,
        clients,
        NetFaultPlan(script={(0, 0): "reset_response"}),
    )
    client.insert((3, 3))
    spans = [
        record
        for record in obs.telemetry().export_records()
        if record.get("type") == "span"
    ]
    requests = [span for span in spans if span["name"] == "client.request"]
    assert len(requests) == 1
    (request,) = requests
    events = {event["name"] for event in request.get("events", [])}
    assert "chaos.retry" in events
    assert "chaos.fault" in events
    # Both server-side attempts joined the client's trace, so ``obs tail
    # --trace-id`` shows the retried request as one tree.
    server_spans = [
        span
        for span in spans
        if span["name"] == "gateway.request"
        and span["trace"] == request["trace"]
    ]
    assert len(server_spans) == 2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestChaosCli:
    def test_chaos_cli_smoke_rc_zero(self, capsys):
        rc = main(
            [
                "chaos",
                "--fields", "4,4",
                "--devices", "4",
                "--connections", "1",
                "--requests", "6",
                "--fault-rate", "0.05",
                "--torn-tail",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "invariant violations" in out
        assert "canonical digest" in out

    def test_chaos_cli_json(self, capsys):
        rc = main(
            [
                "chaos",
                "--fields", "4,4",
                "--devices", "4",
                "--connections", "1",
                "--requests", "6",
                "--no-crash",
                "--fault-rate", "0.0",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        data = json.loads(out)
        assert data["violations"] == []
        assert data["availability"] == 1.0
        assert data["crashes"] == 0
