"""Odds-and-ends coverage for the analysis layer.

Angles not covered by the per-module suites: probability weighting against
hand computations, GDM even-multiplier histograms, weighted response
averages, chart edge behaviour under custom y ranges.
"""

import numpy as np
import pytest

from repro.analysis.ascii_chart import render_chart
from repro.analysis.histograms import contribution_histogram, evaluator_for
from repro.analysis.optim_prob import optimal_pattern_fraction
from repro.analysis.response import average_largest_response
from repro.core.fx import FXDistribution
from repro.distribution.gdm import GDMDistribution
from repro.hashing.fields import FileSystem


class TestProbabilityWeighting:
    def test_hand_computed_weighted_fraction(self):
        # n=2, predicate true for patterns {}, {0} only.
        predicate = lambda pattern: pattern in (frozenset(), frozenset({0}))
        # p = 0.8: P({}) = 0.64, P({0}) = 0.8 * 0.2 = 0.16
        value = optimal_pattern_fraction(2, predicate, p=0.8)
        assert value == pytest.approx(0.64 + 0.16)

    def test_p_zero_only_full_scan_matters(self):
        n = 3
        full = frozenset(range(n))
        assert optimal_pattern_fraction(n, lambda s: s == full, p=0.0) == 1.0
        assert optimal_pattern_fraction(n, lambda s: s != full, p=0.0) == 0.0


class TestGdmEvenMultipliers:
    def test_even_multiplier_contribution_not_uniform(self):
        # c=2 on a field of size M: image is even residues only.
        fs = FileSystem.of(8, 8, m=8)
        gdm = GDMDistribution(fs, multipliers=(2, 1))
        histogram = contribution_histogram(gdm, 0)
        assert histogram.tolist() == [2, 0, 2, 0, 2, 0, 2, 0]

    def test_engine_handles_degenerate_image(self):
        fs = FileSystem.of(8, 8, m=8)
        gdm = GDMDistribution(fs, multipliers=(2, 2))
        evaluator = evaluator_for(gdm)
        histogram = evaluator.histogram(frozenset({0, 1}))
        # all mass on even devices
        assert all(histogram[d] == 0 for d in (1, 3, 5, 7))
        assert int(histogram.sum()) == 64
        assert not evaluator.is_strict_optimal(frozenset({0, 1}))


class TestWeightedResponseAverages:
    def test_weighted_equals_unweighted_for_uniform_sizes(self):
        fs = FileSystem.uniform(4, 8, m=16)
        fx = FXDistribution(fs)
        for k in (1, 2, 3):
            assert average_largest_response(
                fx, k, weighted=True
            ) == pytest.approx(average_largest_response(fx, k, weighted=False))

    def test_weighted_differs_for_mixed_sizes(self):
        fs = FileSystem.of(2, 16, 4, m=8)
        fx = FXDistribution(fs)
        weighted = average_largest_response(fx, 2, weighted=True)
        unweighted = average_largest_response(fx, 2, weighted=False)
        assert weighted != unweighted


class TestChartRanges:
    def test_custom_y_range_clamps_markers(self):
        text = render_chart(
            [0, 1], {"A": [50.0, 150.0]}, height=6, y_min=0.0, y_max=100.0
        )
        # the out-of-range point renders on the top row rather than crashing
        assert text.splitlines()[0].strip().startswith("100.0")
        assert "*" in text

    def test_single_point_series(self):
        text = render_chart([7], {"A": [3.0]}, height=5)
        assert "7" in text.splitlines()[-2]


class TestEvaluatorIntegrity:
    def test_histogram_values_non_negative_int64(self):
        fs = FileSystem.of(8, 8, 8, m=16)
        evaluator = evaluator_for(FXDistribution(fs))
        histogram = evaluator.histogram(frozenset({0, 1, 2}))
        assert histogram.dtype == np.int64
        assert histogram.min() >= 0
