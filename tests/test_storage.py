"""Tests for the simulated storage substrate (stores, devices, files)."""

import pytest

from repro.core.fx import FXDistribution
from repro.errors import ConfigurationError, DeviceFullError, StorageError
from repro.hashing.fields import FileSystem
from repro.hashing.multikey import MultiKeyHash
from repro.storage.bucket_store import BucketStore
from repro.storage.costs import DiskCostModel, MainMemoryCostModel, UnitCostModel
from repro.storage.device import SimulatedDevice
from repro.storage.parallel_file import PartitionedFile


class TestBucketStore:
    def test_insert_and_lookup(self):
        store = BucketStore()
        store.insert((0, 1), "a")
        store.insert((0, 1), "b")
        assert store.records_in((0, 1)) == ("a", "b")
        assert store.record_count == 2
        assert store.bucket_count == 1

    def test_missing_bucket_empty(self):
        assert BucketStore().records_in((9, 9)) == ()

    def test_delete(self):
        store = BucketStore()
        store.insert((0,), "a")
        assert store.delete((0,), "a")
        assert not store.delete((0,), "a")
        assert store.record_count == 0
        assert not store.has_bucket((0,))

    def test_delete_absent_bucket(self):
        assert not BucketStore().delete((1,), "x")

    def test_clear(self):
        store = BucketStore()
        store.insert((0,), "a")
        store.clear()
        assert store.record_count == 0
        assert store.bucket_count == 0

    def test_invariants_pass(self):
        store = BucketStore()
        store.insert((0,), "a")
        store.delete((0,), "a")
        store.check_invariants()

    def test_invariant_violation_detected(self):
        store = BucketStore()
        store.insert((0,), "a")
        store._record_count = 5  # corrupt deliberately
        with pytest.raises(StorageError):
            store.check_invariants()


class TestCostModels:
    def test_disk_seek_plus_transfer(self):
        model = DiskCostModel(seek_ms=10.0, transfer_ms_per_bucket=2.0)
        assert model.service_time(0) == 0.0
        assert model.service_time(5) == 10.0 + 10.0

    def test_memory_scales_with_cycles(self):
        model = MainMemoryCostModel(cycles_per_bucket=100, clock_mhz=10.0)
        assert model.service_time(10) == pytest.approx(0.1)

    def test_unit_model(self):
        assert UnitCostModel().service_time(7) == 7.0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            UnitCostModel().service_time(-1)


class TestSimulatedDevice:
    def test_insert_read_accounting(self):
        device = SimulatedDevice(0, cost_model=UnitCostModel())
        device.insert((0, 0), "r1")
        device.insert((0, 1), "r2")
        records = device.read_buckets([(0, 0), (0, 1), (1, 1)])
        assert sorted(records) == ["r1", "r2"]
        assert device.stats.bucket_reads == 3
        assert device.stats.records_returned == 2
        assert device.stats.busy_time_ms == 3.0

    def test_capacity_enforced(self):
        device = SimulatedDevice(0, capacity=1)
        device.insert((0,), "a")
        with pytest.raises(DeviceFullError):
            device.insert((0,), "b")

    def test_delete_accounting(self):
        device = SimulatedDevice(0)
        device.insert((0,), "a")
        assert device.delete((0,), "a")
        assert device.stats.deletes == 1
        assert not device.delete((0,), "a")
        assert device.stats.deletes == 1

    def test_stats_reset(self):
        device = SimulatedDevice(0)
        device.insert((0,), "a")
        device.stats.reset()
        assert device.stats.inserts == 0


class TestPartitionedFile:
    def _file(self, m=4):
        fs = FileSystem.of(4, 8, m=m)
        return PartitionedFile(FXDistribution(fs))

    def test_insert_places_on_method_device(self):
        pf = self._file()
        bucket = pf.insert((123, "gadget"))
        device = pf.method.device_of(bucket)
        assert pf.devices[device].record_count == 1
        assert pf.record_count == 1

    def test_insert_all_and_loads(self):
        pf = self._file()
        pf.insert_all([(i, f"name-{i}") for i in range(100)])
        assert pf.record_count == 100
        assert sum(pf.device_loads()) == 100

    def test_delete_round_trip(self):
        pf = self._file()
        pf.insert((7, "x"))
        assert pf.delete((7, "x"))
        assert not pf.delete((7, "x"))
        assert pf.record_count == 0

    def test_query_hashes_with_same_functions(self):
        pf = self._file()
        bucket = pf.insert((55, "thing"))
        query = pf.query({0: 55})
        assert query.values[0] == bucket[0]
        assert query.values[1] is None

    def test_check_invariants_clean(self):
        pf = self._file()
        pf.insert_all([(i, str(i)) for i in range(50)])
        pf.check_invariants()

    def test_check_invariants_detects_misplacement(self):
        pf = self._file()
        # Bypass routing: put a bucket on a device the method disagrees with.
        fs = pf.filesystem
        bucket = (0, 0)
        wrong = (pf.method.device_of(bucket) + 1) % fs.m
        pf.devices[wrong].insert(bucket, ("rogue",))
        with pytest.raises(StorageError):
            pf.check_invariants()

    def test_mismatched_multikey_hash_rejected(self):
        fs = FileSystem.of(4, 8, m=4)
        other = FileSystem.of(4, 8, m=8)
        with pytest.raises(ConfigurationError):
            PartitionedFile(
                FXDistribution(fs), multikey_hash=MultiKeyHash.default(other)
            )

    def test_device_capacity_propagates(self):
        fs = FileSystem.of(4, 8, m=4)
        pf = PartitionedFile(FXDistribution(fs), device_capacity=0)
        with pytest.raises(DeviceFullError):
            pf.insert((1, "x"))
