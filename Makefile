PYTHON ?= python

.PHONY: install test bench bench-batch report examples faults obs recover serve gateway chaos adapt clean

install:
	$(PYTHON) -m pip install -e .[test] || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-batch:
	$(PYTHON) benchmarks/bench_batchexec.py --smoke --out /tmp/BENCH_batchexec.json

report:
	$(PYTHON) -m repro report --output EXPERIMENTS.md

faults:
	$(PYTHON) -m repro faults run --fields 8,8 --devices 8 --queries 100 \
		--fail 2 --error-rate 0.05 --replicate
	$(PYTHON) -m repro faults report --fields 8,8 --devices 8 --queries 20

obs:
	$(PYTHON) -m repro obs report --fields 2,2,2 --devices 8 --queries 50
	$(PYTHON) -m repro obs export --fields 2,2,2 --devices 8 --queries 50 \
		--deterministic-clock --validate --jsonl /tmp/obs_run.jsonl
	$(PYTHON) -m repro obs check --fields 2,2,2 --devices 8 --queries 50
	$(PYTHON) -m repro obs tail --fields 2,2,2 --devices 8 --queries 20 \
		--lines 10
	$(PYTHON) -m repro obs slo --fields 4,4 --devices 4 \
		--tenants alpha,beta --connections 2 --requests 15

recover:
	$(PYTHON) -m repro recover scrub --fields 4,4 --devices 8 \
		--records 200 --corruption-rate 0.05
	$(PYTHON) -m repro recover replay --fields 4,4 --devices 8 \
		--records 64 --all-offsets --torn-tail
	$(PYTHON) -m repro recover rebuild --fields 4,4 --devices 8 \
		--records 200 --lose 2 --queries 20

serve:
	$(PYTHON) -m repro serve --fields 8,8 --devices 8 --records 128 \
		--clients 8 --requests 40 --write-every 4 --hot-fraction 0.5 \
		--verify
	$(PYTHON) benchmarks/bench_service.py --smoke

gateway:
	$(PYTHON) -m repro gateway --fields 8,8 --devices 8 \
		--tenants alpha,beta --connections 4 --requests 25 \
		--write-every 5 --preload 16 --verify \
		--export-jsonl /tmp/gateway_trace.jsonl
	$(PYTHON) -m repro gateway --fields 8,8 --devices 8 \
		--tenants alpha,beta --connections 2 --requests 10 \
		--preload 4 --quota 20 --verify
	$(PYTHON) benchmarks/bench_gateway.py --smoke

chaos:
	$(PYTHON) -m repro chaos --fields 8,8 --devices 8 \
		--tenants alpha,beta --connections 2 --requests 12 \
		--fault-rate 0.06 --crash-at 0.5 --torn-tail
	$(PYTHON) benchmarks/bench_chaos.py --smoke --out /tmp/BENCH_chaos.json

adapt:
	$(PYTHON) -m repro adapt score --fields 2,2,2,2 --devices 16 \
		--mix "***1=50,**11=20,*1*1=15,1**1=15"
	$(PYTHON) -m repro adapt plan --fields 2,2,2,2 --devices 16 \
		--mix "***1=50,**11=20,*1*1=15,1**1=15"
	$(PYTHON) -m repro adapt apply --fields 2,2,2,2 --devices 16 \
		--mix "***1=50,**11=20,*1*1=15,1**1=15"
	$(PYTHON) benchmarks/bench_adaptive.py --smoke --out /tmp/BENCH_adaptive.json

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples OK"

clean:
	rm -rf .pytest_cache build dist src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
