PYTHON ?= python

.PHONY: install test bench report examples clean

install:
	$(PYTHON) -m pip install -e .[test] || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

report:
	$(PYTHON) -m repro report --output EXPERIMENTS.md

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples OK"

clean:
	rm -rf .pytest_cache build dist src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
