"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``report``   regenerate EXPERIMENTS.md (all tables and figures),
``table``    print one of Tables 7-9,
``figure``   print one of Figures 1-4 (optionally as an ASCII chart),
``census``   strict-optimality census of a method on a file system,
``skew``     skew profile of the standard methods on a file system,
``search``   transform-assignment search (paper families or GF(2) linear),
``design``   optimal directory bit allocation from query statistics,
``simulate`` concurrent-workload latency comparison of the methods,
``recommend`` rank methods for a file system and workload,
``perf``     exercise the engine fast paths and print the perf counters,
``faults``   fault-tolerant runtime: stream simulation under a fault plan
             (``run``) or availability curves plus runtime counters
             (``report``),
``obs``      telemetry: replay a workload and render the metrics/latency
             report (``report``), export the structured run as JSONL
             (``export``), print the last spans (``tail``), or verify
             strict optimality from telemetry alone (``check``),
``recover``  durability: scrub-and-repair a corrupted replicated file
             (``scrub``), crash/recovery byte-identity at WAL record
             boundaries (``replay``), rebuild a lost device from replicas
             and re-verify optimality (``rebuild``), or run all three as
             one health report (``report``),
``serve``    concurrent serving tier: drive a deterministic closed-loop
             multi-client load through the admission-controlled,
             coalescing, result-cached front end; report throughput,
             latency percentiles and the ``service.*`` counters, and
             (``--verify``) prove zero stale reads by serial replay,
``adapt``    workload-adaptive declustering: score the deployed transform
             assignment against an observed query mix (``score``), search
             for a better one and report the gap to the lower bound
             (``plan``), or hot-swap a durable file onto it through the
             WAL-audited migration path and re-verify optimality from
             telemetry (``apply``).

File systems are given as ``--fields 8,8,16 --devices 32``.  The sweeping
commands (``census``, ``search``) accept ``--parallel N`` to fan the
per-pattern / per-assignment work over N threads (0 = one per CPU) with
results identical to serial runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence

from repro.analysis.ascii_chart import render_series
from repro.api import default_gdm_multipliers, make_method, method_names
from repro.core.fx import FXDistribution
from repro.core.linear import random_matrix_search
from repro.core.optimality import optimality_report
from repro.distribution.base import available_methods, create_method
from repro.distribution.search import (
    exhaustive_assignment_search,
    hill_climb_assignment_search,
)
from repro.errors import ConfigurationError, ReproError
from repro.hashing.fields import FileSystem
from repro.util.tables import format_table

__all__ = ["main", "build_parser"]


def _parse_filesystem(args: argparse.Namespace) -> FileSystem:
    sizes = [int(part) for part in args.fields.split(",") if part]
    return FileSystem.of(*sizes, m=args.devices)


def _add_filesystem_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fields",
        required=True,
        help="comma-separated field sizes (powers of two), e.g. 8,8,16",
    )
    parser.add_argument(
        "--devices",
        type=int,
        required=True,
        help="number of parallel devices M (a power of two)",
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded = ["--output", str(args.output)]
    if args.no_exact_figures:
        forwarded.append("--no-exact-figures")
    if args.stdout:
        forwarded.append("--stdout")
    return runner_main(forwarded)


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments.response_tables import reproduce_table

    print(reproduce_table(args.which).render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import reproduce_figure

    series = reproduce_figure(args.which, p=args.p)
    print(series.render())
    if args.chart:
        print()
        print(render_series(series))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    fs = _parse_filesystem(args)
    kwargs: dict[str, object] = {}
    if args.method == "gdm":
        kwargs["multipliers"] = tuple(
            int(part) for part in (args.multipliers or "").split(",") if part
        ) or default_gdm_multipliers(fs.n_fields)
    if args.method == "fx" and args.transforms:
        kwargs["transforms"] = args.transforms.split(",")
    method = create_method(args.method, fs, **kwargs)
    report = optimality_report(method, parallel=args.parallel)
    print(report.summary())
    if report.failures and args.failures:
        rows = [
            [sorted(pattern), worst, bound]
            for pattern, worst, bound in report.failures[: args.failures]
        ]
        print()
        print(
            format_table(
                ["unspecified fields", "worst load", "allowed"],
                rows,
                title="worst failures",
            )
        )
    return 0 if report.optimal_fraction == 1.0 else 1


def _cmd_skew(args: argparse.Namespace) -> int:
    from repro.analysis.skew import skew_summary
    from repro.distribution.gdm import GDMDistribution
    from repro.distribution.modulo import ModuloDistribution

    fs = _parse_filesystem(args)
    methods = [
        FXDistribution(fs, policy="theorem9"),
        FXDistribution(fs, policy="paper"),
        ModuloDistribution(fs),
        GDMDistribution(fs, multipliers=default_gdm_multipliers(fs.n_fields)),
    ]
    rows = [skew_summary(method, p=args.p).row() for method in methods]
    rows[0][0] = "fx (theorem9)"
    rows[1][0] = "fx (paper)"
    print(
        format_table(
            ["method", "E[max load]", "E[load factor]", "worst factor",
             "optimal queries"],
            rows,
            title=f"Skew profile on {fs.describe()} (p = {args.p})",
        )
    )
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    fs = _parse_filesystem(args)
    if args.space == "families":
        if len(fs.small_fields()) <= 6:
            result = exhaustive_assignment_search(
                fs, p=args.p, parallel=args.parallel
            )
            how = f"exhaustive, {result.evaluations} assignments"
        else:
            result = hill_climb_assignment_search(
                fs, p=args.p, seed=args.seed, parallel=args.parallel
            )
            how = f"hill climb, {result.evaluations} evaluations"
        print(f"best assignment ({how}): {result.methods}")
        print(f"exact optimal fraction: {100 * result.score:.2f}%")
    else:
        result = random_matrix_search(
            fs, iterations=args.iterations, p=args.p, seed=args.seed
        )
        print(
            f"best linear transforms after {result.evaluations} draws: "
            f"{100 * result.score:.2f}% of queries strict optimal"
        )
        for i, transform in enumerate(result.transforms):
            if transform.method == "LIN":
                print(f"field {i} matrix:")
                print(transform.matrix)
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.hashing.design import design_directory

    probabilities = [float(p) for p in args.probabilities.split(",") if p]
    design = design_directory(
        probabilities,
        total_bits=args.bits,
        max_bits_per_field=args.max_bits,
    )
    rows = [
        [i, p, b, 1 << b]
        for i, (p, b) in enumerate(zip(probabilities, design.bits))
    ]
    print(
        format_table(
            ["field", "P(specified)", "bits", "directory size"],
            rows,
            title=f"Optimal directory for {args.bits} total bits",
            float_digits=2,
        )
    )
    print(f"expected qualified buckets: {design.expected_qualified():.2f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.distribution.gdm import GDMDistribution
    from repro.distribution.modulo import ModuloDistribution
    from repro.query.workload import QueryWorkload, WorkloadSpec
    from repro.storage.costs import DiskCostModel
    from repro.storage.simulator import ParallelQuerySimulator, poisson_arrivals

    fs = _parse_filesystem(args)
    workload = QueryWorkload(
        fs,
        WorkloadSpec(spec_probability=args.p, exclude_trivial=True,
                     seed=args.seed),
    )
    arrivals = poisson_arrivals(
        workload, args.queries, rate_qps=args.rate, seed=args.seed
    )
    methods = {
        "FX": FXDistribution(fs, policy="paper"),
        "Modulo": ModuloDistribution(fs),
        "GDM": GDMDistribution(
            fs, multipliers=default_gdm_multipliers(fs.n_fields)
        ),
    }
    reports = {
        name: ParallelQuerySimulator(
            method, cost_model=DiskCostModel()
        ).run(arrivals).to_dict()
        for name, method in methods.items()
    }
    if args.json:
        print(json.dumps(reports, indent=2))
        return 0
    rows = [
        [
            name,
            round(data["mean_latency_ms"], 1),
            round(data["max_latency_ms"], 1),
            round(data["mean_queueing_ms"], 1),
            round(data["throughput_qps"], 2),
        ]
        for name, data in reports.items()
    ]
    print(
        format_table(
            ["method", "mean latency", "max latency", "mean queueing",
             "throughput q/s"],
            rows,
            title=(
                f"{args.queries} queries at {args.rate} q/s on "
                f"{fs.describe()}"
            ),
        )
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.experiments.verification import verify_method

    fs = _parse_filesystem(args)
    if args.method == "fx":
        method = FXDistribution(fs, policy=args.policy)
    else:
        method = create_method(args.method, fs)
    report = verify_method(method)
    print(report.summary())
    for pattern, engines in report.disagreements[:10]:
        print(f"  pattern {sorted(pattern)}: {engines}")
    return 0 if report.consistent else 1


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.distribution.advisor import recommend_method

    fs = _parse_filesystem(args)
    recommendation = recommend_method(fs, p=args.p)
    print(recommendation.render())
    best = recommendation.best
    print(
        f"\nrecommended: {best.name} "
        f"(E[largest response] = {best.expected_largest:.3f}, "
        f"{100 * best.optimal_fraction:.1f}% of queries strict optimal)"
    )
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """Exercise the engine fast paths, then print the perf counters.

    The counters are process-wide, so a fresh CLI run must generate some
    traffic before a report means anything: we sweep the optimality census
    twice (the second pass should be all cache hits), enumerate every
    device's buckets for a representative query through both inverse-mapping
    paths, and plan one pattern-grouped batch.
    """
    import time

    from repro.perf import render_report, reset_counters
    from repro.query.patterns import patterns_with_k_unspecified, representative_query
    from repro.storage.batch import BatchPlanner

    fs = _parse_filesystem(args)
    kwargs: dict[str, object] = {}
    if args.method == "gdm":
        kwargs["multipliers"] = default_gdm_multipliers(fs.n_fields)
    method = create_method(args.method, fs, **kwargs)
    reset_counters()

    for __ in range(max(1, args.repeat)):
        optimality_report(method, parallel=args.parallel)

    # One specified field, the rest free: the canonical serving-path shape.
    query = representative_query(fs, frozenset(range(1, fs.n_fields)) or {0})
    iter_started = time.perf_counter()
    iter_buckets = sum(
        1
        for device in range(fs.m)
        for __ in method.qualified_on_device(device, query)
    )
    iter_seconds = time.perf_counter() - iter_started
    array_buckets = sum(
        method.qualified_on_device_array(device, query).shape[0]
        for device in range(fs.m)
    )

    batch = [
        representative_query(fs, pattern)
        for pattern in patterns_with_k_unspecified(fs.n_fields, 1)
        for __ in range(2)
    ]
    BatchPlanner(method).plan(batch)

    print(render_report(title=f"Engine perf counters — {method.describe()}"))
    print()
    print(
        f"inverse mapping sweep ({query.describe()}): "
        f"{array_buckets} buckets; iterator path took {iter_seconds:.4f}s "
        f"({iter_buckets / iter_seconds:,.0f}/s)"
    )
    return 0


def _parse_device_set(text: str | None) -> frozenset[int]:
    try:
        return frozenset(
            int(part) for part in (text or "").split(",") if part
        )
    except ValueError:
        raise ConfigurationError(
            f"bad device list {text!r}; expected e.g. 0,3"
        ) from None


def _parse_slow_map(text: str | None) -> dict[int, float]:
    factors: dict[int, float] = {}
    for part in (text or "").split(","):
        if not part:
            continue
        device, sep, factor = part.partition(":")
        try:
            if not sep:
                raise ValueError
            factors[int(device)] = float(factor)
        except ValueError:
            raise ConfigurationError(
                f"bad --slow entry {part!r}; expected device:factor"
            ) from None
    return factors


def _parse_fault_plan(args: argparse.Namespace, default_fail=""):
    from repro.runtime import FaultPlan

    return FaultPlan(
        seed=args.seed,
        failed_devices=_parse_device_set(
            args.fail if args.fail is not None else default_fail
        ),
        transient_error_rate=args.error_rate,
        slow_factors=_parse_slow_map(args.slow),
    )


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.action == "run":
        return _cmd_faults_run(args)
    return _cmd_faults_report(args)


def _cmd_faults_run(args: argparse.Namespace) -> int:
    """Stream a seeded workload through the fault-aware simulator."""
    from repro.distribution.replicated import ChainedReplicaScheme
    from repro.query.workload import QueryWorkload, WorkloadSpec
    from repro.runtime import FaultAwareQuerySimulator, RetryPolicy
    from repro.storage.costs import DiskCostModel
    from repro.storage.simulator import poisson_arrivals

    fs = _parse_filesystem(args)
    method = make_method(args.method, fields=fs.field_sizes, devices=fs.m)
    scheme = (
        ChainedReplicaScheme(method, offset=args.offset)
        if args.replicate
        else None
    )
    plan = _parse_fault_plan(args)
    retry = RetryPolicy(max_attempts=args.retries, timeout_ms=args.timeout)
    workload = QueryWorkload(
        fs,
        WorkloadSpec(spec_probability=args.p, exclude_trivial=True,
                     seed=args.seed),
    )
    arrivals = poisson_arrivals(
        workload, args.queries, rate_qps=args.rate, seed=args.seed
    )
    report = FaultAwareQuerySimulator(
        method, plan=plan, retry=retry, scheme=scheme,
        cost_model=DiskCostModel(),
    ).run(arrivals)
    data = report.to_dict()
    if args.json:
        print(json.dumps(data, indent=2))
        return 0
    print(f"{args.method} under {plan.describe()}"
          + (" with chained replicas" if scheme else ""))
    rows = [
        ["queries", data["queries"]],
        ["mean latency (ms)", round(data["mean_latency_ms"], 2)],
        ["p95 latency (ms)", round(data["p95_latency_ms"], 2)],
        ["max latency (ms)", round(data["max_latency_ms"], 2)],
        ["throughput (q/s)", round(data["throughput_qps"], 2)],
        ["mean completeness", round(data["mean_completeness"], 4)],
        ["retries", data["retries"]],
        ["timeouts", data["timeouts"]],
        ["failovers", data["failovers"]],
        ["lost buckets", data["lost_buckets"]],
    ]
    print(format_table(["metric", "value"], rows, float_digits=4))
    return 0


def _cmd_faults_report(args: argparse.Namespace) -> int:
    """Availability curves plus a live failover demo and runtime counters."""
    import random as _random

    from repro.analysis.availability import degraded_response_curve
    from repro.distribution.replicated import ChainedReplicaScheme
    from repro.perf import render_report, reset_counters
    from repro.query.workload import QueryWorkload, WorkloadSpec
    from repro.runtime import DegradedExecutor, RetryPolicy
    from repro.storage.costs import DiskCostModel
    from repro.storage.parallel_file import PartitionedFile
    from repro.storage.replicated_file import ReplicatedFile

    fs = _parse_filesystem(args)
    reset_counters()
    plan = _parse_fault_plan(args, default_fail="0")
    retry = RetryPolicy(max_attempts=args.retries, timeout_ms=args.timeout)
    workload = QueryWorkload(
        fs,
        WorkloadSpec(spec_probability=args.p, exclude_trivial=True,
                     seed=args.seed),
    )
    queries = [workload.next_query() for __ in range(min(args.queries, 25))]

    fx = make_method("fx", fields=fs.field_sizes, devices=fs.m)
    modulo = make_method("modulo", fields=fs.field_sizes, devices=fs.m)
    replicated_fx = make_method(
        "replicated", fields=fs.field_sizes, devices=fs.m,
        base="fx", offset=args.offset,
    )
    k_values = range(min(args.max_failures, fs.m) + 1)
    curves = {
        "FX": degraded_response_curve(
            fx, queries, k_values, cost_model=DiskCostModel(), seed=args.seed
        ),
        "Modulo": degraded_response_curve(
            modulo, queries, k_values, cost_model=DiskCostModel(),
            seed=args.seed,
        ),
        "FX + replicas": degraded_response_curve(
            replicated_fx.base, queries, k_values, scheme=replicated_fx,
            cost_model=DiskCostModel(), seed=args.seed,
        ),
    }
    if args.json:
        payload = {
            name: [
                {
                    "k": point.k,
                    "survival": point.survival,
                    "mean_response_ms": point.mean_response_ms,
                    "mean_completeness": point.mean_completeness,
                }
                for point in points
            ]
            for name, points in curves.items()
        }
        print(json.dumps(payload, indent=2))
        return 0
    for name, points in curves.items():
        print(
            format_table(
                ["failed devices k", "P(no data loss)",
                 "mean response (ms)", "mean completeness"],
                [point.row() for point in points],
                title=f"{name} on {fs.describe()}",
                float_digits=4,
            )
        )
        print()

    # Live failover demo: the same records and plan against a replicated
    # and an unreplicated file, driving the runtime counters shown below.
    rng = _random.Random(args.seed)
    records = [
        tuple(rng.randrange(1024) for __ in range(fs.n_fields))
        for __ in range(64)
    ]
    replicated = ReplicatedFile(
        ChainedReplicaScheme(
            make_method("fx", fields=fs.field_sizes, devices=fs.m),
            offset=args.offset,
        )
    )
    replicated.insert_all(records)
    plain = PartitionedFile(
        make_method("fx", fields=fs.field_sizes, devices=fs.m)
    )
    plain.insert_all(records)
    masked = DegradedExecutor(replicated, plan=plan, retry=retry)
    exposed = DegradedExecutor(plain, plan=plan, retry=retry)
    rows = []
    for record in records[:8]:
        specified = {0: record[0]}
        covered = masked.search(specified)
        partial = exposed.search(specified)
        rows.append(
            [
                str(specified),
                len(covered.records),
                covered.failovers,
                round(covered.completeness, 4),
                round(partial.completeness, 4),
            ]
        )
    print(
        format_table(
            ["query", "records", "failovers", "completeness (replicated)",
             "completeness (plain)"],
            rows,
            title=f"Degraded execution under {plan.describe()}",
            float_digits=4,
        )
    )
    print()
    print(render_report(title="Runtime counters"))
    return 0


def _obs_queries(args: argparse.Namespace):
    """The replay workload: a trace file or a seeded random stream."""
    from repro.query.trace import load_trace
    from repro.query.workload import QueryWorkload, WorkloadSpec

    fs = _parse_filesystem(args)
    method = make_method(args.method, fields=fs.field_sizes, devices=fs.m)
    if args.trace:
        queries = load_trace(fs, args.trace)
    else:
        workload = QueryWorkload(
            fs,
            WorkloadSpec(spec_probability=args.p, exclude_trivial=True,
                         seed=args.seed),
        )
        queries = workload.take(args.queries)
    return method, queries


def _obs_replay(args: argparse.Namespace):
    """Reset telemetry, then replay the workload end to end.

    ``--deterministic-clock`` injects a :class:`~repro.obs.ManualClock`
    first, which makes the whole run — span timestamps *and* the
    perf-counter seconds — reproducible, so ``obs export`` output is
    byte-identical across runs.
    """
    import random as _random

    from repro import obs
    from repro.storage.batch import BatchPlanner
    from repro.storage.executor import QueryExecutor
    from repro.storage.parallel_file import PartitionedFile

    if args.deterministic_clock:
        obs.configure(clock=obs.ManualClock(step=0.001), reset=True)
    else:
        obs.reset_telemetry()
    method, queries = _obs_queries(args)
    fs = method.filesystem
    pf = PartitionedFile(method)
    rng = _random.Random(args.seed)
    pf.insert_all(
        [
            tuple(rng.randrange(1024) for __ in range(fs.n_fields))
            for __ in range(args.records)
        ]
    )
    executor = QueryExecutor(pf)
    for query in queries:
        executor.execute(query)
    if len(queries) > 1:
        BatchPlanner(method).plan(queries)
    return method, queries


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.action == "report":
        return _cmd_obs_report(args)
    if args.action == "export":
        return _cmd_obs_export(args)
    if args.action == "tail":
        return _cmd_obs_tail(args)
    if args.action == "slo":
        return _cmd_obs_slo(args)
    return _cmd_obs_check(args)


def _span_keep(args: argparse.Namespace):
    """Span predicate for the ``--tenant`` / ``--trace-id`` filters.

    Returns None when no filter is active (keep everything, including
    non-span records).  Tenant membership is resolved by walking parent
    links to the owning ``gateway.request`` span, the same attribution
    the query-mix profiler uses.
    """
    tenant = getattr(args, "filter_tenant", None)
    trace_id = getattr(args, "trace_id", None)
    if tenant is None and trace_id is None:
        return None
    from repro.obs import telemetry
    from repro.obs.profile import resolve_tenant, span_index

    index = span_index(telemetry().export_records())

    def keep(record: dict) -> bool:
        if record.get("type") != "span":
            return False
        if trace_id is not None and record.get("trace") != trace_id:
            return False
        if tenant is not None and resolve_tenant(record, index) != tenant:
            return False
        return True

    return keep


def _format_ms(value: float | None) -> str:
    return "-" if value is None else f"{value:,.3f}"


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Replay, then render one unified view of the whole metrics registry."""
    from repro.obs import telemetry
    from repro.perf import render_report

    method, queries = _obs_replay(args)
    snap = telemetry().metrics.snapshot()

    histogram_rows = [
        [
            name,
            h.count,
            _format_ms(h.quantile(0.50)),
            _format_ms(h.quantile(0.95)),
            _format_ms(h.quantile(0.99)),
            _format_ms(h.max),
        ]
        for name, h in sorted(snap.histograms.items())
    ]
    if histogram_rows:
        print(
            format_table(
                ["histogram", "count", "p50", "p95", "p99", "max"],
                histogram_rows,
                title=f"Latency histograms — {method.describe()}, "
                f"{len(queries)} queries",
            )
        )
        print()
    counter_rows = [
        [name, value] for name, value in sorted(snap.counters.items())
    ]
    counter_rows.extend(
        [name, "-" if value is None else value]
        for name, value in sorted(snap.gauges.items())
    )
    if counter_rows:
        print(format_table(["metric", "value"], counter_rows,
                           title="Counters and gauges"))
        print()
    print(render_report())
    events = telemetry().events
    print()
    print(f"{len(events)} telemetry events retained "
          f"({events.appended} recorded)")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Replay, then write the structured run as canonical JSONL."""
    import sys

    from repro.obs import telemetry, validate_jsonl
    from repro.obs.events import jsonl_line

    _obs_replay(args)
    keep = _span_keep(args)
    if keep is None:
        text = telemetry().export_jsonl()
    else:
        text = "".join(
            jsonl_line(record)
            for record in telemetry().export_records()
            if keep(record)
        )
    if args.validate:
        validate_jsonl(text)
    if args.jsonl == "-":
        sys.stdout.write(text)
    else:
        from pathlib import Path

        Path(args.jsonl).write_text(text, encoding="utf-8")
        print(
            f"wrote {text.count(chr(10))} records to {args.jsonl}"
            + (" (validated)" if args.validate else "")
        )
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    """Replay, then print the most recent spans human-readably."""
    from repro.obs import telemetry

    _obs_replay(args)
    keep = _span_keep(args)
    for record in telemetry().events.tail(args.lines):
        if record.get("type") != "span":
            continue
        if keep is not None and not keep(record):
            continue
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(record["attrs"].items())
        )
        line = (
            f"[{record['start_ms']:>12.3f}ms] #{record['id']} "
            f"{record['name']} ({record['duration_ms']:.3f}ms)"
        )
        if record["parent"] is not None:
            line += f" parent=#{record['parent']}"
        if record.get("trace"):
            line += f" trace={record['trace']:#x}"
        if attrs:
            line += f" {attrs}"
        if record["events"]:
            line += f" events={len(record['events'])}"
        print(line)
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    """Verify the strict-optimality bound from telemetry alone."""
    from repro import obs
    from repro.obs import ObservedOptimalityChecker

    if args.deterministic_clock:
        obs.configure(clock=obs.ManualClock(step=0.001), reset=True)
    else:
        obs.reset_telemetry()
    method, queries = _obs_queries(args)
    report = ObservedOptimalityChecker(method).replay(
        queries, batched=args.batched
    )
    print(report.summary())
    for observation in report.violations[:10]:
        print(
            f"  {observation.query}: observed max "
            f"{observation.observed_max} > bound {observation.bound}"
        )
    for observation in report.disagreements[:10]:
        print(
            f"  DISAGREEMENT {observation.query}: telemetry "
            f"{sorted(observation.observed_per_device)} vs closed form "
            f"{sorted(observation.closed_form_per_device)}"
        )
    return 0 if report.consistent else 1


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    """Serve a loopback multi-tenant load, then report SLO budgets.

    The snapshot is fetched through the ``{"op": "obs"}`` wire operation
    (not read from process-local state), so the command exercises the
    same path an external monitor would: framed request in, labeled
    metrics + per-tenant SLO budgets out.
    """
    from repro import obs
    from repro.api import make_gateway
    from repro.gateway import GatewayLoadSpec, run_loopback_load
    from repro.gateway.client import GatewayClient
    from repro.obs.slo import SloReport

    if args.deterministic_clock:
        obs.configure(clock=obs.ManualClock(step=0.001), reset=True)
    else:
        obs.reset_telemetry()
    fs = _parse_filesystem(args)
    tenant_names = [
        name.strip() for name in args.tenants.split(",") if name.strip()
    ]
    gateway = make_gateway(
        {name: {"request_quota": args.quota} for name in tenant_names},
        fields=fs.field_sizes,
        devices=fs.m,
        method=args.method,
    )
    host, port = gateway.start()
    try:
        load = run_loopback_load(
            (host, port),
            list(gateway.tenants.values()),
            GatewayLoadSpec(
                connections_per_tenant=args.connections,
                requests_per_connection=args.requests,
                seed=args.seed,
                spec_probability=args.p,
                preload=min(args.records, 32),
            ),
        )
        with GatewayClient(host, port) as client:
            snapshot = client.obs()
    finally:
        clean = gateway.drain()
    report = SloReport.from_dict(snapshot["slo"])
    if args.json:
        print(json.dumps(snapshot["slo"], indent=2, sort_keys=True))
    else:
        print(report.render())
        print()
        print(
            f"{load.completed} requests served over the wire, "
            f"clean drain: {clean}"
        )
    ok = clean and not load.errors and report.healthy
    return 0 if ok else 1


def _seeded_records(fs: FileSystem, count: int, seed: int) -> list[tuple]:
    """The deterministic record stream every recover action inserts."""
    import random as _random

    rng = _random.Random(seed)
    return [
        tuple(rng.randrange(1024) for __ in range(fs.n_fields))
        for __ in range(count)
    ]


def _recover_telemetry(args: argparse.Namespace) -> None:
    from repro import obs

    if getattr(args, "deterministic_clock", False):
        obs.configure(clock=obs.ManualClock(step=0.001), reset=True)
    else:
        obs.reset_telemetry()


def _cmd_recover(args: argparse.Namespace) -> int:
    if args.action == "scrub":
        return _cmd_recover_scrub(args)
    if args.action == "replay":
        return _cmd_recover_replay(args)
    if args.action == "rebuild":
        return _cmd_recover_rebuild(args)
    return _cmd_recover_report(args)


def _recover_scrub_data(args: argparse.Namespace) -> dict:
    """Corrupt a seeded replicated file per the fault plan, scrub twice."""
    from repro.api import make_durable_file
    from repro.durability import Scrubber
    from repro.runtime import FaultInjector, FaultPlan

    fs = _parse_filesystem(args)
    durable = make_durable_file(
        args.method, fields=fs.field_sizes, devices=fs.m, offset=args.offset
    )
    durable.insert_all(_seeded_records(fs, args.records, args.seed))
    plan = FaultPlan(seed=args.seed, corruption_rate=args.corruption_rate)
    scrubber = Scrubber(durable.file)
    damaged = scrubber.inject(FaultInjector(plan, fs.m))
    sweep = scrubber.sweep()
    verify = scrubber.sweep()
    return {
        "plan": plan.describe(),
        "pages_damaged": len(damaged),
        "sweep": sweep.to_dict(),
        "verify_clean": verify.clean,
        "ok": sweep.healed
        and verify.clean
        and sweep.bad_pages == len(damaged),
    }


def _cmd_recover_scrub(args: argparse.Namespace) -> int:
    _recover_telemetry(args)
    data = _recover_scrub_data(args)
    if args.json:
        print(json.dumps(data, indent=2))
        return 0 if data["ok"] else 1
    sweep = data["sweep"]
    print(f"scrub under {data['plan']}")
    rows = [
        ["pages damaged (injected)", data["pages_damaged"]],
        ["pages checked", sweep["pages_checked"]],
        ["corrupt pages detected", sweep["corrupt_pages"]],
        ["missing pages detected", sweep["missing_pages"]],
        ["pages repaired", sweep["repaired_pages"]],
        ["unrepairable", len(sweep["unrepairable"])],
        ["second sweep clean", data["verify_clean"]],
    ]
    print(format_table(["metric", "value"], rows))
    return 0 if data["ok"] else 1


def _recover_replay_data(args: argparse.Namespace) -> dict:
    """Crash at WAL boundaries, recover, compare digests to fault-free."""
    from repro.api import make_durable_file
    from repro.durability import recover
    from repro.errors import SimulatedCrashError

    fs = _parse_filesystem(args)
    records = _seeded_records(fs, args.records, args.seed)
    build = lambda **kw: make_durable_file(  # noqa: E731
        args.method, fields=fs.field_sizes, devices=fs.m,
        offset=args.offset, **kw,
    )
    # Fault-free digests after each prefix of k mutations.
    baseline = build()
    digests = [baseline.state_digest()]
    for record in records:
        baseline.insert(record)
        digests.append(baseline.state_digest())

    if args.all_offsets:
        boundaries = list(range(len(records) + 1))
    else:
        crash_after = (
            args.crash_after
            if args.crash_after is not None
            else len(records) // 2
        )
        boundaries = [min(crash_after, len(records))]
    mismatches = []
    torn_tails = 0
    for k in boundaries:
        crashed = build(crash_after=k, torn_tail=args.torn_tail)
        try:
            crashed.insert_all(records)
        except SimulatedCrashError:
            pass
        fresh = build()
        report = recover(crashed.wal, fresh.file)
        torn_tails += report.had_torn_tail
        if fresh.state_digest() != digests[k] or report.entries_replayed != k:
            mismatches.append(k)
    return {
        "records": len(records),
        "boundaries_tested": len(boundaries),
        "torn_tail": args.torn_tail,
        "torn_tails_discarded": torn_tails,
        "mismatched_boundaries": mismatches,
        "byte_identical": not mismatches,
        "ok": not mismatches,
    }


def _cmd_recover_replay(args: argparse.Namespace) -> int:
    _recover_telemetry(args)
    data = _recover_replay_data(args)
    if args.json:
        print(json.dumps(data, indent=2))
        return 0 if data["ok"] else 1
    rows = [
        ["records in workload", data["records"]],
        ["crash boundaries tested", data["boundaries_tested"]],
        ["torn tail injected", data["torn_tail"]],
        ["torn tails discarded", data["torn_tails_discarded"]],
        ["byte-identical recoveries", data["byte_identical"]],
    ]
    print(format_table(["metric", "value"], rows,
                       title="WAL crash/recovery byte-identity"))
    if data["mismatched_boundaries"]:
        print(f"MISMATCH at boundaries {data['mismatched_boundaries']}")
    return 0 if data["ok"] else 1


def _recover_rebuild_data(args: argparse.Namespace) -> dict:
    """Lose a device, rebuild from replicas, verify digest and the bound."""
    from repro.api import make_durable_file
    from repro.durability import DeviceRebuilder
    from repro.query.workload import QueryWorkload, WorkloadSpec

    fs = _parse_filesystem(args)
    durable = make_durable_file(
        args.method, fields=fs.field_sizes, devices=fs.m, offset=args.offset
    )
    durable.insert_all(_seeded_records(fs, args.records, args.seed))
    before = durable.state_digest()
    lost = args.lose % fs.m
    durable.file.lose_device(lost)
    workload = QueryWorkload(
        fs,
        WorkloadSpec(spec_probability=args.p, exclude_trivial=True,
                     seed=args.seed),
    )
    queries = workload.take(args.queries) if args.queries else None
    report = DeviceRebuilder(durable.file).rebuild(lost, queries=queries)
    identical = durable.state_digest() == before
    data = report.to_dict()
    data["digest_identical"] = identical
    data["ok"] = identical and report.optimality_verified is not False
    return data


def _cmd_recover_rebuild(args: argparse.Namespace) -> int:
    _recover_telemetry(args)
    data = _recover_rebuild_data(args)
    if args.json:
        print(json.dumps(data, indent=2))
        return 0 if data["ok"] else 1
    rows = [
        ["device lost", data["device"]],
        ["buckets restored", data["buckets_restored"]],
        ["records restored", data["records_restored"]],
        ["source devices", data["source_devices"]],
        ["state byte-identical", data["digest_identical"]],
        ["optimality bound verified",
         "-" if data["optimality_verified"] is None
         else data["optimality_verified"]],
        ["queries checked", data["optimality_queries"]],
    ]
    print(format_table(["metric", "value"], rows,
                       title="Device rebuild from chained replicas"))
    return 0 if data["ok"] else 1


def _cmd_recover_report(args: argparse.Namespace) -> int:
    """All three durability drills plus the durability counters."""
    from repro.obs import telemetry

    _recover_telemetry(args)
    combined = {
        "scrub": _recover_scrub_data(args),
        "replay": _recover_replay_data(args),
        "rebuild": _recover_rebuild_data(args),
    }
    snap = telemetry().metrics.snapshot()
    combined["counters"] = {
        name: value
        for name, value in sorted(snap.counters.items())
        if name.startswith("durability.")
    }
    ok = all(section["ok"] for section in
             (combined["scrub"], combined["replay"], combined["rebuild"]))
    combined["ok"] = ok
    if args.json:
        print(json.dumps(combined, indent=2))
        return 0 if ok else 1
    rows = [
        ["scrub: repaired / damaged",
         f"{combined['scrub']['sweep']['repaired_pages']} / "
         f"{combined['scrub']['pages_damaged']}"],
        ["replay: byte-identical boundaries",
         f"{combined['replay']['boundaries_tested'] - len(combined['replay']['mismatched_boundaries'])} / "
         f"{combined['replay']['boundaries_tested']}"],
        ["rebuild: records restored",
         combined["rebuild"]["records_restored"]],
        ["rebuild: optimality verified",
         "-" if combined["rebuild"]["optimality_verified"] is None
         else combined["rebuild"]["optimality_verified"]],
        ["overall", "healthy" if ok else "DEGRADED"],
    ]
    print(format_table(["drill", "result"], rows,
                       title="Durability health report"))
    if combined["counters"]:
        print()
        print(format_table(
            ["counter", "value"],
            [[name, value] for name, value in combined["counters"].items()],
        ))
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Drive the serving front end with a closed-loop load and report."""
    from repro import obs
    from repro.api import make_service
    from repro.runtime import RetryPolicy
    from repro.service import LoadGenerator, LoadSpec

    obs.reset_telemetry()
    fs = _parse_filesystem(args)
    service = make_service(
        args.method,
        fields=fs.field_sizes,
        devices=fs.m,
        max_concurrent=args.max_concurrent,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline,
        admission_retry=RetryPolicy(max_attempts=args.retries),
        cache_capacity=None if args.no_cache else args.cache_capacity,
        coalesce=not args.no_coalesce,
        batch_max_size=args.batch_size,
        batch_window_ms=args.batch_window_ms,
    )
    initial = _seeded_records(fs, args.records, args.seed)
    service.file.insert_all(initial)
    generator = LoadGenerator(
        service,
        LoadSpec(
            clients=args.clients,
            requests_per_client=args.requests,
            seed=args.seed,
            spec_probability=args.p,
            write_every=args.write_every,
            hot_fraction=args.hot_fraction,
            deadline_ms=args.deadline,
        ),
    )
    report = generator.run()
    data = report.to_dict()
    mismatches: list[str] = []
    if args.verify:
        mismatches = report.verify(
            service.file.multikey_hash, initial_records=initial
        )
        data["replay_mismatches"] = len(mismatches)
    snap = obs.telemetry().metrics.snapshot()
    counters = {
        name: value
        for name, value in sorted(snap.counters.items())
        if name.startswith("service.")
    }
    shed = int(data.get("shed", 0))
    timed_out = int(data.get("timeout", 0))
    degraded = (shed or timed_out) and not args.allow_degraded
    ok = not report.errors and not mismatches and not degraded
    if degraded:
        # Machine-readable failure on stderr so scripted callers (CI, make
        # targets) can tell "load was shed" apart from a crash.
        print(
            json.dumps(
                {
                    "v": 1,
                    "error": {
                        "code": "degraded_load",
                        "message": "load run ended with shed or timed-out "
                        "requests (pass --allow-degraded to tolerate)",
                        "shed": shed,
                        "timeout": timed_out,
                    },
                }
            ),
            file=sys.stderr,
        )
    if args.json:
        data["counters"] = counters
        print(json.dumps(data, indent=2))
        return 0 if ok else 1
    rows = [
        ["clients (closed loop)", args.clients],
        ["queries served", data["ok"]],
        ["writes applied", data["writes"]],
        ["shed / timeout", f"{data['shed']} / {data['timeout']}"],
        ["coalesced", data["coalesced"]],
        ["throughput (req/s)", data["throughput_qps"]],
        ["latency p50 (ms)", round(data["p50_ms"], 3)],
        ["latency p95 (ms)", round(data["p95_ms"], 3)],
        ["latency p99 (ms)", round(data["p99_ms"], 3)],
        ["client errors", len(report.errors)],
    ]
    if args.verify:
        rows.append(["serial-replay mismatches", len(mismatches)])
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Serving {args.method} on {fs.describe()}: "
                f"{args.clients} x {args.requests} requests"
            ),
        )
    )
    if counters:
        print()
        print(
            format_table(
                ["service counter", "value"],
                [[name, value] for name, value in counters.items()],
            )
        )
    for message in mismatches[:10]:
        print(f"MISMATCH {message}")
    return 0 if ok else 1


def _cmd_gateway(args: argparse.Namespace) -> int:
    """Run the multi-tenant network gateway over a loopback load."""
    from repro import obs
    from repro.api import make_gateway
    from repro.gateway import GatewayLoadSpec, run_loopback_load
    from repro.runtime import RetryPolicy

    obs.reset_telemetry()
    fs = _parse_filesystem(args)
    tenant_names = [
        name.strip() for name in args.tenants.split(",") if name.strip()
    ]
    tenants = {
        name: {
            "request_quota": args.quota,
            "rate_per_s": args.rate,
            "burst": args.burst,
            "max_inflight": args.max_inflight,
        }
        for name in tenant_names
    }
    gateway = make_gateway(
        tenants,
        fields=fs.field_sizes,
        devices=fs.m,
        method=args.method,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        max_concurrent=args.max_concurrent,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline,
        admission_retry=RetryPolicy(max_attempts=args.retries),
        cache_capacity=None if args.no_cache else args.cache_capacity,
        coalesce=not args.no_coalesce,
    )
    host, port = gateway.start()
    if args.listen:
        print(f"gateway listening on {host}:{port} "
              f"(tenants: {', '.join(tenant_names)}; Ctrl-C to drain)")
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        clean = gateway.drain()
        return 0 if clean else 1

    report = run_loopback_load(
        (host, port),
        list(gateway.tenants.values()),
        GatewayLoadSpec(
            connections_per_tenant=args.connections,
            requests_per_connection=args.requests,
            seed=args.seed,
            spec_probability=args.p,
            write_every=args.write_every,
            batch_every=args.batch_every,
            preload=args.preload,
            deadline_ms=args.deadline,
        ),
    )
    clean_drain = gateway.drain()
    if args.export_jsonl:
        from pathlib import Path

        text = obs.telemetry().export_jsonl()
        Path(args.export_jsonl).write_text(text, encoding="utf-8")
    mismatches: dict[str, list[str]] = {}
    if args.verify:
        mismatches = {
            name: bad for name, bad in report.verify().items() if bad
        }
    snap = obs.telemetry().metrics.snapshot()
    counters = {
        name: value
        for name, value in sorted(snap.counters.items())
        if name.startswith("gateway.") and "latency" not in name
    }
    ok = not report.errors and not mismatches and clean_drain
    if not ok:
        print(
            json.dumps(
                {
                    "v": 1,
                    "error": {
                        "code": "gateway_load_failed",
                        "transport_errors": len(report.errors),
                        "stale_tenants": sorted(mismatches),
                        "clean_drain": clean_drain,
                    },
                }
            ),
            file=sys.stderr,
        )
    if args.json:
        data = report.to_dict()
        data["counters"] = counters
        data["clean_drain"] = clean_drain
        if args.verify:
            data["replay_mismatches"] = {
                name: len(bad) for name, bad in mismatches.items()
            }
        print(json.dumps(data, indent=2))
        return 0 if ok else 1
    total_rejected = sum(
        count
        for codes in report.rejections.values()
        for count in codes.values()
    )
    rows = [
        ["tenants", len(tenant_names)],
        ["connections per tenant", args.connections],
        ["requests completed", report.completed],
        ["rejected (quota / rate)", total_rejected],
        ["throughput (req/s)", round(report.throughput_qps, 3)],
        ["transport errors", len(report.errors)],
        ["clean drain", clean_drain],
    ]
    if args.verify:
        rows.append(
            ["stale reads", sum(len(bad) for bad in mismatches.values())]
        )
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Gateway {args.method} on {fs.describe()}: "
                f"{len(tenant_names)} tenants x {args.connections} "
                f"connections x {args.requests} requests"
            ),
        )
    )
    if counters:
        print()
        print(
            format_table(
                ["gateway counter", "value"],
                [[name, value] for name, value in counters.items()],
            )
        )
    for name, bad in sorted(mismatches.items()):
        for message in bad[:5]:
            print(f"MISMATCH [{name}] {message}")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos harness and prove the resilience invariants."""
    from repro import obs
    from repro.chaos import ChaosSpec, NetFaultPlan, run_chaos_load
    from repro.gateway.tenant import TenantSpec
    from repro.runtime import RetryPolicy

    obs.reset_telemetry()
    fs = _parse_filesystem(args)
    tenant_names = [
        name.strip() for name in args.tenants.split(",") if name.strip()
    ]
    tenants = [
        TenantSpec.of(name, fs.field_sizes, fs.m, method=args.method)
        for name in tenant_names
    ]
    rate = args.fault_rate
    plan = NetFaultPlan(
        seed=args.seed,
        refuse_rate=args.refuse_rate if args.refuse_rate is not None else rate,
        reset_request_rate=rate,
        reset_response_rate=rate,
        tear_rate=rate,
        duplicate_rate=rate,
        delay_rate=rate,
        delay_ms=args.delay_ms,
    )
    spec = ChaosSpec(
        connections_per_tenant=args.connections,
        requests_per_connection=args.requests,
        seed=args.seed,
        spec_probability=args.p,
        write_every=args.write_every,
        batch_every=args.batch_every,
        preload=args.preload,
        faults=plan,
        crash_at=None if args.no_crash else args.crash_at,
        torn_tail=args.torn_tail,
        timeout_s=args.timeout,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            base_delay_ms=2.0,
            max_delay_ms=25.0,
        ),
    )
    report = run_chaos_load(tenants, spec)
    violations = report.verify()
    if violations:
        print(
            json.dumps(
                {
                    "v": 1,
                    "error": {
                        "code": "chaos_invariant_violated",
                        "violations": violations,
                    },
                }
            ),
            file=sys.stderr,
        )
    if args.json:
        data = report.to_dict()
        print(json.dumps(data, indent=2))
        return 1 if violations else 0
    recovered = sum(
        (info or {}).get("entries", 0)
        for info in report.recovered.values()
    )
    rows = [
        ["tenants x connections",
         f"{len(tenant_names)} x {args.connections}"],
        ["ops (chaos phase)", report.total_ops],
        ["ok", report.ok_ops],
        ["availability", round(report.availability, 4)],
        ["faults injected", report.faults_injected],
        ["crash-restarts", report.crashes],
        ["writes recovered from WAL", recovered],
        ["retries", report.total_retries],
        ["reconnects", report.total_reconnects],
        ["dedup re-acks", report.total_deduped],
        ["invariant violations", len(violations)],
        ["canonical digest", report.canonical_digest()[:16]],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"Chaos {plan.describe()} over {fs.describe()}: "
                f"crash={'none' if spec.crash_at is None else spec.crash_at}"
            ),
        )
    )
    for message in violations[:10]:
        print(f"VIOLATION {message}")
    return 1 if violations else 0


def _parse_mix(text: str) -> dict[str, int]:
    """Parse ``--mix "***1=50,**11=20"`` into pattern counts."""
    counts: dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pattern, _, count = part.partition("=")
        try:
            counts[pattern] = int(count)
        except ValueError:
            raise ConfigurationError(
                f"--mix entry {part!r} is not pattern=count"
            ) from None
    if not counts:
        raise ConfigurationError("--mix named no patterns")
    return counts


def _adapt_model(args: argparse.Namespace, fs: FileSystem):
    """The observed mix: from a profile/export file or an inline --mix."""
    from repro.adaptive import EmpiricalQueryModel, load_profile

    if (args.profile is None) == (args.mix is None):
        raise ConfigurationError(
            "give the observed mix as exactly one of --profile (a profile "
            "JSON or obs-export JSONL file) or --mix (inline pattern=count "
            "pairs)"
        )
    if args.profile is not None:
        profile = load_profile(args.profile)
        return EmpiricalQueryModel.from_profile(
            profile, fs.n_fields, tenant=args.tenant
        )
    return EmpiricalQueryModel.from_counts(_parse_mix(args.mix), fs.n_fields)


def _adapt_baseline(args: argparse.Namespace, fs: FileSystem):
    """The deployed method the adaptation is measured against.

    ``--transforms`` pins it explicitly; otherwise the uniform-optimal
    assignment (the best the existing search finds under the paper's
    p=0.5 independence model) — the strongest mix-blind competitor.
    """
    if args.transforms:
        names = [t.strip() for t in args.transforms.split(",") if t.strip()]
        return FXDistribution(fs, transforms=names)
    if len(fs.small_fields()) <= 6:
        result = exhaustive_assignment_search(fs, parallel=args.parallel)
    else:
        result = hill_climb_assignment_search(
            fs, seed=args.seed, parallel=args.parallel
        )
    return FXDistribution(fs, transforms=list(result.methods))


def _adapt_pattern_rows(plan, model, fs: FileSystem) -> list[list[object]]:
    """Per-pattern table: weight and before/after load factors."""
    from repro.adaptive import pattern_to_unspecified
    from repro.analysis.skew import pattern_load_factor

    baseline = FXDistribution(fs, transforms=list(plan.baseline_names))
    candidate = plan.build()
    rows = []
    for indicator, weight in model.frequencies().items():
        pattern = pattern_to_unspecified(indicator, fs.n_fields)
        rows.append(
            [
                indicator,
                f"{100 * weight:.1f}%",
                round(pattern_load_factor(baseline, pattern), 3),
                round(pattern_load_factor(candidate, pattern), 3),
            ]
        )
    return rows


def _adapt_plan(args: argparse.Namespace, fs: FileSystem, model):
    from repro.adaptive import adaptive_transform_search

    return adaptive_transform_search(
        fs,
        model,
        baseline=_adapt_baseline(args, fs),
        restarts=args.restarts,
        seed=args.seed,
        linear_draws=args.linear_draws,
    )


def _cmd_adapt_score(args: argparse.Namespace) -> int:
    """Score the deployed assignment against the observed mix."""
    from repro.adaptive import score_method
    from repro.analysis.skew import pattern_load_factor

    fs = _parse_filesystem(args)
    model = _adapt_model(args, fs)
    baseline = _adapt_baseline(args, fs)
    score = score_method(baseline, model)
    if args.json:
        print(
            json.dumps(
                {
                    "method": baseline.describe(),
                    "mix": model.frequencies(),
                    "score": score.to_dict(),
                },
                sort_keys=True,
            )
        )
        return 0
    rows = []
    for indicator, weight in model.frequencies().items():
        from repro.adaptive import pattern_to_unspecified

        pattern = pattern_to_unspecified(indicator, fs.n_fields)
        rows.append(
            [
                indicator,
                f"{100 * weight:.1f}%",
                round(pattern_load_factor(baseline, pattern), 3),
            ]
        )
    print(
        format_table(
            ["pattern", "weight", "load factor"],
            rows,
            title=f"Observed mix vs {baseline.describe()}",
        )
    )
    print(f"mix-weighted E[load factor]:      {score.expected_load_factor:.4f}")
    print(f"mix-weighted E[largest response]: "
          f"{score.expected_largest_response:.4f}")
    print(f"lower bound (any allocation):     {score.lower_bound:.4f}  "
          f"(gap {score.gap:.4f})")
    print(f"strict-optimal share of the mix:  "
          f"{100 * score.optimal_weight:.1f}%")
    return 0


def _cmd_adapt_plan(args: argparse.Namespace) -> int:
    """Search for a better assignment; rc 1 when none exists."""
    fs = _parse_filesystem(args)
    model = _adapt_model(args, fs)
    plan = _adapt_plan(args, fs, model)
    if args.json:
        print(json.dumps(plan.to_dict(), sort_keys=True))
        return 0 if plan.worthwhile else 1
    print(
        format_table(
            ["pattern", "weight", "LF now", "LF planned"],
            _adapt_pattern_rows(plan, model, fs),
            title=f"Adaptive plan for {fs.describe()}",
        )
    )
    print(plan.summary())
    if not plan.worthwhile:
        print("no assignment beats the deployed one on this mix")
        return 1
    return 0


def _cmd_adapt_apply(args: argparse.Namespace) -> int:
    """Plan, hot-swap a durable file, and re-verify from telemetry."""
    import random as random_module

    from repro import obs
    from repro.adaptive import apply_plan
    from repro.api import make_durable_file

    obs.reset_telemetry()
    obs.configure(enabled=True)
    fs = _parse_filesystem(args)
    model = _adapt_model(args, fs)
    plan = _adapt_plan(args, fs, model)
    if not plan.worthwhile and not args.force:
        print("no assignment beats the deployed one on this mix; "
              "nothing to apply")
        return 1
    durable = make_durable_file(
        "fx",
        fields=fs.field_sizes,
        devices=fs.m,
        replicate=False,
        transforms=list(plan.baseline_names),
    )
    rng = random_module.Random(args.seed)
    durable.insert_all(
        tuple(rng.randrange(size) for size in fs.field_sizes)
        for __ in range(args.records)
    )
    report = apply_plan(
        durable, plan, model, require_improvement=not args.force
    )
    if args.json:
        print(
            json.dumps(
                {"plan": plan.to_dict(), "swap": report.to_dict()},
                sort_keys=True,
            )
        )
    else:
        print(plan.summary())
        print(report.summary())
        if not report.content_preserved:
            print("ERROR: content digest changed across the migration")
        if report.verified_strict_optimal is False:
            print("ERROR: telemetry replay found bound violations")
    return 0 if report.verified else 1


def _cmd_adapt(args: argparse.Namespace) -> int:
    if args.action == "score":
        return _cmd_adapt_score(args)
    if args.action == "plan":
        return _cmd_adapt_plan(args)
    return _cmd_adapt_apply(args)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FX declustering for partial match retrieval "
        "(Kim & Pramanik, SIGMOD 1988).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--no-exact-figures", action="store_true")
    report.add_argument("--stdout", action="store_true")
    report.set_defaults(func=_cmd_report)

    table = sub.add_parser("table", help="print one of Tables 7-9")
    table.add_argument("which", choices=["table7", "table8", "table9"])
    table.set_defaults(func=_cmd_table)

    figure = sub.add_parser("figure", help="print one of Figures 1-4")
    figure.add_argument(
        "which", choices=["figure1", "figure2", "figure3", "figure4"]
    )
    figure.add_argument("--chart", action="store_true", help="ASCII chart too")
    figure.add_argument("--p", type=float, default=0.5,
                        help="per-field specification probability")
    figure.set_defaults(func=_cmd_figure)

    census = sub.add_parser(
        "census", help="strict-optimality census of one method"
    )
    _add_filesystem_arguments(census)
    census.add_argument(
        "--method", default="fx", choices=sorted(available_methods())
    )
    census.add_argument(
        "--transforms", help="fx only: comma-separated families, e.g. I,U,IU1"
    )
    census.add_argument(
        "--multipliers", help="gdm only: comma-separated multipliers"
    )
    census.add_argument(
        "--failures", type=int, default=5,
        help="how many worst failures to list (0 = none)",
    )
    census.add_argument(
        "--parallel", type=int, default=None,
        help="threads for the pattern sweep (0 = one per CPU)",
    )
    census.set_defaults(func=_cmd_census)

    skew = sub.add_parser("skew", help="skew profile of standard methods")
    _add_filesystem_arguments(skew)
    skew.add_argument("--p", type=float, default=0.5)
    skew.set_defaults(func=_cmd_skew)

    search = sub.add_parser("search", help="search transform assignments")
    _add_filesystem_arguments(search)
    search.add_argument(
        "--space", choices=["families", "linear"], default="families"
    )
    search.add_argument("--iterations", type=int, default=300,
                        help="linear search draws")
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--p", type=float, default=0.5)
    search.add_argument(
        "--parallel", type=int, default=None,
        help="threads for assignment scoring (0 = one per CPU)",
    )
    search.set_defaults(func=_cmd_search)

    design = sub.add_parser(
        "design", help="optimal directory bits from query statistics"
    )
    design.add_argument(
        "--probabilities",
        required=True,
        help="per-field specification probabilities, e.g. 0.9,0.5,0.1",
    )
    design.add_argument("--bits", type=int, required=True,
                        help="total directory bits (log2 of bucket count)")
    design.add_argument("--max-bits", type=int, default=None,
                        help="optional per-field bit cap")
    design.set_defaults(func=_cmd_design)

    simulate = sub.add_parser(
        "simulate", help="concurrent workload latency comparison"
    )
    _add_filesystem_arguments(simulate)
    simulate.add_argument("--queries", type=int, default=200)
    simulate.add_argument("--rate", type=float, default=5.0,
                          help="Poisson arrival rate (queries/s)")
    simulate.add_argument("--p", type=float, default=0.5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--json", action="store_true",
        help="emit the full simulation reports as JSON",
    )
    simulate.set_defaults(func=_cmd_simulate)

    faults = sub.add_parser(
        "faults", help="fault-tolerant runtime: simulation and availability"
    )
    faults.add_argument(
        "action", choices=["run", "report"],
        help="run = stream a workload under a fault plan; "
        "report = availability curves, failover demo and counters",
    )
    _add_filesystem_arguments(faults)
    faults.add_argument(
        "--method", default="fx",
        choices=[n for n in method_names() if n != "replicated"],
        help="base distribution method (run only)",
    )
    faults.add_argument(
        "--replicate", action="store_true",
        help="run only: attach a chained replica scheme for failover",
    )
    faults.add_argument(
        "--offset", type=int, default=1,
        help="chained replica offset (backup of d is (d+offset) mod M)",
    )
    faults.add_argument(
        "--fail", default=None,
        help="comma-separated fail-stop devices, e.g. 0,3 "
        "(report defaults to 0)",
    )
    faults.add_argument(
        "--error-rate", type=float, default=0.0,
        help="per-attempt transient read failure probability",
    )
    faults.add_argument(
        "--slow", default=None,
        help="straggler latency factors as device:factor pairs, "
        "e.g. 1:2.0,5:4.0",
    )
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--queries", type=int, default=200)
    faults.add_argument("--rate", type=float, default=5.0,
                        help="Poisson arrival rate (run only, queries/s)")
    faults.add_argument("--p", type=float, default=0.5)
    faults.add_argument("--retries", type=int, default=3,
                        help="max read attempts per device batch")
    faults.add_argument("--timeout", type=float, default=None,
                        help="per-device timeout (modelled ms)")
    faults.add_argument(
        "--max-failures", type=int, default=2,
        help="report only: largest simultaneous failure count k",
    )
    faults.add_argument("--json", action="store_true")
    faults.set_defaults(func=_cmd_faults)

    recommend = sub.add_parser(
        "recommend", help="rank declustering methods for a configuration"
    )
    _add_filesystem_arguments(recommend)
    recommend.add_argument("--p", type=float, default=0.5)
    recommend.set_defaults(func=_cmd_recommend)

    verify = sub.add_parser(
        "verify", help="cross-check the exact engines on a configuration"
    )
    _add_filesystem_arguments(verify)
    verify.add_argument(
        "--method", default="fx", choices=["fx", "modulo"]
    )
    verify.add_argument(
        "--policy", default="paper", choices=["paper", "theorem9"]
    )
    verify.set_defaults(func=_cmd_verify)

    perf = sub.add_parser(
        "perf", help="exercise the engine fast paths and report counters"
    )
    perf.add_argument("action", choices=["report"])
    _add_filesystem_arguments(perf)
    perf.add_argument(
        "--method", default="fx",
        choices=["fx", "fx-basic", "modulo", "gdm"],
        help="separable method to exercise",
    )
    perf.add_argument(
        "--repeat", type=int, default=2,
        help="census passes (>= 2 makes cache hit rates visible)",
    )
    perf.add_argument(
        "--parallel", type=int, default=None,
        help="threads for the census sweep (0 = one per CPU)",
    )
    perf.set_defaults(func=_cmd_perf)

    obs = sub.add_parser(
        "obs", help="telemetry: replay a workload, report/export/tail/check"
    )
    obs.add_argument(
        "action", choices=["report", "export", "tail", "check", "slo"],
        help="report = metrics and latency tables; export = structured "
        "JSONL; tail = most recent spans; check = verify strict "
        "optimality from telemetry alone; slo = serve a loopback "
        "multi-tenant load and report per-tenant error budgets over "
        "the wire",
    )
    _add_filesystem_arguments(obs)
    obs.add_argument(
        "--method", default="fx",
        choices=[n for n in method_names() if n != "replicated"],
        help="distribution method to replay against",
    )
    obs.add_argument(
        "--trace", default=None,
        help="replay queries from a trace file instead of a random workload",
    )
    obs.add_argument("--queries", type=int, default=50,
                     help="random workload size when no trace is given")
    obs.add_argument("--records", type=int, default=64,
                     help="records inserted before the replay")
    obs.add_argument("--p", type=float, default=0.5)
    obs.add_argument("--seed", type=int, default=0)
    obs.add_argument(
        "--deterministic-clock", action="store_true",
        help="inject a manual clock: timestamps (and the export bytes) "
        "become identical across runs",
    )
    obs.add_argument(
        "--jsonl", default="-",
        help="export only: output path ('-' = stdout)",
    )
    obs.add_argument(
        "--validate", action="store_true",
        help="export only: validate every record against the schema",
    )
    obs.add_argument("--lines", type=int, default=20,
                     help="tail only: spans to print")
    obs.add_argument(
        "--batched", action="store_true",
        help="check only: replay through the array batch engine and "
        "audit its query.batch span instead of serial query.execute",
    )
    obs.add_argument(
        "--tenant", dest="filter_tenant", default=None,
        help="tail/export only: keep spans attributed to this tenant "
        "(resolved by walking parent links to the gateway.request span)",
    )
    obs.add_argument(
        "--trace-id", type=lambda s: int(s, 0), default=None,
        help="tail/export only: keep spans of one trace (decimal or 0x hex)",
    )
    obs.add_argument(
        "--tenants", default="alpha,beta",
        help="slo only: comma-separated tenant names for the loopback load",
    )
    obs.add_argument("--connections", type=int, default=2,
                     help="slo only: connections per tenant")
    obs.add_argument("--requests", type=int, default=25,
                     help="slo only: requests per connection")
    obs.add_argument("--quota", type=int, default=None,
                     help="slo only: per-tenant request quota (burns budget)")
    obs.add_argument(
        "--json", action="store_true",
        help="slo only: print the wire SLO snapshot as JSON",
    )
    obs.set_defaults(func=_cmd_obs)

    recover = sub.add_parser(
        "recover",
        help="durability drills: scrub-and-repair, crash replay, rebuild",
    )
    recover.add_argument(
        "action", choices=["scrub", "replay", "rebuild", "report"],
        help="scrub = corrupt pages then repair from replicas; replay = "
        "crash at WAL boundaries and verify byte-identical recovery; "
        "rebuild = lose a device and rebuild it from replicas; report = "
        "all three plus the durability counters",
    )
    _add_filesystem_arguments(recover)
    recover.add_argument(
        "--method", default="fx",
        choices=[n for n in method_names() if n != "replicated"],
        help="base distribution method under the replica chain",
    )
    recover.add_argument("--records", type=int, default=64,
                         help="seeded records inserted before the drill")
    recover.add_argument("--seed", type=int, default=0,
                         help="seed for records, faults, and workloads")
    recover.add_argument("--offset", type=int, default=1,
                         help="chained-replica device offset")
    recover.add_argument(
        "--corruption-rate", type=float, default=0.05,
        help="scrub/report: per-page corruption probability",
    )
    recover.add_argument(
        "--crash-after", type=int, default=None,
        help="replay: crash at this WAL record boundary "
        "(default: halfway through the workload)",
    )
    recover.add_argument(
        "--all-offsets", action="store_true",
        help="replay: sweep every boundary 0..N instead of one",
    )
    recover.add_argument(
        "--torn-tail", action="store_true",
        help="replay: leave half a frame behind at the crash point",
    )
    recover.add_argument("--lose", type=int, default=0,
                         help="rebuild: device to wipe and reconstruct")
    recover.add_argument(
        "--queries", type=int, default=20,
        help="rebuild: workload size for the post-rebuild optimality "
        "check (0 skips it)",
    )
    recover.add_argument("--p", type=float, default=0.5,
                         help="rebuild: per-field specification probability")
    recover.add_argument(
        "--deterministic-clock", action="store_true",
        help="inject a manual clock so span timings are reproducible",
    )
    recover.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of tables")
    recover.set_defaults(func=_cmd_recover)

    serve = sub.add_parser(
        "serve",
        help="drive the concurrent serving tier with a closed-loop load",
    )
    _add_filesystem_arguments(serve)
    serve.add_argument(
        "--method", default="fx", choices=list(method_names()),
        help="distribution method under the serving tier",
    )
    serve.add_argument("--records", type=int, default=64,
                       help="seeded records loaded before the run")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for records and per-client request logs")
    serve.add_argument("--clients", type=int, default=8,
                       help="closed-loop client threads")
    serve.add_argument("--requests", type=int, default=50,
                       help="requests issued by each client")
    serve.add_argument("--p", type=float, default=0.5,
                       help="per-field specification probability")
    serve.add_argument(
        "--write-every", type=int, default=0, dest="write_every",
        help="every k-th request of each client is an insert (0 = none)",
    )
    serve.add_argument(
        "--hot-fraction", type=float, default=0.5, dest="hot_fraction",
        help="fraction of queries drawn from a small shared hot pool",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=8, dest="max_concurrent",
        help="requests served at once before queueing",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=32, dest="queue_limit",
        help="waiting requests beyond which admission sheds",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in milliseconds",
    )
    serve.add_argument(
        "--retries", type=int, default=1,
        help="admission attempts before giving up (backed-off)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=64, dest="cache_capacity",
        help="result-cache entries (with --no-cache: ignored)",
    )
    serve.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="serve without the write-aware result cache")
    serve.add_argument(
        "--no-coalesce", action="store_true", dest="no_coalesce",
        help="disable in-flight request coalescing",
    )
    serve.add_argument(
        "--batch-size", type=int, default=None, dest="batch_size",
        help="micro-batch admitted reads through the array engine, "
             "at most this many queries per batch (default: off)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0, dest="batch_window_ms",
        help="how long a batch leader waits for followers (ms)",
    )
    serve.add_argument(
        "--verify", action="store_true",
        help="serial-replay the request log and fail on any stale read",
    )
    serve.add_argument(
        "--allow-degraded", action="store_true", dest="allow_degraded",
        help="exit 0 even when requests were shed or timed out "
             "(default: degraded runs fail with a structured error)",
    )
    serve.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    serve.set_defaults(func=_cmd_serve)

    gateway = sub.add_parser(
        "gateway",
        help="serve multiple tenants over TCP and drive a loopback load",
    )
    _add_filesystem_arguments(gateway)
    gateway.add_argument(
        "--method", default="fx", choices=list(method_names()),
        help="distribution method for every tenant's file",
    )
    gateway.add_argument(
        "--tenants", default="alpha,beta",
        help="comma-separated tenant namespace names",
    )
    gateway.add_argument("--host", default="127.0.0.1",
                         help="bind address")
    gateway.add_argument("--port", type=int, default=0,
                         help="bind port (0 picks a free one)")
    gateway.add_argument(
        "--listen", action="store_true",
        help="serve until interrupted instead of driving a loopback load",
    )
    gateway.add_argument(
        "--connections", type=int, default=4,
        help="loopback connections per tenant",
    )
    gateway.add_argument("--requests", type=int, default=25,
                         help="requests issued by each connection")
    gateway.add_argument("--seed", type=int, default=0,
                         help="seed for the per-connection op logs")
    gateway.add_argument("--p", type=float, default=0.5,
                         help="per-field specification probability")
    gateway.add_argument(
        "--write-every", type=int, default=5, dest="write_every",
        help="every k-th op of a connection is an insert (0 = none)",
    )
    gateway.add_argument(
        "--batch-every", type=int, default=0, dest="batch_every",
        help="every k-th op is a multi-query batch frame (0 = never)",
    )
    gateway.add_argument(
        "--preload", type=int, default=16,
        help="records inserted per tenant before the timed run",
    )
    gateway.add_argument(
        "--quota", type=int, default=None,
        help="per-tenant lifetime request quota (default: unlimited)",
    )
    gateway.add_argument(
        "--rate", type=float, default=None,
        help="per-tenant token-bucket refill rate, requests/s",
    )
    gateway.add_argument("--burst", type=int, default=8,
                         help="token-bucket burst size")
    gateway.add_argument(
        "--max-inflight", type=int, default=None, dest="max_inflight",
        help="per-tenant concurrent-request cap",
    )
    gateway.add_argument(
        "--max-connections", type=int, default=32, dest="max_connections",
        help="total connections accepted before busy-rejecting",
    )
    gateway.add_argument(
        "--max-concurrent", type=int, default=8, dest="max_concurrent",
        help="per-tenant requests served at once before queueing",
    )
    gateway.add_argument(
        "--queue-limit", type=int, default=32, dest="queue_limit",
        help="per-tenant waiting requests beyond which admission sheds",
    )
    gateway.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in milliseconds",
    )
    gateway.add_argument(
        "--retries", type=int, default=1,
        help="admission attempts before giving up (backed-off)",
    )
    gateway.add_argument(
        "--cache-capacity", type=int, default=64, dest="cache_capacity",
        help="per-tenant result-cache entries",
    )
    gateway.add_argument("--no-cache", action="store_true", dest="no_cache",
                         help="serve without the write-aware result cache")
    gateway.add_argument(
        "--no-coalesce", action="store_true", dest="no_coalesce",
        help="disable in-flight request coalescing",
    )
    gateway.add_argument(
        "--verify", action="store_true",
        help="serial-replay every tenant's log; fail on any stale read",
    )
    gateway.add_argument(
        "--export-jsonl", default=None, dest="export_jsonl",
        help="after the load, write the telemetry stream (propagated "
        "traces included) as canonical JSONL to this path",
    )
    gateway.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of tables")
    gateway.set_defaults(func=_cmd_gateway)

    chaos = sub.add_parser(
        "chaos",
        help="inject deterministic wire faults + a crash-restart and "
        "prove zero stale reads / exactly-once acked writes",
    )
    _add_filesystem_arguments(chaos)
    chaos.add_argument(
        "--method", default="fx", choices=list(method_names()),
        help="distribution method for every tenant's file",
    )
    chaos.add_argument(
        "--tenants", default="alpha,beta",
        help="comma-separated tenant namespace names",
    )
    chaos.add_argument("--connections", type=int, default=2,
                       help="chaos clients (fault endpoints) per tenant")
    chaos.add_argument("--requests", type=int, default=16,
                       help="ops issued by each client")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for op logs AND the fault schedule")
    chaos.add_argument("--p", type=float, default=0.5,
                       help="per-field specification probability")
    chaos.add_argument(
        "--write-every", type=int, default=3, dest="write_every",
        help="every k-th op of a client is an insert (0 = read-only)",
    )
    chaos.add_argument(
        "--batch-every", type=int, default=0, dest="batch_every",
        help="every k-th op is a multi-query batch frame (0 = never)",
    )
    chaos.add_argument(
        "--preload", type=int, default=4,
        help="records written per tenant before chaos starts",
    )
    chaos.add_argument(
        "--fault-rate", type=float, default=0.05, dest="fault_rate",
        help="per-exchange rate of EACH fault kind (reset/tear/dup/delay)",
    )
    chaos.add_argument(
        "--refuse-rate", type=float, default=None, dest="refuse_rate",
        help="per-connection refusal rate (default: --fault-rate)",
    )
    chaos.add_argument(
        "--delay-ms", type=float, default=5.0, dest="delay_ms",
        help="how long a delay fault holds a response back",
    )
    chaos.add_argument(
        "--crash-at", type=float, default=0.5, dest="crash_at",
        help="crash-restart the gateway after this fraction of each "
        "client's ops",
    )
    chaos.add_argument(
        "--no-crash", action="store_true", dest="no_crash",
        help="skip the crash-restart (wire faults only)",
    )
    chaos.add_argument(
        "--torn-tail", action="store_true", dest="torn_tail",
        help="shear the final WAL frame in half at the crash",
    )
    chaos.add_argument("--timeout", type=float, default=10.0,
                       help="socket deadline of each client attempt (s)")
    chaos.add_argument(
        "--max-attempts", type=int, default=6, dest="max_attempts",
        help="retry budget per logical request",
    )
    chaos.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    chaos.set_defaults(func=_cmd_chaos)

    adapt = sub.add_parser(
        "adapt",
        help="workload-adaptive declustering: score the deployed "
        "assignment against an observed mix, search for a better one, "
        "or hot-swap onto it crash-safely",
    )
    adapt.add_argument(
        "action", choices=["score", "plan", "apply"],
        help="score = mix-weighted load factor of the deployed "
        "assignment and the gap to the lower bound; plan = search for a "
        "better assignment (rc 1 if none); apply = plan, migrate a "
        "durable file through the WAL-audited path, and re-verify "
        "optimality from telemetry (rc 1 unless verified)",
    )
    _add_filesystem_arguments(adapt)
    adapt.add_argument(
        "--profile", default=None,
        help="observed mix: a query-mix profile JSON or an 'obs export' "
        "JSONL file (offline feed — no new wire op)",
    )
    adapt.add_argument(
        "--tenant", default=None,
        help="profile only: adapt to this tenant's mix (default: all "
        "tenants pooled)",
    )
    adapt.add_argument(
        "--mix", default=None,
        help="observed mix inline: pattern=count pairs, e.g. "
        "'***1=50,**11=20' ('*' = unspecified field)",
    )
    adapt.add_argument(
        "--transforms", default=None,
        help="deployed assignment as comma-separated family names "
        "(default: the uniform-optimal assignment found by search)",
    )
    adapt.add_argument("--seed", type=int, default=0,
                       help="seed for search restarts, linear draws and "
                       "the apply workload")
    adapt.add_argument("--restarts", type=int, default=4,
                       help="hill-climb restarts (many small fields)")
    adapt.add_argument(
        "--linear-draws", type=int, default=0, dest="linear_draws",
        help="also try this many random injective GF(2) matrix "
        "assignments",
    )
    adapt.add_argument("--parallel", type=int, default=None,
                       help="threads for the baseline search (0 = one "
                       "per CPU)")
    adapt.add_argument("--records", type=int, default=128,
                       help="apply only: records inserted before the swap")
    adapt.add_argument("--force", action="store_true",
                       help="apply only: swap even without improvement")
    adapt.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    adapt.set_defaults(func=_cmd_adapt)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        parser.exit(2, f"error: {error}\n")
        return 2  # pragma: no cover - parser.exit raises
