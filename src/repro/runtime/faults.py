"""Deterministic fault models for the execution runtime.

The paper's parallel model assumes all ``M`` devices answer every query;
this module supplies the three ways a real array breaks that assumption:

* **fail-stop** — a device is down for the whole run (its primaries must
  be served by replicas or reported missing),
* **transient errors** — an individual read attempt fails with some
  probability and may be retried,
* **stragglers** — a device is up but slow by a latency factor,
* **corruption** — a bucket page is silently corrupted with some
  probability per scrub epoch (detected by checksums, repaired from the
  chained replica — :mod:`repro.durability`),
* **crash** — the process dies at a deterministic write-ahead-log record
  boundary (recovered by WAL replay — :mod:`repro.durability.wal`).

A :class:`FaultPlan` is a pure description; a :class:`FaultInjector` binds
it to a concrete array size and answers point questions during execution.
All randomness is derived by hashing ``(seed, device, query, attempt)``
through splitmix64, so outcomes are deterministic, order-independent and
exactly reproducible — the property every fault-injection test relies on.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.util.numbers import mix64

__all__ = ["FaultPlan", "FaultInjector"]

_MASK = (1 << 64) - 1
#: Odd multipliers decorrelating the coordinates of one attempt draw.
_DEVICE_SALT = 0x9E3779B97F4A7C15
_QUERY_SALT = 0xC2B2AE3D27D4EB4F
_ATTEMPT_SALT = 0x165667B19E3779F9
#: Separate salts for the corruption stream, so adding corruption to a plan
#: never perturbs the transient-error draws of existing golden plans.
_PAGE_SALT = 0xD6E8FEB86659FD93
_SWEEP_SALT = 0xA3EC647659359ACD


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seed-reproducible description of array faults.

    *failed_devices* are fail-stop for the whole run; *transient_error_rate*
    is the per-read-attempt failure probability on live devices;
    *slow_factors* maps device id to a latency multiplier (2.0 = half
    speed); *corruption_rate* is the per-page silent-corruption probability
    per scrub epoch; *crash_after_writes* names the write-ahead-log record
    boundary at which the process crashes (``None`` = never).  The default
    plan is fault-free.

    >>> plan = FaultPlan(seed=7, failed_devices=frozenset({2}))
    >>> plan.is_trivial
    False
    >>> FaultPlan().is_trivial
    True
    """

    seed: int = 0
    failed_devices: frozenset[int] = frozenset()
    transient_error_rate: float = 0.0
    slow_factors: Mapping[int, float] = field(default_factory=dict)
    corruption_rate: float = 0.0
    crash_after_writes: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "failed_devices", frozenset(self.failed_devices)
        )
        object.__setattr__(self, "slow_factors", dict(self.slow_factors))
        if any(d < 0 for d in self.failed_devices):
            raise ConfigurationError("device ids must be non-negative")
        if not 0.0 <= self.transient_error_rate < 1.0:
            raise ConfigurationError(
                f"transient error rate {self.transient_error_rate} "
                "outside [0, 1)"
            )
        for device, factor in self.slow_factors.items():
            if device < 0:
                raise ConfigurationError("device ids must be non-negative")
            if factor <= 0:
                raise ConfigurationError(
                    f"slow factor for device {device} must be positive, "
                    f"got {factor}"
                )
        if not 0.0 <= self.corruption_rate < 1.0:
            raise ConfigurationError(
                f"corruption rate {self.corruption_rate} outside [0, 1)"
            )
        if self.crash_after_writes is not None and self.crash_after_writes < 0:
            raise ConfigurationError(
                f"crash_after_writes must be non-negative, "
                f"got {self.crash_after_writes}"
            )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan (every device healthy and full speed)."""
        return cls()

    @classmethod
    def fail(cls, devices: Iterable[int], seed: int = 0) -> "FaultPlan":
        """Fail-stop the given devices, nothing else."""
        return cls(seed=seed, failed_devices=frozenset(devices))

    @classmethod
    def corrupt(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Silently corrupt pages at *rate* per scrub epoch, nothing else."""
        return cls(seed=seed, corruption_rate=rate)

    @classmethod
    def crash(cls, after_writes: int, seed: int = 0) -> "FaultPlan":
        """Crash at WAL record boundary *after_writes*, nothing else."""
        return cls(seed=seed, crash_after_writes=after_writes)

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects no fault of any kind."""
        return (
            not self.failed_devices
            and self.transient_error_rate == 0.0
            and all(f == 1.0 for f in self.slow_factors.values())
            and self.corruption_rate == 0.0
            and self.crash_after_writes is None
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.failed_devices:
            parts.append(f"failed={sorted(self.failed_devices)}")
        if self.transient_error_rate:
            parts.append(f"error_rate={self.transient_error_rate}")
        if self.slow_factors:
            parts.append(f"slow={dict(sorted(self.slow_factors.items()))}")
        if self.corruption_rate:
            parts.append(f"corruption_rate={self.corruption_rate}")
        if self.crash_after_writes is not None:
            parts.append(f"crash_after={self.crash_after_writes}")
        return f"FaultPlan({', '.join(parts)})"


class FaultInjector:
    """A :class:`FaultPlan` bound to an array of ``m`` devices.

    >>> injector = FaultInjector(FaultPlan.fail([1]), m=4)
    >>> injector.is_failed(1), injector.is_failed(0)
    (True, False)
    >>> injector.latency_factor(0)
    1.0
    """

    def __init__(self, plan: FaultPlan, m: int):
        if m < 1:
            raise ConfigurationError("need at least one device")
        out_of_range = [d for d in plan.failed_devices if d >= m]
        out_of_range += [d for d in plan.slow_factors if d >= m]
        if out_of_range:
            raise ConfigurationError(
                f"plan names devices {sorted(set(out_of_range))} "
                f"outside [0, {m})"
            )
        self.plan = plan
        self.m = m

    def is_failed(self, device: int) -> bool:
        """Fail-stop state of *device* (constant over the run)."""
        return device in self.plan.failed_devices

    def latency_factor(self, device: int) -> float:
        """Service-time multiplier of *device* (1.0 = nominal speed)."""
        return float(self.plan.slow_factors.get(device, 1.0))

    def attempt_fails(self, device: int, query_index: int, attempt: int) -> bool:
        """Seeded Bernoulli draw: does this read attempt fail transiently?

        The draw hashes ``(seed, device, query_index, attempt)``, so it does
        not depend on the order in which devices or queries are visited —
        two runs over the same workload agree attempt for attempt.
        """
        rate = self.plan.transient_error_rate
        if rate == 0.0 or self.is_failed(device):
            return False
        word = (
            (self.plan.seed & _MASK)
            ^ (device * _DEVICE_SALT)
            ^ (query_index * _QUERY_SALT)
            ^ (attempt * _ATTEMPT_SALT)
        ) & _MASK
        return mix64(word) / float(1 << 64) < rate

    def _corruption_draw(self, device: int, page_index: int, sweep: int) -> float:
        word = (
            (self.plan.seed & _MASK)
            ^ (device * _DEVICE_SALT)
            ^ (page_index * _PAGE_SALT)
            ^ (sweep * _SWEEP_SALT)
        ) & _MASK
        return mix64(word) / float(1 << 64)

    def page_corrupted(self, device: int, page_index: int, sweep: int = 0) -> bool:
        """Seeded Bernoulli draw: is this page silently corrupted?

        The draw hashes ``(seed, device, page_index, sweep)`` through its
        own salts, so corruption schedules are order-independent and do not
        perturb the transient-error stream of the same plan.
        """
        rate = self.plan.corruption_rate
        if rate == 0.0:
            return False
        return self._corruption_draw(device, page_index, sweep) < rate

    def page_corruption_kind(
        self, device: int, page_index: int, sweep: int = 0
    ) -> str | None:
        """``None`` (clean), ``"drop"`` (page lost) or ``"tamper"`` (bits
        flipped) for one page, from the same deterministic draw as
        :meth:`page_corrupted` — the low half of the corrupted probability
        mass loses the page, the high half tampers with it.
        """
        rate = self.plan.corruption_rate
        if rate == 0.0:
            return None
        draw = self._corruption_draw(device, page_index, sweep)
        if draw >= rate:
            return None
        return "drop" if draw < rate / 2.0 else "tamper"

    def crash_boundary(self) -> int | None:
        """The WAL record boundary at which the plan crashes, if any."""
        return self.plan.crash_after_writes

    def alive_devices(self) -> tuple[int, ...]:
        """Devices not fail-stopped, in id order."""
        return tuple(d for d in range(self.m) if not self.is_failed(d))
