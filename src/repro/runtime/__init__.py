"""Fault-tolerant execution runtime.

The paper's model is an ideal one: all ``M`` devices answer, at full
speed, every time.  This package is the layer between that model and a
production array — it injects the faults (fail-stop devices, transient
read errors, stragglers), applies the recovery mechanics (retries with
capped backoff, per-device timeouts, failover to chained replicas) and
reports what survived (explicit ``completeness`` instead of exceptions
for unreachable data):

* :mod:`repro.runtime.faults` — :class:`FaultPlan` (declarative, seeded)
  and :class:`FaultInjector` (deterministic draws bound to an array),
* :mod:`repro.runtime.retry` — :class:`RetryPolicy`,
* :mod:`repro.runtime.degraded` — :class:`DegradedExecutor`, the
  fault-filtered counterpart of the plain query executor,
* :mod:`repro.runtime.simulation` — :class:`FaultAwareQuerySimulator`,
  the fault-filtered counterpart of the concurrent-workload simulator.

Every interaction is recorded in the process-wide perf counters
(``runtime.retries`` / ``runtime.timeouts`` / ``runtime.failovers`` /
``runtime.degraded_queries``); ``python -m repro faults`` drives the
whole layer from the command line.
"""

from repro.runtime.degraded import DegradedExecutionResult, DegradedExecutor
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.retry import RetryPolicy
from repro.runtime.simulation import FaultAwareQuerySimulator

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "DegradedExecutor",
    "DegradedExecutionResult",
    "FaultAwareQuerySimulator",
]
