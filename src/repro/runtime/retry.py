"""Retry and timeout policy for per-device read attempts.

One policy object answers three questions the runtime asks on every
device interaction: how many times may an attempt be retried, how long to
back off before attempt ``k`` (capped exponential), and when to give up
on a device entirely (per-device timeout).  The policy is pure arithmetic
— it never sleeps — because the runtime models time rather than spending
it, exactly as the cost models in :mod:`repro.storage.costs` do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff plus an optional per-device timeout.

    Attempt 1 is immediate; attempt ``k`` waits
    ``min(base_delay_ms * backoff_factor**(k - 2), max_delay_ms)`` after
    the failure of attempt ``k - 1``.  *timeout_ms*, when set, bounds the
    modelled time one device may spend on a single query (service plus
    backoff); beyond it the device is abandoned and its buckets fail over.

    >>> policy = RetryPolicy(max_attempts=4, base_delay_ms=2.0)
    >>> [policy.delay_before(k) for k in range(1, 5)]
    [0.0, 2.0, 4.0, 8.0]
    >>> policy.total_backoff_ms(3)
    6.0
    """

    max_attempts: int = 3
    base_delay_ms: float = 1.0
    backoff_factor: float = 2.0
    max_delay_ms: float = 50.0
    timeout_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ConfigurationError(
                f"timeout_ms must be positive, got {self.timeout_ms}"
            )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single attempt, no backoff, no timeout (the paper's model)."""
        return cls(max_attempts=1, base_delay_ms=0.0, max_delay_ms=0.0)

    def delay_before(self, attempt: int) -> float:
        """Backoff (ms) waited before *attempt* (1-based); 0 for the first."""
        if attempt < 1:
            raise ConfigurationError(f"attempts are 1-based, got {attempt}")
        if attempt == 1:
            return 0.0
        return min(
            self.base_delay_ms * self.backoff_factor ** (attempt - 2),
            self.max_delay_ms,
        )

    def total_backoff_ms(self, attempts: int) -> float:
        """Cumulative backoff across the first *attempts* attempts."""
        return sum(self.delay_before(k) for k in range(1, attempts + 1))

    def exceeds_timeout(self, elapsed_ms: float) -> bool:
        """Has a device's modelled time for one query run past the cap?"""
        return self.timeout_ms is not None and elapsed_ms > self.timeout_ms
