"""Fault-tolerant query execution with replica failover and partial results.

:class:`DegradedExecutor` is the runtime counterpart of
:class:`~repro.storage.executor.QueryExecutor`: it runs the same inverse
mapping per device, but filters every device interaction through a
:class:`~repro.runtime.faults.FaultPlan` and a
:class:`~repro.runtime.retry.RetryPolicy`.  A device that is fail-stopped,
exhausts its retries or runs past its timeout is *abandoned* for the query;
its qualified buckets are re-routed to their backup replicas when the file
is a :class:`~repro.storage.replicated_file.ReplicatedFile`, and otherwise
reported missing through an explicit ``completeness`` fraction — degraded
mode never raises for data it merely cannot reach.

Records are assembled in primary-device order regardless of which replica
served them, so a run whose failures are fully covered by replicas returns
a record list identical to the fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hashing.fields import Bucket
from repro.obs import telemetry, trace_span
from repro.perf.counters import record_work
from repro.query.partial_match import PartialMatchQuery
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.retry import RetryPolicy
from repro.storage.executor import ExecutionResult
from repro.util.numbers import ceil_div

__all__ = ["DegradedExecutionResult", "DegradedExecutor"]


@dataclass
class DegradedExecutionResult(ExecutionResult):
    """An :class:`ExecutionResult` plus the runtime's fault diagnostics.

    ``completeness`` is the fraction of qualified buckets actually served
    (1.0 when every bucket was reachable, directly or via a replica);
    ``timeouts`` counts devices abandoned after a timeout or after
    exhausting their retries.
    """

    completeness: float = 1.0
    failed_devices: tuple[int, ...] = ()
    retries: int = 0
    timeouts: int = 0
    #: Buckets served by a backup replica instead of their primary.
    failovers: int = 0
    #: Qualified buckets no live replica could serve.
    lost_buckets: int = 0

    @property
    def is_complete(self) -> bool:
        return self.lost_buckets == 0

    def to_dict(self) -> dict:
        data = super().to_dict()
        data.update(
            completeness=round(self.completeness, 6),
            failed_devices=sorted(self.failed_devices),
            retries=self.retries,
            timeouts=self.timeouts,
            failovers=self.failovers,
            lost_buckets=self.lost_buckets,
        )
        return data


class DegradedExecutor:
    """Executes partial match queries under a fault plan.

    *file* is a :class:`~repro.storage.parallel_file.PartitionedFile` or a
    :class:`~repro.storage.replicated_file.ReplicatedFile`; only the latter
    offers failover (its chained scheme names each bucket's backup).

    >>> from repro import FileSystem, FXDistribution, PartitionedFile
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> pf = PartitionedFile(FXDistribution(fs))
    >>> __ = pf.insert((1, 2))
    >>> runtime = DegradedExecutor(pf)          # trivial plan: no faults
    >>> runtime.search({0: 1}).completeness
    1.0
    """

    def __init__(
        self,
        file,
        plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.file = file
        self.filesystem = file.filesystem
        #: Replica scheme when *file* is replicated, else None.
        self.scheme = getattr(file, "scheme", None)
        self.method = self.scheme.base if self.scheme else file.method
        self.plan = plan or FaultPlan.none()
        self.retry = retry or RetryPolicy()
        self.injector = FaultInjector(self.plan, self.filesystem.m)
        self._query_seq = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def execute(self, query: PartialMatchQuery) -> DegradedExecutionResult:
        """Run one partial match query through the fault-filtered array."""

        def assigned_to(device_id: int) -> list[Bucket]:
            return list(self.method.qualified_on_device(device_id, query))

        return self._run(query, query.qualified_count, assigned_to)

    def execute_box(self, box) -> DegradedExecutionResult:
        """Run a box query (requires a separable base method)."""
        from repro.analysis.box import box_qualified_on_device

        def assigned_to(device_id: int) -> list[Bucket]:
            return list(box_qualified_on_device(self.method, device_id, box))

        return self._run(box, box.qualified_count, assigned_to)

    def search(self, specified) -> DegradedExecutionResult:
        """Convenience: hash raw attribute values, build and run the query."""
        return self.execute(self.file.query(specified))

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _run(self, query, qualified_count, assigned_to) -> DegradedExecutionResult:
        seq = self._query_seq
        self._query_seq += 1
        m = self.filesystem.m
        result = DegradedExecutionResult(
            query=query,
            failed_devices=tuple(sorted(self.plan.failed_devices)),
        )
        device_time = [0.0] * m
        served_per_device = [0] * m
        #: Records keyed by *primary* device so the assembled order matches
        #: the fault-free executor even when backups serve some batches.
        records_by_primary: dict[int, list[object]] = {}
        to_failover: list[tuple[int, list[Bucket]]] = []

        with trace_span(
            "runtime.query", query=query.describe(), qualified=qualified_count
        ) as span:
            for device_id in range(m):
                assigned = assigned_to(device_id)
                if not assigned:
                    records_by_primary[device_id] = []
                    continue
                if self.injector.is_failed(device_id):
                    to_failover.append((device_id, assigned))
                    continue
                attempts, succeeded = self._attempts_for(device_id, seq)
                result.retries += attempts - 1
                if attempts > 1:
                    span.add_event(
                        "retry", device=device_id, attempts=attempts
                    )
                batch_ms = self._batch_time(device_id, len(assigned))
                elapsed = attempts * batch_ms + self.retry.total_backoff_ms(attempts)
                if not succeeded or self.retry.exceeds_timeout(elapsed):
                    result.timeouts += 1
                    span.add_event(
                        "timeout",
                        device=device_id,
                        buckets=len(assigned),
                        elapsed_ms=round(elapsed, 6),
                    )
                    timeout = self.retry.timeout_ms
                    device_time[device_id] = (
                        min(elapsed, timeout) if timeout is not None else elapsed
                    )
                    to_failover.append((device_id, assigned))
                    continue
                device_time[device_id] = elapsed
                served_per_device[device_id] += len(assigned)
                records_by_primary[device_id] = self.file.devices[
                    device_id
                ].read_buckets(assigned)

            for primary, buckets in to_failover:
                backup = self._backup_for(primary)
                if backup is None:
                    result.lost_buckets += len(buckets)
                    span.add_event(
                        "data_loss", device=primary, buckets=len(buckets)
                    )
                    records_by_primary[primary] = []
                    continue
                result.failovers += len(buckets)
                span.add_event(
                    "failover",
                    device=primary,
                    backup=backup,
                    buckets=len(buckets),
                )
                served_per_device[backup] += len(buckets)
                device_time[backup] += self._batch_time(backup, len(buckets))
                records_by_primary[primary] = self.file.devices[
                    backup
                ].read_buckets(buckets)

            for device_id in range(m):
                result.records.extend(records_by_primary.get(device_id, []))
            result.buckets_per_device = served_per_device
            result.largest_response = max(served_per_device, default=0)
            result.response_time_ms = max(device_time, default=0.0)
            result.total_service_ms = sum(device_time)
            bound = ceil_div(qualified_count, m)
            result.strict_optimal = result.largest_response <= bound
            if qualified_count:
                result.completeness = 1.0 - result.lost_buckets / qualified_count
            if result.completeness < 1.0:
                span.add_event(
                    "degraded", completeness=round(result.completeness, 6)
                )
            span.set_attr("buckets_per_device", list(served_per_device))
            span.set_attr("completeness", round(result.completeness, 6))
            span.set_attr("retries", result.retries)
            span.set_attr("timeouts", result.timeouts)
            span.set_attr("failovers", result.failovers)
            span.set_attr("lost_buckets", result.lost_buckets)
            span.set_attr("response_ms", round(result.response_time_ms, 6))
        metrics = telemetry().metrics
        metrics.observe("runtime.response_ms", result.response_time_ms)
        metrics.observe("runtime.completeness", result.completeness)
        self._record_counters(result)
        return result

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _attempts_for(self, device_id: int, seq: int) -> tuple[int, bool]:
        """(attempts used, succeeded) for one device batch under the plan."""
        for attempt in range(1, self.retry.max_attempts + 1):
            if not self.injector.attempt_fails(device_id, seq, attempt):
                return attempt, True
        return self.retry.max_attempts, False

    def _batch_time(self, device_id: int, bucket_count: int) -> float:
        device = self.file.devices[device_id]
        return device.cost_model.service_time(
            bucket_count
        ) * self.injector.latency_factor(device_id)

    def _backup_for(self, primary: int) -> int | None:
        """The live backup device serving *primary*'s buckets, if any.

        Chained placement stores the backup of every bucket whose primary
        is ``d`` on ``(d + offset) mod M``, so failover is a per-device
        re-route, not a per-bucket lookup.
        """
        if self.scheme is None:
            return None
        backup = (primary + self.scheme.offset) % self.filesystem.m
        if self.injector.is_failed(backup):
            return None
        return backup

    def _record_counters(self, result: DegradedExecutionResult) -> None:
        record_work("runtime.queries", 1)
        if result.retries:
            record_work("runtime.retries", result.retries)
        if result.timeouts:
            record_work("runtime.timeouts", result.timeouts)
        if result.failovers:
            record_work("runtime.failovers", result.failovers)
        if result.failovers or result.lost_buckets:
            record_work("runtime.degraded_queries", 1)
