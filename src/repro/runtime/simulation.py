"""Concurrent-workload simulation under a fault plan.

:class:`FaultAwareQuerySimulator` extends the discrete-event model of
:class:`~repro.storage.simulator.ParallelQuerySimulator` with the runtime's
failure semantics:

* fail-stop devices never receive tasks — their share of each query is
  re-routed *at dispatch* to the chained backup device when a replica
  scheme is attached, and counted as lost otherwise,
* transient errors repeat a device's batch (seeded, order-independent
  draws) with capped exponential backoff between attempts,
* stragglers run at their plan latency factor, and a per-device timeout
  abandons a batch that has run too long (its buckets count as lost — the
  stream model does not cascade a second failover hop).

Everything stays deterministic for a given plan seed and arrival sequence,
so two runs of the same scenario produce byte-identical
:class:`~repro.storage.simulator.SimulationReport` objects.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.distribution.base import DistributionMethod
from repro.distribution.replicated import ChainedReplicaScheme
from repro.errors import ConfigurationError
from repro.perf.counters import record_work
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.retry import RetryPolicy
from repro.storage.costs import DeviceCostModel
from repro.storage.simulator import (
    ParallelQuerySimulator,
    QueryArrival,
    SimulatedQuery,
    SimulationReport,
)

__all__ = ["FaultAwareQuerySimulator"]


class FaultAwareQuerySimulator(ParallelQuerySimulator):
    """FIFO per-device simulation of a query stream under injected faults.

    Pass a :class:`~repro.distribution.replicated.ChainedReplicaScheme`
    built over the *same* method to enable failover routing; without one,
    a failed device's share of every query is reported through the
    per-query ``completeness`` instead.

    >>> from repro import FileSystem, FXDistribution, PartialMatchQuery
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> fx = FXDistribution(fs)
    >>> sim = FaultAwareQuerySimulator(fx, plan=FaultPlan.fail([3]))
    >>> q = PartialMatchQuery.full_scan(fs)
    >>> report = sim.run([QueryArrival(q, 0.0)])
    >>> report.queries[0].completeness
    0.75
    """

    def __init__(
        self,
        method: DistributionMethod,
        plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        scheme: ChainedReplicaScheme | None = None,
        cost_model: DeviceCostModel | None = None,
    ):
        self.plan = plan or FaultPlan.none()
        self.retry = retry or RetryPolicy()
        self.injector = FaultInjector(self.plan, method.filesystem.m)
        if scheme is not None and scheme.base is not method:
            raise ConfigurationError(
                "the replica scheme must be built over the simulated method "
                "(its primary placement decides the routing)"
            )
        self.scheme = scheme
        speed_factors = [
            1.0 / self.injector.latency_factor(d)
            for d in range(method.filesystem.m)
        ]
        super().__init__(method, cost_model=cost_model, speed_factors=speed_factors)

    def run(self, arrivals: Iterable[QueryArrival]) -> SimulationReport:
        """Process *arrivals* to completion under the fault plan."""
        from repro.obs import telemetry, trace_span

        ordered = sorted(arrivals, key=lambda a: a.arrival_ms)
        m = self.method.filesystem.m
        device_free_at = [0.0] * m
        device_busy = [0.0] * m
        report = SimulationReport(
            device_busy_ms=[0.0] * m,
            failed_devices=tuple(sorted(self.plan.failed_devices)),
        )

        with trace_span(
            "simulate.faulty_run",
            method=self.method.name or type(self.method).__name__,
            queries=len(ordered),
            plan=self.plan.describe(),
        ) as span:
            self._run_faulty_stream(
                ordered, device_free_at, device_busy, report
            )
            span.set_attr("makespan_ms", round(report.makespan_ms, 6))
            span.set_attr("failovers", report.failovers)
            span.set_attr("lost_buckets", report.lost_buckets)
            span.set_attr(
                "mean_completeness", round(report.mean_completeness, 6)
            )
        metrics = telemetry().metrics
        for simulated in report.queries:
            metrics.observe("simulate.latency_ms", simulated.latency_ms)
            metrics.observe("runtime.completeness", simulated.completeness)
        self._record_counters(report)
        return report

    def _run_faulty_stream(
        self, ordered, device_free_at, device_busy, report
    ) -> None:
        for query_index, arrival in enumerate(ordered):
            if arrival.arrival_ms < 0:
                raise ConfigurationError("arrival times must be non-negative")
            histogram = self._histogram_of(arrival.query)
            qualified = sum(histogram)
            tasks, lost = self._route_tasks(histogram, report)
            completion = arrival.arrival_ms
            idle_service = 0.0
            for device, bucket_count in enumerate(tasks):
                if bucket_count == 0:
                    continue
                busy, served = self._device_episode(
                    device, bucket_count, query_index, report
                )
                if not served:
                    lost += bucket_count
                idle_service = max(idle_service, busy)
                start = max(arrival.arrival_ms, device_free_at[device])
                finish = start + busy
                device_free_at[device] = finish
                device_busy[device] += busy
                completion = max(completion, finish)
            report.lost_buckets += lost
            report.queries.append(
                SimulatedQuery(
                    arrival_ms=arrival.arrival_ms,
                    completion_ms=completion,
                    service_ms=idle_service,
                    largest_response=max(tasks, default=0),
                    completeness=(
                        1.0 - lost / qualified if qualified else 1.0
                    ),
                )
            )
            report.makespan_ms = max(report.makespan_ms, completion)
        report.device_busy_ms = device_busy

    # ------------------------------------------------------------------
    # Fault mechanics
    # ------------------------------------------------------------------
    def _route_tasks(
        self, histogram: list[int], report: SimulationReport
    ) -> tuple[list[int], int]:
        """Move fail-stopped devices' loads to backups; count what's lost."""
        m = self.method.filesystem.m
        tasks = [0] * m
        lost = 0
        for device, count in enumerate(histogram):
            if count == 0:
                continue
            if not self.injector.is_failed(device):
                tasks[device] += count
                continue
            backup = self._backup_for(device)
            if backup is None:
                lost += count
            else:
                tasks[backup] += count
                report.failovers += count
        return tasks, lost

    def _device_episode(
        self,
        device: int,
        bucket_count: int,
        query_index: int,
        report: SimulationReport,
    ) -> tuple[float, bool]:
        """(busy time, batch served?) for one device's share of one query."""
        attempts, succeeded = self._attempts_for(device, query_index)
        report.retries += attempts - 1
        service = (
            self.cost_model.service_time(bucket_count)
            / self.speed_factors[device]
        )
        elapsed = attempts * service + self.retry.total_backoff_ms(attempts)
        if not succeeded or self.retry.exceeds_timeout(elapsed):
            report.timeouts += 1
            timeout = self.retry.timeout_ms
            busy = min(elapsed, timeout) if timeout is not None else elapsed
            return busy, False
        return elapsed, True

    def _attempts_for(self, device: int, query_index: int) -> tuple[int, bool]:
        for attempt in range(1, self.retry.max_attempts + 1):
            if not self.injector.attempt_fails(device, query_index, attempt):
                return attempt, True
        return self.retry.max_attempts, False

    def _backup_for(self, primary: int) -> int | None:
        if self.scheme is None:
            return None
        backup = (primary + self.scheme.offset) % self.method.filesystem.m
        if self.injector.is_failed(backup):
            return None
        return backup

    def _record_counters(self, report: SimulationReport) -> None:
        record_work("runtime.sim.queries", len(report.queries))
        if report.retries:
            record_work("runtime.retries", report.retries)
        if report.timeouts:
            record_work("runtime.timeouts", report.timeouts)
        if report.failovers:
            record_work("runtime.failovers", report.failovers)
        degraded = sum(1 for q in report.queries if q.completeness < 1.0)
        if degraded:
            record_work("runtime.degraded_queries", degraded)
