"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the finer-grained failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NotPowerOfTwoError",
    "FieldValueError",
    "TransformError",
    "DistributionError",
    "QueryError",
    "StorageError",
    "DeviceFullError",
    "DataUnavailableError",
    "CorruptPageError",
    "WalError",
    "RecoveryError",
    "SimulatedCrashError",
    "AnalysisError",
    "ProtocolError",
    "FrameTooLargeError",
    "GatewayError",
    "GatewayTimeoutError",
    "ConnectionLostError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A file system, distribution method or cost model was mis-configured."""


class NotPowerOfTwoError(ConfigurationError):
    """A quantity the paper requires to be a power of two is not one.

    The paper assumes both the number of devices ``M`` and every field size
    ``F_i`` are powers of two (section 2); the FX transformation algebra
    relies on it.
    """

    def __init__(self, name: str, value: int):
        self.name = name
        self.value = value
        super().__init__(f"{name} must be a power of two, got {value!r}")


class FieldValueError(ReproError, ValueError):
    """A field value lies outside its declared domain ``{0, ..., F-1}``."""


class TransformError(ReproError, ValueError):
    """A field transformation was constructed or applied illegally."""


class DistributionError(ReproError, ValueError):
    """A distribution method rejected its configuration or an input bucket."""


class QueryError(ReproError, ValueError):
    """A partial match query is malformed for its file system."""


class StorageError(ReproError, RuntimeError):
    """The simulated storage layer hit an inconsistent state."""


class DeviceFullError(StorageError):
    """A simulated device exceeded its configured capacity."""


class DataUnavailableError(StorageError):
    """Every replica of a needed bucket sits on a failed device."""


class CorruptPageError(StorageError):
    """A bucket page failed its checksum: silent corruption was detected."""


class WalError(StorageError):
    """The write-ahead log is malformed beyond an expected torn tail."""


class RecoveryError(StorageError):
    """Crash/corruption recovery could not restore a consistent state."""


class SimulatedCrashError(ReproError, RuntimeError):
    """A deterministic crash injection point fired (fault simulation)."""


class AnalysisError(ReproError, RuntimeError):
    """An analysis routine received inputs it cannot evaluate exactly."""


class ProtocolError(ReproError, ValueError):
    """A serialised payload violates the versioned envelope or wire schema."""


class FrameTooLargeError(ProtocolError):
    """A wire frame declared a length beyond the configured bound.

    Raised *before* the body is buffered, so a hostile or broken peer
    cannot make the gateway allocate unbounded memory.
    """

    def __init__(self, declared: int, limit: int):
        self.declared = declared
        self.limit = limit
        super().__init__(
            f"frame declares {declared} bytes, limit is {limit}"
        )


class GatewayError(ReproError, RuntimeError):
    """The network gateway hit an unrecoverable serving-side state."""


class GatewayTimeoutError(GatewayError):
    """A socket operation against the gateway ran past its deadline.

    Wraps the raw :class:`socket.timeout` so callers never block forever
    on an unresponsive server and never have to catch raw socket errors.
    """


class ConnectionLostError(GatewayError):
    """The TCP connection to the gateway dropped mid-operation.

    Wraps raw :class:`OSError` connect/send/recv failures (refused,
    reset, broken pipe) behind the library hierarchy; a resilient client
    treats it as retryable on a fresh connection.
    """


class CircuitOpenError(GatewayError):
    """A per-tenant circuit breaker is open: the request failed fast.

    Raised instead of attempting the wire call once consecutive
    transport failures cross the breaker threshold; the breaker lets a
    probe through after its cooldown.
    """
