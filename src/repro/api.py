"""The one-stop construction facade: ``make_method`` and friends.

Callers used to import constructors from five ``repro.distribution.*``
modules (plus :mod:`repro.core.fx`) and remember each one's signature.
This module puts a single registry-backed factory in front of all of
them::

    from repro import make_method

    fx = make_method("fx", fields=(8, 8, 16), devices=32)
    gdm = make_method("gdm", fields=(8, 8), devices=16, multipliers=(3, 5))
    scheme = make_method("replicated", fields=(4, 8), devices=8, base="fx")

Names cover every registered distribution method plus ``"replicated"``
(a :class:`~repro.distribution.replicated.ChainedReplicaScheme` over any
base method).  Unknown options and names raise
:class:`~repro.errors.ConfigurationError` with the known alternatives
spelled out.  The old constructor imports still work but are deprecated —
see ``repro.distribution.__getattr__`` and the matching warn-once shims
in :mod:`repro` itself.

The higher tiers stack on the same keyword surface — every factory takes
``(name, *, fields=..., devices=..., **method options)`` plus its tier's
knobs, and the knob names are shared wherever tiers overlap:

======================  ==============================================
factory                 adds
======================  ==============================================
:func:`make_method`     the bucket-to-device method itself
:func:`make_durable_file`  store options (``checksummed``, ``replicate``,
                        ``offset``, ``cost_model``) + WAL crash points
:func:`make_service`    the same store options (minus replication) +
                        serving knobs mirroring
                        :class:`~repro.service.ServiceConfig`
                        (admission retry, cache, coalescing,
                        micro-batching, futures pool)
:func:`make_gateway`    the same serving knobs as tenant-wide defaults +
                        network knobs mirroring
                        :class:`~repro.gateway.GatewayConfig`
======================  ==============================================

The ``serve`` and ``gateway`` CLI subcommands construct exclusively
through this module.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from repro.distribution.base import (
    DistributionMethod,
    available_methods,
    create_method,
)
from repro.errors import ConfigurationError
from repro.hashing.fields import FileSystem

__all__ = [
    "make_method",
    "make_durable_file",
    "make_service",
    "make_gateway",
    "method_names",
    "register_factory",
    "default_gdm_multipliers",
]

#: Builders needing more than the plain ``cls(filesystem, **opts)`` shape.
_FACTORIES: dict[str, Callable[..., object]] = {}


def register_factory(name: str):
    """Decorator registering a special-cased builder for *name*."""

    def decorate(builder: Callable[..., object]):
        if name in _FACTORIES:
            raise ConfigurationError(f"factory {name!r} already registered")
        _FACTORIES[name] = builder
        return builder

    return decorate


def default_gdm_multipliers(n_fields: int) -> tuple[int, ...]:
    """The odd-sequence multipliers used as the GDM default everywhere
    (CLI, facade, skew reports): 3, 5, 7, ... one per field."""
    return tuple(range(3, 3 + 2 * n_fields, 2))


@register_factory("gdm")
def _make_gdm(filesystem: FileSystem, **opts):
    from repro.distribution.gdm import GDM_PRESETS, GDMDistribution

    preset = opts.pop("preset", None)
    if preset is not None:
        if "multipliers" in opts:
            raise ConfigurationError(
                "pass either preset= or multipliers=, not both"
            )
        if preset not in GDM_PRESETS:
            raise ConfigurationError(
                f"unknown GDM preset {preset!r}; known: {sorted(GDM_PRESETS)}"
            )
        return GDMDistribution.preset(filesystem, preset)
    opts.setdefault(
        "multipliers", default_gdm_multipliers(filesystem.n_fields)
    )
    return GDMDistribution(filesystem, **opts)


@register_factory("replicated")
def _make_replicated(filesystem: FileSystem, **opts):
    from repro.distribution.replicated import ChainedReplicaScheme

    base = opts.pop("base", "fx")
    offset = opts.pop("offset", 1)
    if isinstance(base, DistributionMethod):
        if base.filesystem != filesystem:
            raise ConfigurationError(
                "base method was built for a different file system"
            )
        base_method = base
    else:
        base_method = make_method(
            base, fields=filesystem.field_sizes, devices=filesystem.m, **opts
        )
        opts = {}
    if opts:
        raise ConfigurationError(
            f"unknown options for 'replicated': {sorted(opts)}"
        )
    return ChainedReplicaScheme(base_method, offset=offset)


def method_names() -> tuple[str, ...]:
    """Every name :func:`make_method` accepts, sorted."""
    return tuple(sorted(set(available_methods()) | set(_FACTORIES)))


def make_method(
    name: str,
    *,
    fields: Sequence[int],
    devices: int,
    **opts: object,
):
    """Build a distribution method (or replica scheme) by name.

    *fields* are the per-field domain sizes (powers of two), *devices* the
    array width ``M``; extra keyword options go to the method constructor
    (e.g. ``policy=`` / ``transforms=`` for fx, ``multipliers=`` or
    ``preset=`` for gdm, ``seed=`` for random, ``traversal=`` for
    spanning, ``base=`` / ``offset=`` for replicated).

    >>> make_method("modulo", fields=(4, 4), devices=4).device_of((3, 3))
    2
    >>> make_method("fx", fields=(2, 8), devices=4).name
    'fx'
    """
    # Importing the concrete modules registers every built-in method.
    import repro.core.fx  # noqa: F401
    import repro.distribution  # noqa: F401

    filesystem = FileSystem.of(*fields, m=devices)
    builder = _FACTORIES.get(name)
    try:
        if builder is not None:
            return builder(filesystem, **opts)
        if name not in available_methods():
            raise ConfigurationError(
                f"unknown method {name!r}; known: {list(method_names())}"
            )
        return create_method(name, filesystem, **opts)
    except TypeError as error:
        # An unknown constructor kwarg surfaces as TypeError; keep the
        # facade's promise that everything it raises is a ReproError.
        raise ConfigurationError(
            f"bad options for method {name!r}: {error}"
        ) from error


def make_durable_file(
    name: str = "fx",
    *,
    fields: Sequence[int],
    devices: int,
    replicate: bool = True,
    offset: int = 1,
    checksummed: bool = True,
    crash_after: int | None = None,
    torn_tail: bool = False,
    cost_model=None,
    **opts: object,
):
    """Build a :class:`~repro.durability.DurableFile`: a write-ahead-logged,
    checksummed, (by default) replicated file ready for crash/corruption
    injection and recovery.

    *crash_after* arms a deterministic crash at that WAL record boundary
    (*torn_tail* leaves half a frame behind, as a power cut would);
    *checksummed* puts :class:`~repro.durability.ChecksummedBucketStore`
    pages on every device; *replicate* chains a backup copy at *offset*
    so the scrubber and device rebuilder have replicas to repair from.

    >>> durable = make_durable_file("fx", fields=(4, 4), devices=4)
    >>> durable.insert_all([(i, i % 4) for i in range(8)])
    >>> durable.wal.entry_count
    8
    """
    from repro.distribution.replicated import ChainedReplicaScheme
    from repro.durability import (
        ChecksummedBucketStore,
        CrashPoint,
        DurableFile,
        WriteAheadLog,
    )
    from repro.storage.parallel_file import PartitionedFile
    from repro.storage.replicated_file import ReplicatedFile

    method = make_method(name, fields=fields, devices=devices, **opts)
    store_factory = ChecksummedBucketStore if checksummed else None
    if replicate:
        file = ReplicatedFile(
            ChainedReplicaScheme(method, offset=offset),
            cost_model=cost_model,
            store_factory=store_factory,
        )
    else:
        file = PartitionedFile(
            method, cost_model=cost_model, store_factory=store_factory
        )
    crash = (
        CrashPoint(crash_after, torn_tail=torn_tail)
        if crash_after is not None
        else None
    )
    return DurableFile(file, wal=WriteAheadLog(crash=crash))


def make_service(
    name: str = "fx",
    *,
    fields: Sequence[int],
    devices: int,
    max_concurrent: int = 8,
    queue_limit: int = 32,
    deadline_ms: float | None = None,
    admission_retry=None,
    cache_capacity: int | None = 64,
    coalesce: bool = True,
    batch_max_size: int | None = None,
    batch_window_ms: float = 2.0,
    submit_workers: int | None = None,
    checksummed: bool = False,
    cost_model=None,
    **opts: object,
):
    """Build a ready-to-serve :class:`~repro.service.QueryService`:
    a partitioned file under the named distribution method, fronted by
    admission control, request coalescing and the write-aware result
    cache.

    The serving knobs mirror :class:`~repro.service.ServiceConfig`
    (``submit_workers`` sizes the futures pool behind
    :meth:`~repro.service.QueryService.submit`); ``checksummed`` puts
    :class:`~repro.durability.ChecksummedBucketStore` pages on every
    device, the same store option :func:`make_durable_file` takes.
    Remaining keyword options go to the method constructor exactly as in
    :func:`make_method`.  The underlying file is reachable as
    ``service.file`` for loading records.

    >>> service = make_service("fx", fields=(4, 4), devices=4)
    >>> __ = service.insert((1, 2))
    >>> service.execute(service.file.query({0: 1})).status
    'ok'
    """
    from repro.runtime import RetryPolicy
    from repro.service import QueryService, ServiceConfig
    from repro.storage.parallel_file import PartitionedFile

    method = make_method(name, fields=fields, devices=devices, **opts)
    store_factory = None
    if checksummed:
        from repro.durability import ChecksummedBucketStore

        store_factory = ChecksummedBucketStore
    config = ServiceConfig(
        max_concurrent=max_concurrent,
        queue_limit=queue_limit,
        deadline_ms=deadline_ms,
        admission_retry=admission_retry or RetryPolicy.none(),
        cache_capacity=cache_capacity,
        coalesce=coalesce,
        batch_max_size=batch_max_size,
        batch_window_ms=batch_window_ms,
        submit_workers=submit_workers,
    )
    return QueryService(
        PartitionedFile(
            method, cost_model=cost_model, store_factory=store_factory
        ),
        config,
    )


#: The ``make_service`` keyword names ``make_gateway`` forwards as
#: tenant-wide defaults — the one shared serving-knob surface.
SERVICE_OPTION_NAMES = (
    "max_concurrent",
    "queue_limit",
    "deadline_ms",
    "admission_retry",
    "cache_capacity",
    "coalesce",
    "batch_max_size",
    "batch_window_ms",
    "submit_workers",
    "checksummed",
    "cost_model",
)


def make_gateway(
    tenants,
    *,
    fields: Sequence[int] | None = None,
    devices: int | None = None,
    method: str = "fx",
    host: str = "127.0.0.1",
    port: int = 0,
    max_connections: int = 32,
    max_frame_bytes: int | None = None,
    drain_timeout_s: float = 10.0,
    include_records: bool = True,
    start: bool = False,
    **service_options: object,
):
    """Build a multi-tenant network :class:`~repro.gateway.Gateway`.

    *tenants* may be

    * a sequence of :class:`~repro.gateway.TenantSpec`,
    * a mapping ``{name: {option: value, ...}}`` of per-tenant options
      (``fields``/``devices``/``method`` default from the top-level
      arguments; quotas/limits per :class:`~repro.gateway.TenantSpec`), or
    * a sequence of bare tenant names sharing the top-level
      ``fields``/``devices``/``method``.

    Remaining keyword options are the :func:`make_service` serving knobs
    (see :data:`SERVICE_OPTION_NAMES`) applied as defaults to every
    tenant; a spec's own ``service`` mapping overrides them.  ``start=True``
    binds and launches the accept loop before returning — ``port=0``
    picks a free loopback port, readable from ``gateway.address``.

    >>> gateway = make_gateway(["alpha"], fields=(4, 4), devices=4)
    >>> sorted(gateway.tenants)
    ['alpha']
    """
    from repro.gateway import Gateway, GatewayConfig, TenantSpec
    from repro.gateway.protocol import DEFAULT_MAX_FRAME_BYTES

    unknown = sorted(set(service_options) - set(SERVICE_OPTION_NAMES))
    if unknown:
        raise ConfigurationError(
            f"unknown gateway/service options: {unknown}; "
            f"serving knobs are {sorted(SERVICE_OPTION_NAMES)}"
        )

    def default_spec(tenant_name: str, options: dict) -> TenantSpec:
        options = dict(options)
        tenant_fields = options.pop("fields", fields)
        tenant_devices = options.pop("devices", devices)
        tenant_method = options.pop("method", method)
        if tenant_fields is None or tenant_devices is None:
            raise ConfigurationError(
                f"tenant {tenant_name!r} needs fields= and devices= "
                "(per tenant or as make_gateway defaults)"
            )
        return TenantSpec.of(
            tenant_name,
            fields=tuple(tenant_fields),
            devices=tenant_devices,
            method=tenant_method,
            **options,
        )

    specs: list[TenantSpec] = []
    if hasattr(tenants, "items"):
        for tenant_name, options in tenants.items():
            if isinstance(options, TenantSpec):
                specs.append(options)
            else:
                specs.append(default_spec(tenant_name, dict(options or {})))
    else:
        for entry in tenants:
            if isinstance(entry, TenantSpec):
                specs.append(entry)
            elif isinstance(entry, str):
                specs.append(default_spec(entry, {}))
            else:
                raise ConfigurationError(
                    f"tenant entries must be names or TenantSpec, got "
                    f"{entry!r}"
                )

    # Tenant services are built lazily on first touch, so check every
    # tenant's merged serving knobs now — a bad default should fail the
    # build, not bounce every later request as a wire error.
    from repro.service import ServiceConfig

    config_fields = {f.name for f in dataclasses.fields(ServiceConfig)}
    for spec in specs:
        merged = dict(service_options)
        merged.update(spec.service)
        knobs = {
            key: value
            for key, value in merged.items()
            if key in config_fields and value is not None
        }
        try:
            ServiceConfig(**knobs).validate()
        except ConfigurationError as error:
            raise ConfigurationError(
                f"tenant {spec.name!r}: {error}"
            ) from None

    config = GatewayConfig(
        host=host,
        port=port,
        max_connections=max_connections,
        max_frame_bytes=(
            DEFAULT_MAX_FRAME_BYTES
            if max_frame_bytes is None
            else max_frame_bytes
        ),
        drain_timeout_s=drain_timeout_s,
        include_records=include_records,
    )
    gateway = Gateway(specs, config, service_defaults=service_options)
    if start:
        gateway.start()
    return gateway
