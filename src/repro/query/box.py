"""Box queries: the "more general type of queries" of the paper's §6.

A partial match query restricts each field to either one value or all
values.  A *box query* generalises both ends: each field carries an
arbitrary non-empty set of allowed hashed values — a range (order-
preserving hashes make attribute ranges contiguous in hash space), an
IN-list, or everything.  The qualified buckets form the Cartesian product
of the per-field sets (a "box" in the grid), which is exactly the query
class the paper's conclusion points at for future distribution work.

Everything downstream generalises cleanly: the per-device histogram is the
group convolution of *restricted* contribution histograms
(:mod:`repro.analysis.box`), and inverse mapping solves the last field
against the restricted contribution index.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.errors import QueryError
from repro.hashing.fields import Bucket, FileSystem
from repro.query.partial_match import PartialMatchQuery

__all__ = ["BoxQuery"]


@dataclass(frozen=True)
class BoxQuery:
    """A Cartesian-product query: one allowed-value set per field.

    ``allowed[i]`` is a sorted tuple of permitted hashed values for field
    ``i`` (never empty; the full domain means the field is unconstrained).

    >>> fs = FileSystem.of(4, 8, m=4)
    >>> box = BoxQuery.from_spec(fs, {0: (1, 3), 1: [2, 5]})
    >>> box.qualified_count        # field 0 in {1,2,3}, field 1 in {2,5}
    6
    """

    filesystem: FileSystem
    allowed: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.allowed) != self.filesystem.n_fields:
            raise QueryError(
                f"{len(self.allowed)} field sets for "
                f"{self.filesystem.n_fields} fields"
            )
        for i, values in enumerate(self.allowed):
            size = self.filesystem.field_sizes[i]
            if not values:
                raise QueryError(f"field {i}: empty allowed set")
            if list(values) != sorted(set(values)):
                raise QueryError(
                    f"field {i}: allowed set must be sorted and duplicate-free"
                )
            if values[0] < 0 or values[-1] >= size:
                raise QueryError(
                    f"field {i}: values outside domain [0, {size})"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(
        cls,
        filesystem: FileSystem,
        spec: Mapping[int, int | tuple[int, int] | Iterable[int]],
    ) -> "BoxQuery":
        """Build from a per-field spec; unmentioned fields are unconstrained.

        Per field: a single int (exact), a ``(lo, hi)`` 2-tuple (inclusive
        range of hashed values), or any other iterable of values (IN-list).
        """
        allowed: list[tuple[int, ...]] = []
        for i, size in enumerate(filesystem.field_sizes):
            if i not in spec:
                allowed.append(tuple(range(size)))
                continue
            constraint = spec[i]
            if isinstance(constraint, int):
                allowed.append((constraint,))
            elif (
                isinstance(constraint, tuple)
                and len(constraint) == 2
                and all(isinstance(v, int) for v in constraint)
            ):
                lo, hi = constraint
                if lo > hi:
                    raise QueryError(f"field {i}: empty range ({lo}, {hi})")
                allowed.append(tuple(range(lo, hi + 1)))
            else:
                allowed.append(tuple(sorted(set(constraint))))
        return cls(filesystem, tuple(allowed))

    @classmethod
    def from_partial_match(cls, query: PartialMatchQuery) -> "BoxQuery":
        """Embed a partial match query (the degenerate box)."""
        allowed = []
        for value, size in zip(query.values, query.filesystem.field_sizes):
            if value is None:
                allowed.append(tuple(range(size)))
            else:
                allowed.append((value,))
        return cls(query.filesystem, tuple(allowed))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def qualified_count(self) -> int:
        return math.prod(len(values) for values in self.allowed)

    def constrained_fields(self) -> tuple[int, ...]:
        """Fields whose allowed set is a proper subset of the domain."""
        return tuple(
            i
            for i, values in enumerate(self.allowed)
            if len(values) < self.filesystem.field_sizes[i]
        )

    def is_partial_match(self) -> bool:
        """True when every field is either exact or unconstrained."""
        return all(
            len(values) in (1, self.filesystem.field_sizes[i])
            for i, values in enumerate(self.allowed)
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def qualified_buckets(self) -> Iterator[Bucket]:
        return itertools.product(*self.allowed)

    def matches(self, bucket: Bucket) -> bool:
        self.filesystem.check_bucket(bucket)
        return all(
            value in values for value, values in zip(bucket, self.allowed)
        )

    def describe(self) -> str:
        """Compact rendering, e.g. ``<1, {2,5}, *>``."""
        cells = []
        for i, values in enumerate(self.allowed):
            size = self.filesystem.field_sizes[i]
            if len(values) == size:
                cells.append("*")
            elif len(values) == 1:
                cells.append(str(values[0]))
            else:
                cells.append("{" + ",".join(map(str, values)) + "}")
        return "<" + ", ".join(cells) + ">"
