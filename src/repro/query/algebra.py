"""Query algebra: containment and intersection of partial match queries.

Partial match queries over one file system form a meet-semilattice: `q1`
*subsumes* `q2` when every bucket qualifying for `q2` also qualifies for
`q1` (so a cache holding `q1`'s result can answer `q2` locally), and the
*intersection* of two queries is the most general query qualifying exactly
the buckets both do — or nothing, when they pin the same field to different
values.  Batch executors and result caches are the consumers.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.query.partial_match import PartialMatchQuery

__all__ = ["subsumes", "intersect", "are_disjoint"]


def _check_same_filesystem(
    first: PartialMatchQuery, second: PartialMatchQuery
) -> None:
    if first.filesystem != second.filesystem:
        raise QueryError("queries target different file systems")


def subsumes(general: PartialMatchQuery, specific: PartialMatchQuery) -> bool:
    """Does every bucket of *specific* qualify for *general*?

    True exactly when *general* leaves free every field *specific* leaves
    free, and agrees on every field both specify.

    >>> from repro.hashing.fields import FileSystem
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> broad = PartialMatchQuery.from_dict(fs, {0: 1})
    >>> narrow = PartialMatchQuery.from_dict(fs, {0: 1, 1: 2})
    >>> subsumes(broad, narrow)
    True
    >>> subsumes(narrow, broad)
    False
    """
    _check_same_filesystem(general, specific)
    for general_value, specific_value in zip(general.values, specific.values):
        if general_value is None:
            continue
        if general_value != specific_value:
            return False
    return True


def intersect(
    first: PartialMatchQuery, second: PartialMatchQuery
) -> PartialMatchQuery | None:
    """The query qualifying exactly the buckets both do, or ``None``.

    >>> from repro.hashing.fields import FileSystem
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> a = PartialMatchQuery.from_dict(fs, {0: 1})
    >>> b = PartialMatchQuery.from_dict(fs, {1: 2})
    >>> intersect(a, b).describe()
    '<1, 2>'
    """
    _check_same_filesystem(first, second)
    merged: list[int | None] = []
    for left, right in zip(first.values, second.values):
        if left is None:
            merged.append(right)
        elif right is None or right == left:
            merged.append(left)
        else:
            return None
    return PartialMatchQuery(first.filesystem, tuple(merged))


def are_disjoint(first: PartialMatchQuery, second: PartialMatchQuery) -> bool:
    """No bucket qualifies for both (some field pinned to different values)."""
    return intersect(first, second) is None
