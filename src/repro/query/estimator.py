"""Workload statistics estimation from observed queries.

The design optimiser and the method advisor both consume per-field
specification probabilities.  This module estimates them from a sample of
queries (e.g. a parsed trace), with Wilson-score confidence intervals so a
thin trace is visibly thin, plus an independence diagnostic: the paper's
query model assumes fields are specified independently, and a trace can be
checked against that assumption before its estimates are trusted.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.query.partial_match import PartialMatchQuery

__all__ = ["FieldEstimate", "WorkloadEstimate", "estimate_workload"]

#: z for 95% two-sided confidence.
_Z95 = 1.959963984540054


def _wilson(successes: int, trials: int, z: float = _Z95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials == 0:
        return (0.0, 1.0)
    p_hat = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials**2))
        / denominator
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


@dataclass(frozen=True)
class FieldEstimate:
    """Specification-probability estimate of one field."""

    field_index: int
    probability: float
    low: float
    high: float
    samples: int


@dataclass(frozen=True)
class WorkloadEstimate:
    """Estimates for all fields plus an independence diagnostic."""

    fields: tuple[FieldEstimate, ...]
    samples: int
    #: Largest |P(i and j specified) - P(i)P(j)| over field pairs; values
    #: near 0 are consistent with the paper's independence assumption.
    max_pairwise_dependence: float

    def probabilities(self) -> tuple[float, ...]:
        """Point estimates, ready for design_directory / recommend_method."""
        return tuple(estimate.probability for estimate in self.fields)

    def looks_independent(self, tolerance: float = 0.1) -> bool:
        return self.max_pairwise_dependence <= tolerance


def estimate_workload(queries: Sequence[PartialMatchQuery]) -> WorkloadEstimate:
    """Estimate per-field specification probabilities from *queries*.

    >>> from repro.hashing.fields import FileSystem
    >>> fs = FileSystem.of(4, 4, m=4)
    >>> qs = [PartialMatchQuery.from_dict(fs, {0: 1})] * 10
    >>> estimate_workload(qs).probabilities()
    (1.0, 0.0)
    """
    if not queries:
        raise AnalysisError("cannot estimate from an empty sample")
    fs = queries[0].filesystem
    for query in queries:
        if query.filesystem != fs:
            raise AnalysisError("queries target different file systems")
    n = len(queries)
    n_fields = fs.n_fields

    specified_counts = [0] * n_fields
    joint_counts = [[0] * n_fields for __ in range(n_fields)]
    for query in queries:
        flags = [value is not None for value in query.values]
        for i in range(n_fields):
            if flags[i]:
                specified_counts[i] += 1
                for j in range(i + 1, n_fields):
                    if flags[j]:
                        joint_counts[i][j] += 1

    fields = []
    for i in range(n_fields):
        low, high = _wilson(specified_counts[i], n)
        fields.append(
            FieldEstimate(
                field_index=i,
                probability=specified_counts[i] / n,
                low=low,
                high=high,
                samples=n,
            )
        )

    max_dependence = 0.0
    for i in range(n_fields):
        for j in range(i + 1, n_fields):
            joint = joint_counts[i][j] / n
            product = fields[i].probability * fields[j].probability
            max_dependence = max(max_dependence, abs(joint - product))

    return WorkloadEstimate(
        fields=tuple(fields),
        samples=n,
        max_pairwise_dependence=max_dependence,
    )
