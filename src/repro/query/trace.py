"""Trace-driven workloads: parse and serialise query logs.

Real evaluations replay logged workloads.  The trace format here is one
query per line, whitespace-separated ``field=value`` terms with ``*`` for
unspecified fields, ``#`` comments and blank lines ignored::

    # parts catalog trace
    f0=3 f1=* f2=1
    f0=* f1=7 f2=*

Field indices must cover every field of the target file system exactly
once, which catches silently-truncated traces at load time.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import QueryError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery

__all__ = ["parse_trace", "load_trace", "dump_trace", "format_query"]


def parse_trace(
    filesystem: FileSystem, lines: Iterable[str]
) -> Iterator[PartialMatchQuery]:
    """Parse trace *lines* into queries (lazily, line by line)."""
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        yield _parse_line(filesystem, line, line_number)


def _parse_line(
    filesystem: FileSystem, line: str, line_number: int
) -> PartialMatchQuery:
    values: list[int | None] = [None] * filesystem.n_fields
    seen: set[int] = set()
    for term in line.split():
        name, __, value_text = term.partition("=")
        if not name.startswith("f") or not value_text:
            raise QueryError(
                f"trace line {line_number}: malformed term {term!r} "
                "(expected fN=value or fN=*)"
            )
        try:
            index = int(name[1:])
        except ValueError:
            raise QueryError(
                f"trace line {line_number}: bad field name {name!r}"
            ) from None
        if not 0 <= index < filesystem.n_fields:
            raise QueryError(
                f"trace line {line_number}: no field {index} "
                f"(file has {filesystem.n_fields})"
            )
        if index in seen:
            raise QueryError(
                f"trace line {line_number}: field {index} given twice"
            )
        seen.add(index)
        if value_text == "*":
            values[index] = None
        else:
            try:
                values[index] = int(value_text)
            except ValueError:
                raise QueryError(
                    f"trace line {line_number}: non-integer value "
                    f"{value_text!r}"
                ) from None
    if seen != set(range(filesystem.n_fields)):
        missing = sorted(set(range(filesystem.n_fields)) - seen)
        raise QueryError(
            f"trace line {line_number}: fields {missing} not mentioned"
        )
    try:
        return PartialMatchQuery(filesystem, tuple(values))
    except QueryError as error:
        raise QueryError(f"trace line {line_number}: {error}") from None


def load_trace(filesystem: FileSystem, path: str | Path) -> list[PartialMatchQuery]:
    """Load a whole trace file.

    >>> import tempfile, os
    >>> fs = FileSystem.of(4, 8, m=4)
    >>> with tempfile.TemporaryDirectory() as d:
    ...     p = os.path.join(d, "trace.txt")
    ...     __ = Path(p).write_text("f0=1 f1=*\\nf0=* f1=5\\n")
    ...     [q.describe() for q in load_trace(fs, p)]
    ['<1, *>', '<*, 5>']
    """
    with open(path, encoding="utf-8") as handle:
        return list(parse_trace(filesystem, handle))


def format_query(query: PartialMatchQuery) -> str:
    """One trace line for *query* (inverse of parsing)."""
    terms = []
    for i, value in enumerate(query.values):
        terms.append(f"f{i}=*" if value is None else f"f{i}={value}")
    return " ".join(terms)


def dump_trace(
    queries: Iterable[PartialMatchQuery], path: str | Path
) -> None:
    """Write queries to a trace file, one per line."""
    lines = [format_query(query) for query in queries]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
