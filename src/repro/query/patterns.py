"""Specification patterns: which fields of a query are unspecified.

For every distribution method in this library whose device address is a
group operation over per-field contributions (FX, Modulo, GDM), the *shape*
of a query's per-device histogram depends only on its pattern — the set of
unspecified fields — and not on the specified values (the specified part
merely permutes device labels; see DESIGN.md).  The evaluation section of the
paper therefore sweeps patterns, and this module provides the enumerators.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

from repro.errors import QueryError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery

__all__ = [
    "SpecPattern",
    "all_patterns",
    "patterns_with_k_unspecified",
    "queries_for_pattern",
    "representative_query",
]

#: A pattern is the frozen set of *unspecified* field indices.
SpecPattern = frozenset[int]


def all_patterns(n_fields: int) -> Iterator[SpecPattern]:
    """All ``2**n`` specification patterns, by increasing unspecified count.

    Includes the exact match (empty set) and the full scan (all fields),
    matching the paper's inclusive definition of partial match queries.
    """
    for k in range(n_fields + 1):
        yield from patterns_with_k_unspecified(n_fields, k)


def patterns_with_k_unspecified(n_fields: int, k: int) -> Iterator[SpecPattern]:
    """The ``C(n, k)`` patterns with exactly *k* unspecified fields."""
    if not 0 <= k <= n_fields:
        raise QueryError(f"k={k} outside [0, {n_fields}]")
    for combo in itertools.combinations(range(n_fields), k):
        yield frozenset(combo)


def queries_for_pattern(
    filesystem: FileSystem, pattern: Iterable[int]
) -> Iterator[PartialMatchQuery]:
    """Every concrete query with the given unspecified set.

    Iterates over all combinations of values for the *specified* fields —
    ``prod F_i`` over specified ``i`` queries in total.
    """
    unspecified = frozenset(pattern)
    for i in unspecified:
        if not 0 <= i < filesystem.n_fields:
            raise QueryError(f"pattern names field {i}, file system has "
                             f"{filesystem.n_fields} fields")
    specified = [i for i in range(filesystem.n_fields) if i not in unspecified]
    axes = [range(filesystem.field_sizes[i]) for i in specified]
    for values in itertools.product(*axes):
        yield PartialMatchQuery.from_dict(
            filesystem, dict(zip(specified, values))
        )


def representative_query(
    filesystem: FileSystem, pattern: Iterable[int]
) -> PartialMatchQuery:
    """One concrete query for *pattern* with all specified fields at 0.

    Sufficient for methods whose histogram shape is pattern-only; the
    empirical checkers use it as a fast path when the method declares that
    property.
    """
    unspecified = frozenset(pattern)
    specified = {
        i: 0 for i in range(filesystem.n_fields) if i not in unspecified
    }
    return PartialMatchQuery.from_dict(filesystem, specified)
