"""Partial match queries, specification patterns and workload generators."""

from repro.query.algebra import are_disjoint, intersect, subsumes
from repro.query.box import BoxQuery
from repro.query.estimator import WorkloadEstimate, estimate_workload
from repro.query.partial_match import PartialMatchQuery
from repro.query.trace import dump_trace, load_trace, parse_trace
from repro.query.patterns import (
    SpecPattern,
    all_patterns,
    patterns_with_k_unspecified,
    queries_for_pattern,
)
from repro.query.workload import QueryWorkload, WorkloadSpec

__all__ = [
    "PartialMatchQuery",
    "BoxQuery",
    "SpecPattern",
    "all_patterns",
    "patterns_with_k_unspecified",
    "queries_for_pattern",
    "QueryWorkload",
    "WorkloadSpec",
    "subsumes",
    "intersect",
    "are_disjoint",
    "parse_trace",
    "load_trace",
    "dump_trace",
    "estimate_workload",
    "WorkloadEstimate",
]
