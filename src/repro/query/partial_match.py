"""Partial match queries over a multi-key hashed file.

A partial match query specifies hashed values for a subset of the fields and
leaves the rest unspecified; every bucket agreeing on the specified
coordinates *qualifies* (the paper's ``R(q)``).  The distribution-quality
definitions (strict / k / perfect optimality) all quantify over these
queries.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from functools import cached_property

from repro.errors import QueryError
from repro.hashing.fields import Bucket, FileSystem

__all__ = ["PartialMatchQuery"]

#: Marker for an unspecified field in the positional representation.
UNSPECIFIED = None


@dataclass(frozen=True)
class PartialMatchQuery:
    """One partial match query: ``values[i]`` is ``None`` when unspecified.

    >>> fs = FileSystem.of(2, 8, m=4)
    >>> q = PartialMatchQuery.from_dict(fs, {0: 1})
    >>> q.num_unspecified, q.qualified_count
    (1, 8)
    """

    filesystem: FileSystem
    values: tuple[int | None, ...]

    def __post_init__(self) -> None:
        if len(self.values) != self.filesystem.n_fields:
            raise QueryError(
                f"query names {len(self.values)} fields, file system has "
                f"{self.filesystem.n_fields}"
            )
        for i, value in enumerate(self.values):
            if value is None:
                continue
            size = self.filesystem.field_sizes[i]
            if not isinstance(value, int) or not 0 <= value < size:
                raise QueryError(
                    f"field {i} value {value!r} outside domain [0, {size})"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, filesystem: FileSystem, specified: Mapping[int, int]
    ) -> "PartialMatchQuery":
        """Build a query from ``{field_index: hashed_value}``."""
        values: list[int | None] = [UNSPECIFIED] * filesystem.n_fields
        for field_index, value in specified.items():
            if not 0 <= field_index < filesystem.n_fields:
                raise QueryError(f"no field {field_index}")
            values[field_index] = value
        return cls(filesystem, tuple(values))

    @classmethod
    def exact(cls, filesystem: FileSystem, bucket: Bucket) -> "PartialMatchQuery":
        """A fully specified (exact match) query for one bucket."""
        filesystem.check_bucket(bucket)
        return cls(filesystem, tuple(bucket))

    @classmethod
    def full_scan(cls, filesystem: FileSystem) -> "PartialMatchQuery":
        """The query with every field unspecified (retrieve the whole file)."""
        return cls(filesystem, (UNSPECIFIED,) * filesystem.n_fields)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def specified_fields(self) -> tuple[int, ...]:
        return tuple(i for i, v in enumerate(self.values) if v is not None)

    @cached_property
    def unspecified_fields(self) -> tuple[int, ...]:
        """The paper's ``q(f)``.

        Cached (the query is immutable): the batch engine touches this and
        the two properties below once per (query, device) cell, where the
        recomputed generator cost showed up in profiles.
        """
        return tuple(i for i, v in enumerate(self.values) if v is None)

    @property
    def num_unspecified(self) -> int:
        return sum(1 for v in self.values if v is None)

    @cached_property
    def pattern(self) -> frozenset[int]:
        """The set of unspecified field indices (drives optimality)."""
        return frozenset(self.unspecified_fields)

    @cached_property
    def qualified_count(self) -> int:
        """``|R(q)|``: product of the unspecified field sizes."""
        sizes = self.filesystem.field_sizes
        return math.prod(sizes[i] for i in self.unspecified_fields)

    def specified_items(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(field_index, value)`` over the specified fields."""
        for i, value in enumerate(self.values):
            if value is not None:
                yield i, value

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def qualified_buckets(self) -> Iterator[Bucket]:
        """Enumerate ``R(q)``, the qualified bucket addresses.

        Row-major over the unspecified fields; the generator touches
        ``qualified_count`` tuples, so callers analysing large grids should
        prefer the convolution engine in :mod:`repro.analysis`.
        """
        sizes = self.filesystem.field_sizes
        axes = [
            range(sizes[i]) if value is None else (value,)
            for i, value in enumerate(self.values)
        ]
        return itertools.product(*axes)

    def matches(self, bucket: Bucket) -> bool:
        """Does *bucket* qualify for this query?"""
        self.filesystem.check_bucket(bucket)
        return all(
            value is None or value == coordinate
            for value, coordinate in zip(self.values, bucket)
        )

    def with_specified(self, field_index: int, value: int) -> "PartialMatchQuery":
        """Return a copy with one more field pinned to *value*."""
        new_values = list(self.values)
        new_values[field_index] = value
        return PartialMatchQuery(self.filesystem, tuple(new_values))

    def describe(self) -> str:
        """Compact rendering, e.g. ``<1, *, 3>``."""
        cells = ["*" if v is None else str(v) for v in self.values]
        return "<" + ", ".join(cells) + ">"
