"""Random partial-match workload generation.

Section 5 of the paper assumes "the probability of each field being specified
is the same for all fields and some field being specified is independent of
each other".  :class:`QueryWorkload` realises exactly that model (independent
Bernoulli per field, uniform specified values), with a seedable RNG so
experiments are reproducible, plus a skewed variant for sensitivity studies.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ConfigurationError, QueryError
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery

__all__ = ["WorkloadSpec", "QueryWorkload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a random workload.

    ``spec_probability`` may be a single float (the paper's uniform model) or
    one probability per field for skewed workloads.  ``exclude_trivial``
    rejects exact-match and full-scan queries, matching the authors who
    "exclude cases where the number of unspecified fields is 0 ... or n".
    """

    spec_probability: float | tuple[float, ...] = 0.5
    exclude_trivial: bool = False
    seed: int = 0

    def probabilities(self, n_fields: int) -> tuple[float, ...]:
        """Expand to one specification probability per field."""
        if isinstance(self.spec_probability, (int, float)):
            probs = (float(self.spec_probability),) * n_fields
        else:
            probs = tuple(float(p) for p in self.spec_probability)
            if len(probs) != n_fields:
                raise ConfigurationError(
                    f"{len(probs)} probabilities for {n_fields} fields"
                )
        for p in probs:
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"probability {p} outside [0, 1]")
        return probs


class QueryWorkload:
    """A reproducible stream of random partial match queries.

    >>> fs = FileSystem.of(4, 4, 8, m=8)
    >>> wl = QueryWorkload(fs, WorkloadSpec(seed=42))
    >>> queries = wl.take(100)
    >>> len(queries)
    100
    >>> all(q.filesystem is fs for q in queries)
    True
    """

    def __init__(self, filesystem: FileSystem, spec: WorkloadSpec | None = None):
        self.filesystem = filesystem
        self.spec = spec or WorkloadSpec()
        self._probs = self.spec.probabilities(filesystem.n_fields)
        self._rng = random.Random(self.spec.seed)

    def __iter__(self) -> Iterator[PartialMatchQuery]:
        while True:
            yield self.next_query()

    def next_query(self) -> PartialMatchQuery:
        """Draw the next query (rejection-samples trivial ones if asked)."""
        for __ in range(10_000):
            values: list[int | None] = []
            for p, size in zip(self._probs, self.filesystem.field_sizes):
                if self._rng.random() < p:
                    values.append(self._rng.randrange(size))
                else:
                    values.append(None)
            query = PartialMatchQuery(self.filesystem, tuple(values))
            if self.spec.exclude_trivial and query.num_unspecified in (
                0,
                self.filesystem.n_fields,
            ):
                continue
            return query
        raise QueryError(
            "could not draw a non-trivial query; specification probabilities "
            "make them vanishingly rare"
        )

    def take(self, count: int) -> list[PartialMatchQuery]:
        """Materialise the next *count* queries."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return [self.next_query() for __ in range(count)]

    def reset(self) -> None:
        """Rewind the RNG to the seed, replaying the same stream."""
        self._rng = random.Random(self.spec.seed)
