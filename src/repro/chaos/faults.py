"""Deterministic network-fault models for the chaos layer.

The runtime's :class:`~repro.runtime.faults.FaultPlan` describes how the
*device array* breaks; :class:`NetFaultPlan` describes how the *wire*
breaks between a gateway client and the gateway:

* **refuse** — an accepted connection is closed before a single frame is
  relayed (a refused/instantly-reset connect, drawn once per connection),
* **reset_request** — the connection is reset before the request frame
  reaches the server (the write never happened),
* **reset_response** — the request is delivered and served but the
  response is swallowed and the connection reset (the write happened, the
  acknowledgement did not — the case idempotency keys exist for),
* **tear** — the response frame is delivered in several chunks with
  pauses between them (the torn frames :class:`FrameDecoder` reassembles),
* **duplicate** — the response frame is delivered twice, then the
  connection is closed (a confused peer; the client must resync by
  reconnecting),
* **delay** — the response is held back *delay_ms* before delivery.

All randomness hashes fixed coordinates through splitmix64 — the same
idiom as :class:`~repro.runtime.faults.FaultInjector`: a per-exchange
draw hashes ``(seed, endpoint, epoch, exchange)`` and a per-connection
refusal draw hashes ``(seed, endpoint, epoch)`` on its own salt, so fault
schedules are order-independent across endpoints, reproducible per seed,
and adding a new fault kind never perturbs existing streams.

``endpoint`` identity is the ``(tenant, connection)`` pair a
:class:`~repro.chaos.proxy.ChaosEndpoint` serves, ``epoch`` counts the
client's reconnects on that endpoint, and ``exchange`` counts
request/response round-trips within one epoch — all three advance only
with endpoint-local events, never with cross-endpoint scheduling, which
is what makes whole chaos runs byte-deterministic per seed.
"""

from __future__ import annotations

import zlib
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.util.numbers import mix64

__all__ = ["FAULT_KINDS", "NetFaultPlan", "NetFaultInjector"]

_MASK = (1 << 64) - 1
#: Odd multipliers decorrelating the coordinates of one exchange draw.
_ENDPOINT_SALT = 0xBF58476D1CE4E5B9
_EPOCH_SALT = 0x94D049BB133111EB
_EXCHANGE_SALT = 0x2545F4914F6CDD1D
#: Separate salt for the per-connection refusal stream, so adding
#: refusals to a plan never perturbs its exchange-level draws.
_REFUSE_SALT = 0xD1342543DE82EF95

#: The exchange-level fault kinds, in threshold-stacking order (the order
#: is part of the deterministic contract: one uniform draw per exchange
#: walks these cumulative rate bands).
FAULT_KINDS = ("reset_request", "reset_response", "tear", "duplicate", "delay")


@dataclass(frozen=True)
class NetFaultPlan:
    """A declarative, seed-reproducible description of wire faults.

    Rates are per-exchange probabilities (one request/response
    round-trip); *refuse_rate* is per accepted connection.  The exchange
    kinds share a single uniform draw through stacked thresholds, so
    their rates must sum below 1.  *script* pins specific faults for
    tests: it maps ``(epoch, exchange)`` to a kind and applies to every
    endpoint, overriding the random draw at those coordinates;
    *refuse_epochs* likewise pins refusals.  The default plan is
    fault-free.

    >>> NetFaultPlan().is_trivial
    True
    >>> NetFaultPlan(tear_rate=0.2).is_trivial
    False
    """

    seed: int = 0
    refuse_rate: float = 0.0
    reset_request_rate: float = 0.0
    reset_response_rate: float = 0.0
    tear_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    #: How long a ``delay`` fault holds the response back.  Keep well
    #: below the client timeout or delays escalate into timeouts.
    delay_ms: float = 5.0
    #: How many chunks a ``tear`` fault splits the response into.
    tear_chunks: int = 3
    #: Scripted exchange faults: ``{(epoch, exchange): kind}``.
    script: Mapping[tuple[int, int], str] = field(default_factory=dict)
    #: Scripted connection refusals by epoch.
    refuse_epochs: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "script", dict(self.script))
        object.__setattr__(
            self, "refuse_epochs", frozenset(self.refuse_epochs)
        )
        for name in (
            "refuse_rate",
            "reset_request_rate",
            "reset_response_rate",
            "tear_rate",
            "duplicate_rate",
            "delay_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} {rate} outside [0, 1)")
        if sum(self.exchange_rates().values()) >= 1.0:
            raise ConfigurationError(
                "exchange fault rates must sum below 1, got "
                f"{self.exchange_rates()}"
            )
        if self.delay_ms < 0:
            raise ConfigurationError(
                f"delay_ms must be >= 0, got {self.delay_ms}"
            )
        if self.tear_chunks < 2:
            raise ConfigurationError(
                f"tear_chunks must be >= 2, got {self.tear_chunks}"
            )
        for key, kind in self.script.items():
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"scripted fault {kind!r} at {key} not in {FAULT_KINDS}"
                )

    @classmethod
    def none(cls) -> "NetFaultPlan":
        """The fault-free plan (a transparent proxy)."""
        return cls()

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "NetFaultPlan":
        """Every fault kind (refusals included) at the same *rate*."""
        options = dict(
            seed=seed,
            refuse_rate=rate,
            reset_request_rate=rate,
            reset_response_rate=rate,
            tear_rate=rate,
            duplicate_rate=rate,
            delay_rate=rate,
        )
        options.update(overrides)
        return cls(**options)

    def exchange_rates(self) -> dict[str, float]:
        """Kind -> rate for the per-exchange draws, in stacking order."""
        return {
            "reset_request": self.reset_request_rate,
            "reset_response": self.reset_response_rate,
            "tear": self.tear_rate,
            "duplicate": self.duplicate_rate,
            "delay": self.delay_rate,
        }

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects no fault of any kind."""
        return (
            self.refuse_rate == 0.0
            and all(r == 0.0 for r in self.exchange_rates().values())
            and not self.script
            and not self.refuse_epochs
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.refuse_rate:
            parts.append(f"refuse={self.refuse_rate}")
        for kind, rate in self.exchange_rates().items():
            if rate:
                parts.append(f"{kind}={rate}")
        if self.delay_rate:
            parts.append(f"delay_ms={self.delay_ms}")
        if self.script:
            parts.append(f"script={len(self.script)}")
        if self.refuse_epochs:
            parts.append(f"refuse_epochs={sorted(self.refuse_epochs)}")
        return f"NetFaultPlan({', '.join(parts)})"


class NetFaultInjector:
    """A :class:`NetFaultPlan` bound to nothing — draws are pure hashes.

    >>> injector = NetFaultInjector(NetFaultPlan(script={(0, 0): "tear"}))
    >>> injector.exchange_fault("alpha", 0, epoch=0, exchange=0)
    'tear'
    >>> injector.exchange_fault("alpha", 0, epoch=1, exchange=0) is None
    True
    """

    def __init__(self, plan: NetFaultPlan):
        self.plan = plan

    @staticmethod
    def _endpoint_word(tenant: str, connection: int) -> int:
        # PYTHONHASHSEED randomises str hashes; crc32 keeps endpoint
        # identity deterministic across processes.
        return (
            zlib.crc32(tenant.encode("utf-8")) * _ENDPOINT_SALT
            ^ (connection + 1) * _EXCHANGE_SALT
        ) & _MASK

    def refuse_connection(
        self, tenant: str, connection: int, epoch: int
    ) -> bool:
        """Seeded Bernoulli draw: close this accepted connection at once?"""
        if epoch in self.plan.refuse_epochs:
            return True
        rate = self.plan.refuse_rate
        if rate == 0.0:
            return False
        word = (
            (self.plan.seed & _MASK)
            ^ self._endpoint_word(tenant, connection)
            ^ (epoch * _REFUSE_SALT)
        ) & _MASK
        return mix64(word) / float(1 << 64) < rate

    def exchange_fault(
        self, tenant: str, connection: int, epoch: int, exchange: int
    ) -> str | None:
        """The fault (if any) injected into one request/response exchange.

        One uniform draw hashed from ``(seed, endpoint, epoch,
        exchange)`` walks the cumulative rate bands of
        :data:`FAULT_KINDS`, so per-kind schedules stay stable when other
        kinds' rates change to zero or back.
        """
        scripted = self.plan.script.get((epoch, exchange))
        if scripted is not None:
            return scripted
        rates = self.plan.exchange_rates()
        if all(rate == 0.0 for rate in rates.values()):
            return None
        word = (
            (self.plan.seed & _MASK)
            ^ self._endpoint_word(tenant, connection)
            ^ (epoch * _EPOCH_SALT)
            ^ ((exchange + 1) * _EXCHANGE_SALT)
        ) & _MASK
        draw = mix64(word) / float(1 << 64)
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += rates[kind]
            if draw < cumulative:
                return kind
        return None
