"""Crash-restart supervision for the gateway under chaos.

:class:`RestartableGateway` owns what a process supervisor owns: the
tenant specs, the bound port, and — standing in for the disk — each
tenant's write-ahead-log bytes.  :meth:`crash` captures every started
tenant's WAL (optionally shearing the final frame in half, the residue a
power cut leaves) and then :meth:`Gateway.abort`-kills the process
stand-in; :meth:`restart` builds a brand-new :class:`Gateway` on the
*same* port whose tenants recover by replaying those captured bytes —
the :class:`~repro.gateway.tenant.Tenant` WAL path.

The crash boundary is deterministic by construction: the chaos harness
quiesces its clients at a barrier before calling :meth:`crash`, and the
relay in :mod:`repro.chaos.proxy` never leaves an exchange half-served,
so the captured WAL is a well-defined prefix of the run's writes rather
than whatever a racing thread happened to flush.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping

from repro.durability.wal import WalEntry, WriteAheadLog
from repro.errors import GatewayError
from repro.gateway.server import Gateway, GatewayConfig
from repro.gateway.tenant import Tenant, TenantSpec
from repro.obs import telemetry

__all__ = ["RestartableGateway"]


class RestartableGateway:
    """A gateway that can be killed and rebuilt on the same address.

    >>> supervisor = RestartableGateway([spec])      # doctest: +SKIP
    >>> host, port = supervisor.start()              # doctest: +SKIP
    >>> supervisor.crash(torn_tail=True)             # doctest: +SKIP
    >>> supervisor.restart()                         # doctest: +SKIP
    """

    def __init__(
        self,
        tenants: Iterable[TenantSpec] | Mapping[str, TenantSpec],
        config: GatewayConfig | None = None,
        service_defaults: Mapping | None = None,
    ):
        self.specs = (
            list(tenants.values())
            if isinstance(tenants, Mapping)
            else list(tenants)
        )
        self.config = config or GatewayConfig()
        self.service_defaults = dict(service_defaults or {})
        #: The surviving "disk": tenant name -> serialised WAL bytes.
        self._wal_bytes: dict[str, bytes] = {}
        self.gateway: Gateway | None = None
        self.crashes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Boot a fresh gateway; tenants recover from any captured WAL."""
        if self.gateway is not None:
            raise GatewayError("supervised gateway already running")
        gateway = Gateway(
            self.specs,
            config=self.config,
            service_defaults=self.service_defaults,
            tenant_factory=self._build_tenant,
        )
        address = gateway.start()
        # Pin the kernel-chosen port so every restart lands on the same
        # address and clients can reconnect blindly.
        if self.config.port == 0:
            self.config = dataclasses.replace(self.config, port=address[1])
        self.gateway = gateway
        return address

    def _build_tenant(self, spec: TenantSpec) -> Tenant:
        wal = WriteAheadLog.from_bytes(self._wal_bytes.get(spec.name, b""))
        return Tenant(spec, self.service_defaults, wal=wal)

    @property
    def address(self) -> tuple[str, int]:
        if self.gateway is None:
            raise GatewayError("supervised gateway not running")
        return self.gateway.address

    def crash(self, torn_tail: bool = False) -> None:
        """Capture each tenant's WAL "disk" state, then kill the gateway.

        With *torn_tail* the capture additionally appends the first half
        of a phantom insert frame to every non-empty log — the torn final
        frame recovery must shear off (:func:`repro.durability.wal.read_wal`
        treats exactly that residue as a crash artefact, not corruption).
        """
        gateway = self.gateway
        if gateway is None:
            raise GatewayError("supervised gateway not running")
        for name, tenant in gateway.tenants.items():
            wal = tenant.wal
            if wal is None:
                continue
            if tenant.started:
                # Snapshot under the file's mutation lock so no write is
                # mid-append while we copy the log.
                with tenant.service.file.read_locked():
                    captured = wal.to_bytes()
            else:
                captured = wal.to_bytes()
            if torn_tail and captured:
                phantom = WalEntry(
                    "insert", tuple(0 for _ in tenant.spec.fields)
                ).frame()
                captured += phantom[: max(1, len(phantom) // 2)]
            self._wal_bytes[name] = captured
        gateway.abort()
        self.gateway = None
        self.crashes += 1
        telemetry().metrics.add("chaos.crashes")

    def restart(self, eager_recover: bool = True) -> tuple[str, int]:
        """Boot the replacement gateway on the pinned address.

        With *eager_recover* every tenant namespace is materialised (and
        its WAL replayed) before the address is returned, so the first
        client request after restart pays no recovery latency and tests
        can assert on :attr:`Tenant.recovered` immediately.
        """
        address = self.start()
        if eager_recover:
            for tenant in self.gateway.tenants.values():
                tenant.service
        return address

    def stop(self) -> None:
        """Graceful final shutdown (drain, not abort)."""
        if self.gateway is not None:
            self.gateway.close()
            self.gateway = None

    def wal_entries(self, tenant: str):
        """The named tenant's *live* WAL entries (ground truth for verify)."""
        if self.gateway is not None and tenant in self.gateway.tenants:
            wal = self.gateway.tenants[tenant].wal
            if wal is not None:
                return wal.entries()
        return WriteAheadLog.from_bytes(
            self._wal_bytes.get(tenant, b"")
        ).entries()

    def __enter__(self) -> "RestartableGateway":
        if self.gateway is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
