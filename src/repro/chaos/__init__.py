"""Deterministic chaos engineering for the network tier.

Seeded wire faults (:mod:`repro.chaos.faults`), a fault-injecting
loopback proxy (:mod:`repro.chaos.proxy`), a crash-restart gateway
supervisor (:mod:`repro.chaos.supervisor`) and the invariant-proving
harness (:mod:`repro.chaos.harness`) that ties them together.
"""

from repro.chaos.faults import FAULT_KINDS, NetFaultInjector, NetFaultPlan
from repro.chaos.harness import ChaosReport, ChaosSpec, run_chaos_load
from repro.chaos.proxy import ChaosEndpoint
from repro.chaos.supervisor import RestartableGateway

__all__ = [
    "FAULT_KINDS",
    "NetFaultPlan",
    "NetFaultInjector",
    "ChaosEndpoint",
    "RestartableGateway",
    "ChaosSpec",
    "ChaosReport",
    "run_chaos_load",
]
