"""The chaos harness: drive faults, crash the gateway, prove invariants.

:func:`run_chaos_load` stands up the whole failure stack — a
:class:`~repro.chaos.supervisor.RestartableGateway`, one fault-injecting
:class:`~repro.chaos.proxy.ChaosEndpoint` per ``(tenant, connection)``,
and one :class:`~repro.gateway.resilient.ResilientGatewayClient` per
endpoint — runs a deterministic op log through it (the same per-connection
logs as :mod:`repro.gateway.loadtest`), optionally kills and restarts the
gateway mid-run, and returns a :class:`ChaosReport` whose
:meth:`~ChaosReport.verify` proves the invariants that make resilience
*correct* rather than merely lucky:

* **zero stale reads** — every tenant's query log serial-replays clean
  against the write-ahead log's version timeline
  (:meth:`~repro.service.loadgen.LoadReport.verify`);
* **no lost acknowledged write** — every ``(version, record)`` a client
  was acked is present in the WAL at exactly that version, crash or not;
* **no doubly applied write** — WAL idempotency keys are unique and no
  two acknowledged writes share a version;
* **bounded retry amplification** — total retries are capped by the
  faults actually injected times the retry budget.

The crash is phased with two barriers: every client finishes its
pre-crash ops and parks; the supervisor crash-captures the WAL "disks"
and restarts; only then do clients resume.  Combined with the strictly
synchronous relay (no exchange is ever half-served) this makes the
entire run — fault schedule, WAL contents, retry counts, ack sets —
deterministic per seed: :meth:`ChaosReport.canonical_digest` is
byte-identical across runs of the same spec.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.chaos.faults import NetFaultInjector, NetFaultPlan
from repro.chaos.proxy import ChaosEndpoint
from repro.chaos.supervisor import RestartableGateway
from repro.errors import CircuitOpenError, ConfigurationError
from repro.gateway.client import GatewayClient, GatewayRequestError
from repro.gateway.loadtest import GatewayLoadSpec, _connection_ops
from repro.gateway.resilient import (
    TRANSPORT_ERRORS,
    CircuitBreaker,
    ResilientGatewayClient,
)
from repro.gateway.server import GatewayConfig
from repro.gateway.tenant import TenantSpec
from repro.hashing.fields import FileSystem
from repro.hashing.multikey import MultiKeyHash
from repro.runtime.retry import RetryPolicy
from repro.service.loadgen import LoadReport, LoadSpec, RequestRecord

__all__ = ["ChaosSpec", "ChaosReport", "run_chaos_load"]


@dataclass(frozen=True)
class ChaosSpec:
    """Shape of one chaos run (per tenant)."""

    connections_per_tenant: int = 2
    requests_per_connection: int = 16
    seed: int = 0
    spec_probability: float = 0.5
    #: Every k-th op of a connection is an insert (0 = read-only — but
    #: then the exactly-once proof has nothing to chew on).
    write_every: int = 3
    hot_fraction: float = 0.0
    hot_pool: int = 4
    batch_every: int = 0
    batch_size: int = 4
    #: Records written per tenant (through the WAL) before chaos starts.
    preload: int = 4
    #: The wire-fault schedule; :meth:`NetFaultPlan.none` = clean run.
    faults: NetFaultPlan = field(default_factory=NetFaultPlan.none)
    #: Fraction of each connection's ops after which the gateway is
    #: crash-killed and restarted (``None`` = no crash).
    crash_at: float | None = 0.5
    #: Shear the final WAL frame in half at the crash (torn tail).
    torn_tail: bool = False
    #: Socket deadline of each client attempt.
    timeout_s: float = 10.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=6, base_delay_ms=2.0, max_delay_ms=25.0
        )
    )
    #: Consecutive transport failures before a client's breaker trips.
    #: The default is deliberately high: an open breaker heals on a
    #: wall-clock cooldown, which would break run determinism.
    breaker_threshold: int = 64
    breaker_cooldown_s: float = 1.0
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.connections_per_tenant < 1:
            raise ConfigurationError(
                "connections_per_tenant must be >= 1, got "
                f"{self.connections_per_tenant}"
            )
        if self.requests_per_connection < 1:
            raise ConfigurationError(
                "requests_per_connection must be >= 1, got "
                f"{self.requests_per_connection}"
            )
        if self.crash_at is not None and not 0.0 <= self.crash_at <= 1.0:
            raise ConfigurationError(
                f"crash_at {self.crash_at} outside [0, 1]"
            )
        if self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.preload < 0 or self.write_every < 0:
            raise ConfigurationError("preload/write_every must be >= 0")

    def load_spec(self) -> GatewayLoadSpec:
        """The op-log shape shared with the fault-free loopback load."""
        return GatewayLoadSpec(
            connections_per_tenant=self.connections_per_tenant,
            requests_per_connection=self.requests_per_connection,
            seed=self.seed,
            spec_probability=self.spec_probability,
            write_every=self.write_every,
            hot_fraction=self.hot_fraction,
            hot_pool=self.hot_pool,
            batch_every=self.batch_every,
            batch_size=self.batch_size,
            preload=0,
            deadline_ms=self.deadline_ms,
        )


@dataclass
class ChaosReport:
    """Everything one chaos run produced, plus the invariant checks."""

    spec: ChaosSpec
    wall_s: float
    crashes: int
    #: One serial-replay-verifiable report per tenant; its ``writes``
    #: timeline is the WAL ground truth, not the clients' view.
    per_tenant: dict[str, LoadReport] = field(default_factory=dict)
    #: Client-acknowledged ``(version, record)`` writes per tenant
    #: (preload included) — what "no lost acknowledged write" checks.
    acked: dict[str, list[tuple[int, tuple]]] = field(default_factory=dict)
    #: Idempotency keys found in each tenant's WAL, in log order.
    wal_idem: dict[str, list[str]] = field(default_factory=dict)
    #: ``"tenant#connection"`` -> ``[(kind, status, attempts), ...]``.
    outcomes: dict[str, list[tuple[str, str, int]]] = field(
        default_factory=dict
    )
    #: ``"tenant#connection"`` -> fault kind -> times injected.
    faults: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Per-tenant recovery summaries after the restart (``None`` entries
    #: mean that tenant had nothing to recover).
    recovered: dict[str, dict | None] = field(default_factory=dict)
    total_retries: int = 0
    total_reconnects: int = 0
    total_deduped: int = 0
    #: Unexpected client exceptions (must stay empty).
    errors: list[str] = field(default_factory=list)
    _hashes: dict[str, MultiKeyHash] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Outcome accounting
    # ------------------------------------------------------------------
    @property
    def total_ops(self) -> int:
        return sum(len(ops) for ops in self.outcomes.values())

    @property
    def ok_ops(self) -> int:
        return sum(
            1
            for ops in self.outcomes.values()
            for __, status, __ in ops
            if status == "ok"
        )

    @property
    def availability(self) -> float:
        """Fraction of chaos-phase ops that ultimately succeeded."""
        total = self.total_ops
        return 1.0 if total == 0 else self.ok_ops / total

    @property
    def faults_injected(self) -> int:
        return sum(
            sum(counts.values()) for counts in self.faults.values()
        )

    # ------------------------------------------------------------------
    # The invariants
    # ------------------------------------------------------------------
    def verify(self) -> list[str]:
        """Every violated invariant, as a human-readable message.

        An empty list is the chaos acceptance criterion.
        """
        violations = list(self.errors)
        for name, report in sorted(self.per_tenant.items()):
            timeline = {version: record for version, record in report.writes}
            seen_versions: dict[int, tuple] = {}
            for version, record in self.acked.get(name, []):
                applied = timeline.get(version)
                if applied is None:
                    violations.append(
                        f"{name}: LOST acknowledged write v{version} "
                        f"{record} — not in the WAL"
                    )
                elif tuple(applied) != tuple(record):
                    violations.append(
                        f"{name}: acknowledged write v{version} {record} "
                        f"!= WAL record {applied}"
                    )
                earlier = seen_versions.get(version)
                if earlier is not None and tuple(earlier) != tuple(record):
                    violations.append(
                        f"{name}: version {version} acknowledged for two "
                        f"different writes: {earlier} and {record}"
                    )
                seen_versions[version] = tuple(record)
            keys = self.wal_idem.get(name, [])
            if len(keys) != len(set(keys)):
                dupes = sorted(
                    key for key in set(keys) if keys.count(key) > 1
                )
                violations.append(
                    f"{name}: DOUBLY APPLIED writes — idempotency keys "
                    f"{dupes} appear more than once in the WAL"
                )
            violations.extend(
                f"{name}: {message}"
                for message in report.verify(
                    self._hashes[name], initial_records=[]
                )
            )
        # Retry amplification: every retry must be attributable to an
        # injected fault or a crash-severed connection, each of which can
        # burn at most the per-call retry budget.
        disruptions = self.faults_injected + self.crashes * len(self.outcomes)
        ceiling = disruptions * self.spec.retry.max_attempts
        if self.total_retries > ceiling:
            violations.append(
                f"retry amplification: {self.total_retries} retries > "
                f"{ceiling} ({disruptions} disruptions x "
                f"{self.spec.retry.max_attempts} attempts)"
            )
        return violations

    # ------------------------------------------------------------------
    # Canonical (seed-deterministic) view
    # ------------------------------------------------------------------
    def canonical_dict(self) -> dict:
        """The run stripped to what determinism guarantees.

        Wall-clock, latencies, write-version assignments and WAL order
        all depend on thread interleaving; what a seed pins down is the
        fault schedule, each endpoint's op outcomes, the retry totals and
        the *multisets* of applied and acknowledged records — so those
        are what the canonical view (and its digest) contains.
        """
        from repro.envelope import versioned

        return versioned(
            {
                "seed": self.spec.seed,
                "faults": self.spec.faults.describe(),
                "crash_at": self.spec.crash_at,
                "torn_tail": self.spec.torn_tail,
                "crashes": self.crashes,
                "endpoints": {
                    key: {
                        "outcomes": [list(entry) for entry in ops],
                        "faults": dict(sorted(self.faults.get(key, {}).items())),
                    }
                    for key, ops in sorted(self.outcomes.items())
                },
                "tenants": {
                    name: {
                        "wal_entries": len(report.writes),
                        "acked_writes": len(self.acked.get(name, [])),
                        "wal_digest": _records_digest(
                            record for __, record in report.writes
                        ),
                        "acked_digest": _records_digest(
                            record
                            for __, record in self.acked.get(name, [])
                        ),
                        "idem_keys": sorted(self.wal_idem.get(name, [])),
                    }
                    for name, report in sorted(self.per_tenant.items())
                },
                "totals": {
                    "ops": self.total_ops,
                    "ok": self.ok_ops,
                    "retries": self.total_retries,
                    "reconnects": self.total_reconnects,
                    "deduped": self.total_deduped,
                    "faults_injected": self.faults_injected,
                },
            }
        )

    def canonical_digest(self) -> str:
        """SHA-256 over the canonical view — identical for identical seeds."""
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        from repro.envelope import versioned

        violations = self.verify()
        return versioned(
            {
                "wall_s": round(self.wall_s, 6),
                "availability": round(self.availability, 6),
                "ops": self.total_ops,
                "ok": self.ok_ops,
                "crashes": self.crashes,
                "faults_injected": self.faults_injected,
                "retries": self.total_retries,
                "reconnects": self.total_reconnects,
                "deduped": self.total_deduped,
                "tenants": {
                    name: report.to_dict()
                    for name, report in sorted(self.per_tenant.items())
                },
                "recovered": {
                    name: info
                    for name, info in sorted(self.recovered.items())
                },
                "violations": violations,
                "canonical_digest": self.canonical_digest(),
            }
        )


def _records_digest(records) -> str:
    """Order-independent SHA-256 over a multiset of records."""
    payload = json.dumps(
        sorted(list(record) for record in records),
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_chaos_load(
    tenants: Sequence[TenantSpec],
    spec: ChaosSpec | None = None,
    service_defaults: Mapping | None = None,
) -> ChaosReport:
    """One full chaos run: faults in, invariants out.

    *tenants* accepts :class:`TenantSpec` entries or live tenants.  The
    gateway (WAL-durable, supervised), the per-endpoint fault proxies and
    the resilient clients are all built and torn down inside the call.
    """
    spec = spec or ChaosSpec()
    specs = [getattr(tenant, "spec", tenant) for tenant in tenants]
    supervisor = RestartableGateway(
        specs,
        config=GatewayConfig(
            max_connections=4 * len(specs) * spec.connections_per_tenant + 8
        ),
        service_defaults=service_defaults,
    )
    host, port = supervisor.start()

    hashes: dict[str, MultiKeyHash] = {}
    acked: dict[str, list[tuple[int, tuple]]] = {
        tenant.name: [] for tenant in specs
    }
    errors: list[str] = []
    errors_lock = threading.Lock()

    # Preload through the real gateway (no proxy): these writes ride the
    # WAL like any other, so the verify timeline starts at version 1.
    for tenant in specs:
        fs = FileSystem.of(*tenant.fields, m=tenant.devices)
        hashes[tenant.name] = MultiKeyHash.default(fs)
        if spec.preload:
            rng = random.Random(f"chaos-preload:{spec.seed}:{tenant.name}")
            trace_seed = zlib.crc32(
                f"chaos-preload-trace:{spec.seed}:{tenant.name}".encode()
            )
            with GatewayClient(
                host, port, tenant=tenant.name, trace_seed=trace_seed
            ) as client:
                for n in range(spec.preload):
                    record = tuple(
                        rng.randrange(4096) for __ in range(fs.n_fields)
                    )
                    __, version = client.insert(
                        record, idem=f"preload:{spec.seed}:{tenant.name}:{n}"
                    )
                    acked[tenant.name].append((version, record))

    injector = NetFaultInjector(spec.faults)
    endpoints: dict[tuple[str, int], ChaosEndpoint] = {}
    for tenant in specs:
        for connection in range(spec.connections_per_tenant):
            endpoint = ChaosEndpoint(
                (host, port), injector, tenant.name, connection
            )
            endpoint.start()
            endpoints[(tenant.name, connection)] = endpoint

    load_spec = spec.load_spec()
    outcomes: dict[str, list[tuple[str, str, int]]] = {}
    per_endpoint_requests: dict[str, list[RequestRecord]] = {}
    totals_lock = threading.Lock()
    totals = {"retries": 0, "reconnects": 0, "deduped": 0}
    n_endpoints = len(endpoints)
    barrier_pre = threading.Barrier(n_endpoints + 1)
    barrier_post = threading.Barrier(n_endpoints + 1)

    def endpoint_loop(tenant: TenantSpec, connection: int) -> None:
        key = f"{tenant.name}#{connection}"
        fs = FileSystem.of(*tenant.fields, m=tenant.devices)
        ops = _connection_ops(fs, tenant.name, connection, load_spec)
        crash_index = (
            len(ops)
            if spec.crash_at is None
            else int(len(ops) * spec.crash_at)
        )
        proxy_host, proxy_port = endpoints[(tenant.name, connection)].address
        client = ResilientGatewayClient(
            proxy_host,
            proxy_port,
            tenant=tenant.name,
            fields=tenant.fields,
            devices=tenant.devices,
            retry=spec.retry,
            timeout_s=spec.timeout_s,
            breaker=CircuitBreaker(
                failure_threshold=spec.breaker_threshold,
                cooldown_s=spec.breaker_cooldown_s,
            ),
            trace_seed=zlib.crc32(
                f"chaos-trace:{spec.seed}:{tenant.name}:{connection}".encode()
            ),
            idem_prefix=f"{spec.seed}:{tenant.name}:{connection}",
        )
        log: list[tuple[str, str, int]] = []
        requests: list[RequestRecord] = []
        writes: list[tuple[int, tuple]] = []

        def run_op(index: int, kind: str, payload) -> None:
            try:
                if kind == "insert":
                    __, version = client.insert(payload)
                    writes.append((version, payload))
                    log.append((kind, "ok", client.last_attempts))
                elif kind == "batch":
                    started = time.perf_counter()
                    results = client.batch(
                        payload, deadline_ms=spec.deadline_ms
                    )
                    latency_ms = (time.perf_counter() - started) * 1000.0
                    for result in results:
                        requests.append(
                            RequestRecord(
                                connection, index, result.query, result,
                                latency_ms,
                            )
                        )
                    log.append((kind, "ok", client.last_attempts))
                else:
                    started = time.perf_counter()
                    result = client.query(
                        payload, deadline_ms=spec.deadline_ms
                    )
                    latency_ms = (time.perf_counter() - started) * 1000.0
                    requests.append(
                        RequestRecord(
                            connection, index, result.query, result,
                            latency_ms,
                        )
                    )
                    log.append((kind, result.status, client.last_attempts))
            except CircuitOpenError:
                log.append((kind, "breaker_open", 0))
            except GatewayRequestError as error:
                log.append((kind, f"rejected:{error.code}", 1))
            except TRANSPORT_ERRORS as error:
                log.append(
                    (
                        kind,
                        f"failed:{type(error).__name__}",
                        spec.retry.max_attempts,
                    )
                )

        try:
            for index, (kind, payload) in enumerate(ops[:crash_index]):
                run_op(index, kind, payload)
            barrier_pre.wait()
            barrier_post.wait()
            for index, (kind, payload) in enumerate(
                ops[crash_index:], start=crash_index
            ):
                run_op(index, kind, payload)
        except BaseException as error:  # invariant: zero unexpected errors
            with errors_lock:
                errors.append(f"{key}: {error!r}")
        finally:
            client.close()
        with totals_lock:
            outcomes[key] = log
            per_endpoint_requests[key] = requests
            acked[tenant.name].extend(writes)
            totals["retries"] += client.retries
            totals["reconnects"] += client.reconnects
            totals["deduped"] += client.deduped

    threads = [
        threading.Thread(
            target=endpoint_loop,
            args=(tenant, connection),
            name=f"chaos-client-{tenant.name}-{connection}",
        )
        for tenant in specs
        for connection in range(spec.connections_per_tenant)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    barrier_pre.wait()
    if spec.crash_at is not None:
        supervisor.crash(torn_tail=spec.torn_tail)
        supervisor.restart()
    barrier_post.wait()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started

    # The WAL is the ground truth the invariants replay against: entry k
    # describes write version k+1 (appends happen under the file's
    # mutation lock, so log order equals version order).
    per_tenant: dict[str, LoadReport] = {}
    wal_idem: dict[str, list[str]] = {}
    recovered: dict[str, dict | None] = {}
    for tenant in specs:
        entries = supervisor.wal_entries(tenant.name)
        report = LoadReport(
            spec=LoadSpec(
                clients=spec.connections_per_tenant,
                requests_per_client=spec.requests_per_connection,
                seed=spec.seed,
                spec_probability=spec.spec_probability,
                write_every=spec.write_every,
                hot_fraction=spec.hot_fraction,
                hot_pool=spec.hot_pool,
                deadline_ms=spec.deadline_ms,
            ),
            wall_s=wall_s,
            writes=[
                (index + 1, tuple(entry.record))
                for index, entry in enumerate(entries)
                if entry.op == "insert"
            ],
        )
        per_tenant[tenant.name] = report
        wal_idem[tenant.name] = [
            str((entry.meta or {}).get("idem"))
            for entry in entries
            if entry.op == "insert" and (entry.meta or {}).get("idem")
        ]
        live = (
            supervisor.gateway.tenants.get(tenant.name)
            if supervisor.gateway is not None
            else None
        )
        recovered[tenant.name] = live.recovered if live is not None else None
    for key, requests in per_endpoint_requests.items():
        name = key.split("#", 1)[0]
        per_tenant[name].requests.extend(requests)

    faults = {
        f"{name}#{connection}": dict(endpoint.faults)
        for (name, connection), endpoint in endpoints.items()
    }
    for endpoint in endpoints.values():
        endpoint.stop()
    supervisor.stop()

    return ChaosReport(
        spec=spec,
        wall_s=wall_s,
        crashes=supervisor.crashes,
        per_tenant=per_tenant,
        acked=acked,
        wal_idem=wal_idem,
        outcomes=outcomes,
        faults=faults,
        recovered=recovered,
        total_retries=totals["retries"],
        total_reconnects=totals["reconnects"],
        total_deduped=totals["deduped"],
        errors=errors,
        _hashes=hashes,
    )
