"""A fault-injecting TCP proxy in front of the gateway.

One :class:`ChaosEndpoint` is one listening socket proxying **one client
identity** — a ``(tenant, connection)`` pair — to the real gateway.
Giving every client its own endpoint is what keeps chaos runs
deterministic: fault draws key on the endpoint's fixed identity plus its
local reconnect epoch and exchange counters, never on the order in which
the OS happens to schedule unrelated connections.

The relay is strictly exchange-oriented, mirroring the closed-loop
protocol clients (one outstanding frame per connection): read one
request frame from the client, draw the fault for this ``(endpoint,
epoch, exchange)``, forward, read the one response frame from the
backend, deliver it — torn, delayed, duplicated, swallowed or intact.
Because the relay always reads the backend's response before moving on,
server-side work for an exchange is *complete* before the next exchange
begins; a crash between exchanges therefore captures a well-defined
write-ahead-log prefix, with no request half-way through the stack.

Faults that abandon a connection (``reset_*``, ``duplicate``) close both
sides and let the client's resilience machinery reconnect — which
advances the endpoint's epoch and lands the retry on a fresh relay.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.chaos.faults import NetFaultInjector
from repro.errors import GatewayError
from repro.gateway.protocol import HEADER
from repro.obs import telemetry

__all__ = ["ChaosEndpoint"]

#: How often the accept loop wakes to check the stop flag.
_POLL_S = 0.1
#: Pause between the chunks of a torn response (long enough that the
#: client's decoder really sees separate reads, short enough to never
#: approach a sane client timeout).
_TEAR_PAUSE_S = 0.002


class ChaosEndpoint:
    """One fault-injecting listener for one ``(tenant, connection)`` pair.

    >>> endpoint = ChaosEndpoint(("127.0.0.1", 9999), injector,
    ...                          tenant="alpha", connection=0)  # doctest: +SKIP
    >>> host, port = endpoint.start()                           # doctest: +SKIP
    """

    def __init__(
        self,
        backend: tuple[str, int],
        injector: NetFaultInjector,
        tenant: str,
        connection: int,
        host: str = "127.0.0.1",
        io_timeout_s: float = 30.0,
    ):
        self.backend = backend
        self.injector = injector
        self.tenant = tenant
        self.connection = connection
        self.host = host
        self.io_timeout_s = io_timeout_s
        #: Fault kind -> times injected on this endpoint.
        self.faults: dict[str, int] = {}
        self._faults_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._accept_thread: threading.Thread | None = None
        self._relays: set[threading.Thread] = set()
        self._open: set[socket.socket] = set()
        self._state_lock = threading.Lock()
        self._stopping = threading.Event()
        self._epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, listen, launch the accept loop; returns ``(host, port)``."""
        if self._listener is not None:
            raise GatewayError("chaos endpoint already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(8)
        listener.settimeout(_POLL_S)
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"chaos-{self.tenant}-{self.connection}",
            daemon=True,
        )
        self._accept_thread.start()
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise GatewayError("chaos endpoint not started")
        return self._address

    def stop(self) -> None:
        """Close the listener and every relayed connection."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        with self._state_lock:
            pending = list(self._open)
            relays = list(self._relays)
        for sock in pending:
            _close_quietly(sock)
        for relay in relays:
            relay.join(timeout=2.0)

    def __enter__(self) -> "ChaosEndpoint":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accept loop
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, __ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            epoch = self._epoch
            self._epoch += 1
            if self.injector.refuse_connection(
                self.tenant, self.connection, epoch
            ):
                self._count("refuse")
                _close_quietly(conn)
                continue
            relay = threading.Thread(
                target=self._relay,
                args=(conn, epoch),
                name=f"chaos-relay-{self.tenant}-{self.connection}-{epoch}",
                daemon=True,
            )
            with self._state_lock:
                self._open.add(conn)
                self._relays.add(relay)
            relay.start()

    # ------------------------------------------------------------------
    # The relay
    # ------------------------------------------------------------------
    def _relay(self, client: socket.socket, epoch: int) -> None:
        client.settimeout(self.io_timeout_s)
        try:
            backend = socket.create_connection(
                self.backend, timeout=self.io_timeout_s
            )
        except OSError:
            self._finish(client, None)
            return
        backend.settimeout(self.io_timeout_s)
        with self._state_lock:
            self._open.add(backend)
        exchange = 0
        try:
            while not self._stopping.is_set():
                request = _read_frame(client)
                if request is None:
                    return
                fault = self.injector.exchange_fault(
                    self.tenant, self.connection, epoch, exchange
                )
                if fault == "reset_request":
                    self._count(fault)
                    return
                try:
                    backend.sendall(request)
                except OSError:
                    return
                response = _read_frame(backend)
                if response is None:
                    return
                if fault == "reset_response":
                    self._count(fault)
                    return
                try:
                    if fault == "duplicate":
                        # Deliver twice, then abandon the connection: the
                        # stray copy forces the client to observe an id
                        # mismatch and resync on a fresh connection.
                        self._count(fault)
                        client.sendall(response + response)
                        return
                    if fault == "tear":
                        self._count(fault)
                        for chunk in _chunks(
                            response, self.injector.plan.tear_chunks
                        ):
                            client.sendall(chunk)
                            time.sleep(_TEAR_PAUSE_S)
                    elif fault == "delay":
                        self._count(fault)
                        time.sleep(self.injector.plan.delay_ms / 1000.0)
                        client.sendall(response)
                    else:
                        client.sendall(response)
                except OSError:
                    return
                exchange += 1
        finally:
            self._finish(client, backend)

    def _finish(
        self, client: socket.socket, backend: socket.socket | None
    ) -> None:
        with self._state_lock:
            self._open.discard(client)
            if backend is not None:
                self._open.discard(backend)
            self._relays.discard(threading.current_thread())
        _close_quietly(client)
        if backend is not None:
            _close_quietly(backend)

    def _count(self, kind: str) -> None:
        with self._faults_lock:
            self.faults[kind] = self.faults.get(kind, 0) + 1
        telemetry().metrics.add(
            "chaos.faults", labels={"kind": kind, "tenant": self.tenant}
        )


def _read_frame(sock: socket.socket) -> bytes | None:
    """One complete wire frame (header + body), or ``None`` on EOF/error."""
    try:
        header = _read_exact(sock, HEADER.size)
        if header is None:
            return None
        (length,) = HEADER.unpack(header)
        body = _read_exact(sock, length)
        if body is None:
            return None
        return header + body
    except (OSError, ValueError):
        return None


def _read_exact(sock: socket.socket, n: int) -> bytes | None:
    buffer = bytearray()
    while len(buffer) < n:
        chunk = sock.recv(n - len(buffer))
        if not chunk:
            return None
        buffer += chunk
    return bytes(buffer)


def _chunks(data: bytes, n: int) -> list[bytes]:
    """Split *data* into *n* non-empty chunks (fewer for tiny frames)."""
    size = max(1, len(data) // n)
    pieces = [data[i : i + size] for i in range(0, len(data), size)]
    return [piece for piece in pieces if piece]


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
