"""Blocking client for the gateway wire protocol.

One :class:`GatewayClient` is one TCP connection bound to one tenant.
It is deliberately minimal — the loopback load test, the benchmarks, the
CLI and external callers all speak through it, so it exercises exactly
the protocol a third-party client would implement.

>>> client = GatewayClient(host, port, tenant="alpha")   # doctest: +SKIP
>>> client.insert((1, 2))                                # doctest: +SKIP
>>> client.query({0: 1}).records                         # doctest: +SKIP
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
from collections.abc import Mapping, Sequence

from repro.errors import (
    ConnectionLostError,
    GatewayError,
    GatewayTimeoutError,
    ProtocolError,
)
from repro.gateway import protocol
from repro.hashing.fields import FileSystem
from repro.query.partial_match import PartialMatchQuery
from repro.service.frontend import ServiceResult
from repro.util.numbers import mix64

__all__ = ["GatewayClient", "GatewayRequestError"]

#: Salt separating client-allocated trace ids from the tracer's stream.
_CLIENT_TRACE_SALT = 0xD1B54A32D192ED03


class GatewayRequestError(GatewayError):
    """The gateway answered with a coded error response."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(f"[{code}] {message}")


class GatewayClient:
    """One connection to the gateway, bound to one tenant namespace.

    *fields*/*devices* describe the tenant's file system so responses can
    be rebuilt into full :class:`ServiceResult` objects client-side; pass
    them whenever you want :meth:`query` / :meth:`batch` to return typed
    results (raw payload dicts come back otherwise).

    Every request is stamped with **trace context**: when the caller is
    inside a live span (or activated context), that position propagates;
    otherwise the client allocates a fresh 64-bit trace id per request
    from a seeded splitmix64 stream (*trace_seed*; defaults to a random
    per-client seed — pass an explicit seed for deterministic wire
    traces, as the loopback load test does).
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str | None = None,
        fields: Sequence[int] | None = None,
        devices: int | None = None,
        timeout_s: float = 30.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        trace_seed: int | None = None,
    ):
        self.tenant = tenant
        self.max_frame_bytes = max_frame_bytes
        self.filesystem = (
            FileSystem.of(*fields, m=devices)
            if fields is not None and devices is not None
            else None
        )
        self.trace_seed = (
            trace_seed
            if trace_seed is not None
            else int.from_bytes(os.urandom(8), "big")
        )
        self.timeout_s = timeout_s
        self._ids = itertools.count(1)
        self._traces = itertools.count(1)
        self._lock = threading.Lock()
        # The timeout sticks to the socket, so *every* later send/recv is
        # bounded — an unresponsive server surfaces as a typed
        # GatewayTimeoutError instead of an indefinite hang.
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout_s
            )
        except socket.timeout as error:
            raise GatewayTimeoutError(
                f"connect to {host}:{port} timed out after {timeout_s}s"
            ) from error
        except OSError as error:
            raise ConnectionLostError(
                f"connect to {host}:{port} failed: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Raw request/response
    # ------------------------------------------------------------------
    def call(self, payload: dict) -> dict:
        """Send one request payload; return the matched ``result`` object.

        Raises :class:`GatewayRequestError` on a coded error response,
        :class:`~repro.errors.ProtocolError` on a broken stream,
        :class:`~repro.errors.GatewayTimeoutError` when the socket
        deadline expires mid-operation, and
        :class:`~repro.errors.ConnectionLostError` when the transport
        drops — never a raw :mod:`socket` error.
        """
        try:
            with self._lock:
                self._sock.sendall(protocol.encode_frame(payload))
                response = protocol.recv_frame(self._sock, self.max_frame_bytes)
        except socket.timeout as error:
            raise GatewayTimeoutError(
                f"gateway did not answer within {self.timeout_s}s"
            ) from error
        except OSError as error:
            raise ConnectionLostError(
                f"connection to gateway lost: {error}"
            ) from error
        if response is None:
            raise ProtocolError("gateway closed the connection")
        data = protocol.check_version(response, where="response")
        if data.get("id") not in (None, payload.get("id")):
            raise ProtocolError(
                f"response id {data.get('id')!r} does not match request "
                f"id {payload.get('id')!r}"
            )
        if not data.get("ok"):
            error = data.get("error") or {}
            raise GatewayRequestError(
                str(error.get("code", "internal")),
                str(error.get("message", "")),
            )
        result = data.get("result")
        if not isinstance(result, dict):
            raise ProtocolError(f"response carries no result: {data!r}")
        return result

    def _request(self, op: str, **body) -> dict:
        return self.call(
            protocol.request(
                op,
                request_id=next(self._ids),
                tenant=self.tenant,
                **self._trace_context(),
                **body,
            )
        )

    def _trace_context(self) -> dict:
        """The trace fields to stamp into the next request.

        A live span (or activated remote context) in the calling thread
        wins — its position crosses the wire so the server's
        ``gateway.request`` continues the caller's trace.  Otherwise the
        request roots a fresh trace under a client-allocated id.
        """
        from repro.obs import telemetry

        context = telemetry().tracer.current_context()
        if context is not None:
            return protocol.trace_fields(context.trace_id, context.span_id)
        nth = next(self._traces)
        return protocol.trace_fields(
            mix64(self.trace_seed ^ (nth * _CLIENT_TRACE_SALT))
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._request("ping").get("pong"))

    def health(self) -> dict:
        """Readiness/drain snapshot: ``{"ready": ..., "draining": ...}``
        plus per-tenant started/write_version state."""
        return self._request("health")

    def stats(self) -> dict:
        return self._request("stats")

    def obs(self) -> dict:
        """Live observability snapshot: labeled metrics + per-tenant SLO."""
        return self._request("obs")

    def insert(
        self, record: Sequence[object], idem: str | None = None
    ) -> tuple[tuple, int]:
        """Insert one record; returns ``(bucket, write_version)``.

        *idem* stamps a client-chosen idempotency key onto the write: the
        gateway dedupes retries of the same key within its per-tenant
        window and re-acknowledges the original ``(bucket, version)``
        instead of applying the record twice.
        """
        body: dict = {"record": list(record)}
        if idem is not None:
            body["idem"] = idem
        result = self._request("insert", **body)
        return tuple(result["bucket"]), int(result["write_version"])

    def query(
        self,
        specified: Mapping[int, int],
        deadline_ms: float | None = None,
    ) -> ServiceResult | dict:
        """Execute one partial match query over the wire.

        *specified* maps field index to **hashed bucket coordinate**
        (the :meth:`PartialMatchQuery.from_dict` space, shared verbatim
        with the server); hash raw attribute values first, e.g. with
        ``MultiKeyHash.default(filesystem).partial_bucket(...)``.
        """
        body: dict = {
            "specified": {str(k): v for k, v in specified.items()}
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        payload = self._request("query", **body)
        return self._typed(specified, payload)

    def batch(
        self,
        queries: Sequence[Mapping[int, int]],
        deadline_ms: float | None = None,
    ) -> list[ServiceResult] | list[dict]:
        """Execute many queries in one frame (one engine micro-batch)."""
        body: dict = {
            "queries": [
                {"specified": {str(k): v for k, v in specified.items()}}
                for specified in queries
            ]
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        results = self._request("batch", **body).get("results", [])
        return [
            self._typed(specified, payload)
            for specified, payload in zip(queries, results)
        ]

    def _typed(self, specified: Mapping[int, int], payload: dict):
        if self.filesystem is None:
            return payload
        query = PartialMatchQuery.from_dict(self.filesystem, dict(specified))
        return protocol.result_from_payload(query, payload)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
