"""The multi-tenant TCP gateway: accept loop, workers, drain.

:class:`Gateway` puts a real socket front end on the serving tier.  The
shape is a threaded accept loop — one worker thread per connection, with
a bounded connection count — because the tier underneath
(:class:`~repro.service.frontend.QueryService`) is itself thread-based;
the worker consumes **only the futures surface** (``submit`` /
``submit_many`` / ``submit_insert``), so a single connection pipelining a
``batch`` frame rides the engine micro-batching path unchanged.

Lifecycle:

* :meth:`Gateway.start` binds (``port=0`` picks a free loopback port) and
  returns the bound address,
* connections beyond ``max_connections`` receive a coded ``busy`` error
  frame and are closed — explicit backpressure, never an unbounded
  accept queue,
* :meth:`Gateway.drain` stops accepting, lets every worker finish the
  requests it has already read off the wire (in-flight coalesced leaders
  included — handling is synchronous in the worker, so a leader always
  resolves its flight before the socket closes), then closes sockets and
  retires the per-tenant service pools.

Observability: every request runs under a ``gateway.request`` span that
*resumes the caller's trace* when the frame carries trace context (the
span parents under the client's ``trace``/``parent_span`` and is marked
``remote``), so one request tree crosses the wire.  Outcomes and
latencies land in the ``gateway.*`` metric family with per-tenant labels
— ``gateway.ok{tenant=...}`` / ``gateway.shed{tenant=...}`` counters and
``gateway.latency_ms{tenant=...}`` histograms, each also rolled up into
the bare base series.  The ``{"op": "obs"}`` wire operation serves a
live snapshot of that registry plus the per-tenant SLO report
(:mod:`repro.obs.slo`).
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    FrameTooLargeError,
    GatewayError,
    ProtocolError,
    ReproError,
)
from repro.gateway import protocol
from repro.gateway.tenant import ACCEPTED, Tenant, TenantSpec
from repro.obs import TraceContext, telemetry, trace_span
from repro.obs.slo import SloMonitor, SloPolicy

__all__ = ["GatewayConfig", "Gateway"]

#: How often blocked socket reads wake up to check the drain flag.
_POLL_S = 0.1


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs of one gateway front end."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Concurrent connections served; the next one is told ``busy``.
    max_connections: int = 32
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES
    accept_backlog: int = 64
    #: Upper bound :meth:`Gateway.drain` waits for workers to finish.
    drain_timeout_s: float = 10.0
    #: Ship full record tuples in query responses (the remote staleness
    #: verification needs them; metering-only deployments can turn it off).
    include_records: bool = True

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.max_frame_bytes < 1:
            raise ConfigurationError(
                f"max_frame_bytes must be >= 1, got {self.max_frame_bytes}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )


class Gateway:
    """Threaded multi-tenant TCP server over per-tenant query services.

    *tenants* is any iterable of :class:`TenantSpec` (or a mapping of
    name to spec); *service_defaults* are gateway-wide
    :func:`repro.api.make_service` options each spec's own ``service``
    mapping overrides.
    """

    def __init__(
        self,
        tenants: Iterable[TenantSpec] | Mapping[str, TenantSpec],
        config: GatewayConfig | None = None,
        service_defaults: Mapping | None = None,
        slo_policy: SloPolicy | None = None,
        tenant_factory=None,
    ):
        specs = (
            list(tenants.values())
            if isinstance(tenants, Mapping)
            else list(tenants)
        )
        if not specs:
            raise ConfigurationError("a gateway needs at least one tenant")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")
        self.config = config or GatewayConfig()
        # tenant_factory lets a supervisor hand each namespace a durable
        # WAL (see repro.chaos.supervisor.RestartableGateway); the default
        # builds plain in-memory tenants.
        if tenant_factory is None:
            tenant_factory = lambda spec: Tenant(spec, service_defaults)  # noqa: E731
        self.tenants: dict[str, Tenant] = {
            spec.name: tenant_factory(spec) for spec in specs
        }
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._accept_thread: threading.Thread | None = None
        self._workers: set[threading.Thread] = set()
        self._conns: set[socket.socket] = set()
        self._state_lock = threading.Lock()
        self._draining = threading.Event()
        self._closed = threading.Event()
        #: Evaluates per-tenant error budgets for the ``obs`` wire op.
        self.slo = SloMonitor(policy=slo_policy)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind, listen and launch the accept loop; returns ``(host, port)``."""
        if self._listener is not None:
            raise GatewayError("gateway already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(self.config.accept_backlog)
        listener.settimeout(_POLL_S)
        self._listener = listener
        self._address = listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gateway-accept", daemon=True
        )
        self._accept_thread.start()
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise GatewayError("gateway not started")
        return self._address

    @property
    def active_connections(self) -> int:
        with self._state_lock:
            return len(self._conns)

    def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight work, close.

        Every request a worker has already decoded is answered before its
        socket closes; coalesced leaders resolve their flights (handling
        is synchronous), so followers on other connections are never
        stranded.  Returns ``True`` when every worker finished inside the
        timeout; on ``False`` the stragglers' sockets are force-closed.
        """
        timeout_s = (
            self.config.drain_timeout_s if timeout_s is None else timeout_s
        )
        self._draining.set()
        deadline = time.perf_counter() + timeout_s
        if self._listener is not None:
            accept_thread = self._accept_thread
            if accept_thread is not None:
                accept_thread.join(timeout=max(0.1, timeout_s))
            try:
                self._listener.close()
            except OSError:
                pass
        clean = True
        with self._state_lock:
            workers = list(self._workers)
        for worker in workers:
            remaining = deadline - time.perf_counter()
            worker.join(timeout=max(0.0, remaining))
            if worker.is_alive():
                clean = False
        if not clean:
            with self._state_lock:
                stragglers = list(self._conns)
            for conn in stragglers:
                _close_quietly(conn)
            for worker in workers:
                worker.join(timeout=1.0)
        for tenant in self.tenants.values():
            tenant.shutdown()
        self._closed.set()
        telemetry().metrics.add("gateway.drains")
        return clean

    def close(self) -> None:
        """Drain with the configured timeout (idempotent)."""
        if not self._closed.is_set():
            self.drain()

    def abort(self) -> None:
        """Crash-stop: kill the listener and every connection *now*.

        No drain, no in-flight courtesy, no graceful service retirement —
        this is the supervisor's stand-in for ``kill -9``.  Anything not
        yet acknowledged is simply gone; recovery happens by rebuilding
        tenants from their write-ahead logs
        (:class:`repro.chaos.supervisor.RestartableGateway`).
        """
        if self._closed.is_set():
            return
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        accept_thread = self._accept_thread
        if accept_thread is not None:
            accept_thread.join(timeout=1.0)
        with self._state_lock:
            conns = list(self._conns)
            workers = list(self._workers)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            _close_quietly(conn)
        for worker in workers:
            worker.join(timeout=1.0)
        for tenant in self.tenants.values():
            tenant.shutdown(wait=False)
        self._closed.set()
        telemetry().metrics.add("gateway.aborts")

    def __enter__(self) -> "Gateway":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accept loop
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        metrics = telemetry().metrics
        listener = self._listener
        while not self._draining.is_set():
            try:
                conn, __ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            if self._draining.is_set():
                self._refuse(conn, "draining", "gateway is draining")
                continue
            with self._state_lock:
                if len(self._conns) >= self.config.max_connections:
                    full = True
                else:
                    full = False
                    self._conns.add(conn)
            if full:
                metrics.add("gateway.busy_rejected")
                self._refuse(
                    conn,
                    "busy",
                    f"connection limit {self.config.max_connections} reached",
                )
                continue
            metrics.add("gateway.connections")
            worker = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="gateway-conn",
                daemon=True,
            )
            with self._state_lock:
                self._workers.add(worker)
            worker.start()

    def _refuse(self, conn: socket.socket, code: str, message: str) -> None:
        try:
            conn.sendall(
                protocol.encode_frame(
                    protocol.error_response(None, code, message)
                )
            )
        except OSError:
            pass
        _close_quietly(conn)

    # ------------------------------------------------------------------
    # Per-connection worker
    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        metrics = telemetry().metrics
        decoder = protocol.FrameDecoder(self.config.max_frame_bytes)
        conn.settimeout(_POLL_S)
        try:
            while True:
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    if self._draining.is_set():
                        break
                    continue
                except OSError:
                    metrics.add("gateway.disconnected")
                    break
                if not data:
                    if decoder.buffered:
                        # EOF inside a frame: the peer vanished mid-request.
                        metrics.add("gateway.disconnected")
                    break
                try:
                    payloads = decoder.feed(data)
                except FrameTooLargeError as error:
                    metrics.add("gateway.oversized_frames")
                    self._send(
                        conn,
                        protocol.error_response(
                            None, "bad_frame", str(error)
                        ),
                    )
                    break
                except ProtocolError as error:
                    self._send(
                        conn,
                        protocol.error_response(
                            None, "bad_frame", str(error)
                        ),
                    )
                    break
                alive = True
                for payload in payloads:
                    # Every decoded request is answered, drain or not:
                    # these are the "accepted in-flight" requests graceful
                    # shutdown must not lose.
                    response = self._handle(payload)
                    if not self._send(conn, response):
                        alive = False
                        break
                if not alive or self._draining.is_set():
                    break
        finally:
            with self._state_lock:
                self._conns.discard(conn)
                self._workers.discard(threading.current_thread())
            _close_quietly(conn)

    def _send(self, conn: socket.socket, payload: dict) -> bool:
        try:
            conn.sendall(protocol.encode_frame(payload))
            return True
        except OSError:
            # The client went away while its request was in flight.  The
            # work itself already completed (leaders resolved their
            # flights before we got here), so followers are unaffected.
            telemetry().metrics.add("gateway.disconnected")
            return False

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _handle(self, payload: dict) -> dict:
        metrics = telemetry().metrics
        metrics.add("gateway.requests")
        request_id = payload.get("id") if isinstance(payload, dict) else None
        started = time.perf_counter()
        tenant_name = (
            payload.get("tenant") if isinstance(payload, dict) else None
        )
        context = None
        if isinstance(payload, dict):
            try:
                stamped = protocol.parse_trace(payload)
            except ProtocolError as error:
                metrics.add("gateway.bad_request")
                return protocol.error_response(
                    request_id, "bad_request", str(error)
                )
            if stamped is not None:
                context = TraceContext(
                    trace_id=stamped[0],
                    span_id=stamped[1],
                    tenant=tenant_name if isinstance(tenant_name, str) else None,
                )
        with telemetry().tracer.activate(context), trace_span(
            "gateway.request",
            op=str(payload.get("op")) if isinstance(payload, dict) else "?",
            tenant=str(tenant_name),
        ) as span:
            try:
                data = protocol.check_request(payload)
            except ProtocolError as error:
                code = (
                    "bad_version"
                    if "envelope version" in str(error)
                    else "bad_request"
                )
                span.set_attr("status", code)
                metrics.add(f"gateway.{code}")
                return protocol.error_response(request_id, code, str(error))
            op = data["op"]
            if op == "ping":
                span.set_attr("status", "ok")
                return protocol.ok_response(request_id, {"pong": True})
            if op == "health":
                span.set_attr("status", "ok")
                return protocol.ok_response(
                    request_id, self.health_snapshot()
                )
            if op == "obs":
                span.set_attr("status", "ok")
                return protocol.ok_response(
                    request_id, self.observability_snapshot()
                )
            tenant = self.tenants.get(data.get("tenant"))
            if tenant is None:
                span.set_attr("status", "unknown_tenant")
                metrics.add("gateway.unknown_tenant")
                return protocol.error_response(
                    request_id,
                    "unknown_tenant",
                    f"no tenant {data.get('tenant')!r}; "
                    f"known: {sorted(self.tenants)}",
                )
            if op == "stats":
                span.set_attr("status", "ok")
                return protocol.ok_response(request_id, tenant.stats())
            if op not in ("query", "insert", "batch"):
                span.set_attr("status", "unknown_op")
                metrics.add("gateway.unknown_op")
                return protocol.error_response(
                    request_id, "unknown_op", f"unknown op {op!r}"
                )
            labels = {"tenant": tenant.spec.name}
            outcome = tenant.admit()
            if outcome != ACCEPTED:
                span.set_attr("status", outcome)
                metrics.add(f"gateway.{outcome}", labels=labels)
                return protocol.error_response(
                    request_id,
                    outcome,
                    f"tenant {tenant.spec.name!r} {outcome.replace('_', ' ')}",
                )
            metrics.add("gateway.accepted")
            try:
                result = self._dispatch(tenant, op, data)
                span.set_attr("status", "ok")
                self._count_outcomes(metrics, labels, op, result)
                return protocol.ok_response(request_id, result)
            except (ProtocolError, ReproError) as error:
                span.set_attr("status", "bad_request")
                metrics.add("gateway.bad_request")
                return protocol.error_response(
                    request_id, "bad_request", str(error)
                )
            except BaseException as error:  # pragma: no cover - safety net
                span.set_attr("status", "internal")
                metrics.add("gateway.internal_errors")
                return protocol.error_response(
                    request_id, "internal", f"{type(error).__name__}: {error}"
                )
            finally:
                tenant.release()
                latency_ms = (time.perf_counter() - started) * 1000.0
                metrics.observe("gateway.latency_ms", latency_ms, labels=labels)

    def observability_snapshot(self) -> dict:
        """The ``obs`` wire-op body: labeled metrics + per-tenant SLO."""
        report = self.slo.report()
        return {
            "metrics": telemetry().metrics.snapshot().to_dict(),
            "slo": report.to_dict(),
        }

    def health_snapshot(self) -> dict:
        """The ``health`` wire-op body: readiness plus tenant liveness.

        ``ready`` goes false the moment drain begins, so load balancers
        (and the chaos harness) can distinguish "up and serving" from
        "up but finishing in-flight work" without issuing a real query.
        """
        draining = self._draining.is_set()
        return {
            "ready": self._listener is not None and not draining,
            "draining": draining,
            "connections": self.active_connections,
            "tenants": {
                name: {
                    "started": tenant.started,
                    "recovered": tenant.recovered,
                }
                for name, tenant in sorted(self.tenants.items())
            },
        }

    @staticmethod
    def _count_outcomes(metrics, labels: dict, op: str, result: dict) -> None:
        """Tenant-labeled availability counters from a served dispatch.

        Service-level outcomes (a shed admission queue, a blown deadline)
        travel as *result statuses* inside an ``ok`` wire response, so
        they are tallied here — into the same ``gateway.<outcome>``
        family the tenant gate uses — for the SLO monitor to consume.
        """
        if op == "query":
            statuses = [result.get("status", "ok")]
        elif op == "batch":
            statuses = [
                entry.get("status", "ok")
                for entry in result.get("results", [])
            ]
        else:
            statuses = ["ok"]
        for status in statuses:
            metrics.add(f"gateway.{status}", labels=labels)

    def _dispatch(self, tenant: Tenant, op: str, data: dict) -> dict:
        """Run one admitted op through the tenant's futures surface."""
        service = tenant.service
        include = self.config.include_records
        deadline_ms = data.get("deadline_ms")
        if op == "query":
            query = protocol.parse_query(service.file.filesystem, data)
            result = service.submit(query, deadline_ms=deadline_ms).result()
            return protocol.result_payload(result, include_records=include)
        if op == "insert":
            record = data.get("record")
            if not isinstance(record, list):
                raise ProtocolError(
                    f"insert needs a 'record' array, got {record!r}"
                )
            idem = data.get("idem")
            if idem is not None and (
                not isinstance(idem, str) or not idem or len(idem) > 128
            ):
                raise ProtocolError(
                    "idempotency key must be a non-empty string of at "
                    f"most 128 chars, got {idem!r}"
                )
            bucket, version, deduped = tenant.insert_idempotent(
                tuple(record), idem
            )
            if deduped:
                telemetry().metrics.add(
                    "gateway.dedup_hits",
                    labels={"tenant": tenant.spec.name},
                )
                span = telemetry().tracer.current()
                if span is not None:
                    span.add_event("gateway.dedup_hit", idem=idem)
            return {
                "bucket": list(bucket),
                "write_version": version,
                "deduped": deduped,
            }
        # op == "batch"
        queries_raw = data.get("queries")
        if not isinstance(queries_raw, list) or not queries_raw:
            raise ProtocolError(
                "batch needs a non-empty 'queries' array"
            )
        queries = [
            protocol.parse_query(service.file.filesystem, body)
            for body in queries_raw
        ]
        results = service.submit_many(
            queries, deadline_ms=deadline_ms
        ).result()
        return {
            "results": [
                protocol.result_payload(result, include_records=include)
                for result in results
            ]
        }


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:
        pass
