"""Per-tenant namespaces: one file + service + admission budget each.

Multi-tenant placement on a shared device array is exactly the regime the
declustering guarantee targets; the gateway keeps tenants *isolated* by
giving each its own :class:`~repro.storage.parallel_file.PartitionedFile`
and :class:`~repro.service.frontend.QueryService` (built lazily through
the :mod:`repro.api` facade on first touch) plus a private admission
budget in front of the service's own gate:

* ``request_quota`` — a lifetime request budget; deterministic, so tests
  can prove "quota N + k excess requests = exactly k sheds",
* ``rate_per_s`` / ``burst`` — a token bucket (burst tokens up front,
  refilled continuously), and
* ``max_inflight`` — concurrent requests across all of the tenant's
  connections.

A request that fails the tenant gate never reaches the service; the
gateway reports it as a coded ``shed`` / ``rate_limited`` wire error and
bumps the matching ``gateway.*`` counter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["TenantSpec", "TokenBucket", "Tenant"]

#: Tenant-gate outcomes (also wire error codes / counter suffixes).
ACCEPTED = "accepted"
SHED = "shed"
RATE_LIMITED = "rate_limited"


@dataclass(frozen=True)
class TenantSpec:
    """Declarative shape of one tenant namespace.

    *fields*/*devices*/*method* describe the tenant's own partitioned
    file; *service* holds extra :func:`repro.api.make_service` keyword
    options (cache, coalescing, micro-batching, admission retry — the one
    shared facade keyword surface).
    """

    name: str
    fields: tuple[int, ...]
    devices: int
    method: str = "fx"
    #: Lifetime request budget (``None`` = unlimited).
    request_quota: int | None = None
    #: Token-bucket refill rate, requests/second (``None`` = no rate limit).
    rate_per_s: float | None = None
    #: Token-bucket capacity (the burst the tenant may front-load).
    burst: int = 8
    #: Concurrent in-flight requests across all connections (``None`` = no cap).
    max_inflight: int | None = None
    #: Extra ``make_service`` keyword options.
    service: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"tenant name must be non-empty, got {self.name!r}")
        if self.request_quota is not None and self.request_quota < 0:
            raise ConfigurationError(
                f"request_quota must be >= 0, got {self.request_quota}"
            )
        if self.rate_per_s is not None and self.rate_per_s < 0:
            raise ConfigurationError(
                f"rate_per_s must be >= 0, got {self.rate_per_s}"
            )
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )

    @classmethod
    def of(cls, name: str, fields: Sequence[int], devices: int, **options):
        """Keyword-friendly constructor used by the facade and CLI."""
        return cls(name=name, fields=tuple(fields), devices=devices, **options)


class TokenBucket:
    """Continuous-refill token bucket (thread-safe).

    ``rate_per_s=0`` never refills — the *burst* tokens are the whole
    budget, which is what the deterministic rate-limit tests rely on.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock=time.monotonic,
    ):
        if rate_per_s < 0:
            raise ConfigurationError(f"rate_per_s must be >= 0, got {rate_per_s}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_per_s
            )
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        with self._lock:
            return self._tokens


class Tenant:
    """One live tenant: lazy service plus the admission budget state."""

    def __init__(self, spec: TenantSpec, service_defaults: Mapping | None = None):
        self.spec = spec
        #: Gateway-wide ``make_service`` defaults the spec's own options
        #: override (the facade merges them; see ``repro.api.make_gateway``).
        self.service_defaults = dict(service_defaults or {})
        self._service = None
        self._service_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._requests_admitted = 0
        self._inflight = 0
        self._bucket = (
            TokenBucket(spec.rate_per_s, spec.burst)
            if spec.rate_per_s is not None
            else None
        )

    # ------------------------------------------------------------------
    # The namespace
    # ------------------------------------------------------------------
    @property
    def service(self):
        """The tenant's :class:`QueryService`, built on first touch.

        Construction goes through the :func:`repro.api.make_service`
        facade — tenants never call service constructors directly, so the
        gateway and the in-process path share one construction surface.
        """
        with self._service_lock:
            if self._service is None:
                from repro.api import make_service

                options = dict(self.service_defaults)
                options.update(self.spec.service)
                self._service = make_service(
                    self.spec.method,
                    fields=self.spec.fields,
                    devices=self.spec.devices,
                    **options,
                )
            return self._service

    @property
    def started(self) -> bool:
        """Has the lazy service been materialised yet?"""
        with self._service_lock:
            return self._service is not None

    def shutdown(self) -> None:
        """Retire the tenant's service pool, if one was ever built."""
        with self._service_lock:
            service = self._service
        if service is not None:
            service.shutdown(wait=True)

    # ------------------------------------------------------------------
    # The tenant gate
    # ------------------------------------------------------------------
    def admit(self) -> str:
        """Charge one request against the tenant budget.

        Returns ``"accepted"``, ``"shed"`` (quota or inflight cap) or
        ``"rate_limited"``; on acceptance the caller must pair with
        :meth:`release`.
        """
        with self._state_lock:
            if (
                self.spec.request_quota is not None
                and self._requests_admitted >= self.spec.request_quota
            ):
                return SHED
            if (
                self.spec.max_inflight is not None
                and self._inflight >= self.spec.max_inflight
            ):
                return SHED
            if self._bucket is not None and not self._bucket.try_acquire():
                return RATE_LIMITED
            self._requests_admitted += 1
            self._inflight += 1
            return ACCEPTED

    def release(self) -> None:
        with self._state_lock:
            self._inflight -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    @property
    def requests_admitted(self) -> int:
        with self._state_lock:
            return self._requests_admitted

    def stats(self) -> dict:
        """JSON-ready snapshot for the ``stats`` wire op."""
        with self._state_lock:
            admitted = self._requests_admitted
            inflight = self._inflight
        with self._service_lock:
            service = self._service
        return {
            "tenant": self.spec.name,
            "admitted": admitted,
            "inflight": inflight,
            "quota": self.spec.request_quota,
            "rate_per_s": self.spec.rate_per_s,
            "started": service is not None,
            "write_version": (
                0 if service is None else service.file.write_version
            ),
        }
