"""Per-tenant namespaces: one file + service + admission budget each.

Multi-tenant placement on a shared device array is exactly the regime the
declustering guarantee targets; the gateway keeps tenants *isolated* by
giving each its own :class:`~repro.storage.parallel_file.PartitionedFile`
and :class:`~repro.service.frontend.QueryService` (built lazily through
the :mod:`repro.api` facade on first touch) plus a private admission
budget in front of the service's own gate:

* ``request_quota`` — a lifetime request budget; deterministic, so tests
  can prove "quota N + k excess requests = exactly k sheds",
* ``rate_per_s`` / ``burst`` — a token bucket (burst tokens up front,
  refilled continuously), and
* ``max_inflight`` — concurrent requests across all of the tenant's
  connections.

A request that fails the tenant gate never reaches the service; the
gateway reports it as a coded ``shed`` / ``rate_limited`` wire error and
bumps the matching ``gateway.*`` counter.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["TenantSpec", "TokenBucket", "Tenant"]

#: Tenant-gate outcomes (also wire error codes / counter suffixes).
ACCEPTED = "accepted"
SHED = "shed"
RATE_LIMITED = "rate_limited"


@dataclass(frozen=True)
class TenantSpec:
    """Declarative shape of one tenant namespace.

    *fields*/*devices*/*method* describe the tenant's own partitioned
    file; *service* holds extra :func:`repro.api.make_service` keyword
    options (cache, coalescing, micro-batching, admission retry — the one
    shared facade keyword surface).
    """

    name: str
    fields: tuple[int, ...]
    devices: int
    method: str = "fx"
    #: Lifetime request budget (``None`` = unlimited).
    request_quota: int | None = None
    #: Token-bucket refill rate, requests/second (``None`` = no rate limit).
    rate_per_s: float | None = None
    #: Token-bucket capacity (the burst the tenant may front-load).
    burst: int = 8
    #: Concurrent in-flight requests across all connections (``None`` = no cap).
    max_inflight: int | None = None
    #: Distinct idempotency keys remembered for write dedup (LRU window).
    idem_window: int = 256
    #: Extra ``make_service`` keyword options.
    service: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"tenant name must be non-empty, got {self.name!r}")
        if self.request_quota is not None and self.request_quota < 0:
            raise ConfigurationError(
                f"request_quota must be >= 0, got {self.request_quota}"
            )
        if self.rate_per_s is not None and self.rate_per_s < 0:
            raise ConfigurationError(
                f"rate_per_s must be >= 0, got {self.rate_per_s}"
            )
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.idem_window < 1:
            raise ConfigurationError(
                f"idem_window must be >= 1, got {self.idem_window}"
            )

    @classmethod
    def of(cls, name: str, fields: Sequence[int], devices: int, **options):
        """Keyword-friendly constructor used by the facade and CLI."""
        return cls(name=name, fields=tuple(fields), devices=devices, **options)


class TokenBucket:
    """Continuous-refill token bucket (thread-safe).

    ``rate_per_s=0`` never refills — the *burst* tokens are the whole
    budget, which is what the deterministic rate-limit tests rely on.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock=time.monotonic,
    ):
        if rate_per_s < 0:
            raise ConfigurationError(f"rate_per_s must be >= 0, got {rate_per_s}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; never blocks."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate_per_s
            )
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        with self._lock:
            return self._tokens


class Tenant:
    """One live tenant: lazy service plus the admission budget state.

    *wal* (a :class:`~repro.durability.wal.WriteAheadLog`) makes the
    namespace durable: it is replayed into the fresh file when the lazy
    service is first built — the crash-recovery path a restarted gateway
    takes — and then attached to the service so every later write is
    logged before it is applied.  Idempotency keys stamped into WAL entry
    metadata are rebuilt into the dedup window during that replay, so
    exactly-once acknowledgement survives the crash too.
    """

    def __init__(
        self,
        spec: TenantSpec,
        service_defaults: Mapping | None = None,
        wal=None,
    ):
        self.spec = spec
        #: Gateway-wide ``make_service`` defaults the spec's own options
        #: override (the facade merges them; see ``repro.api.make_gateway``).
        self.service_defaults = dict(service_defaults or {})
        self.wal = wal
        #: Filled at service build when *wal* held entries to replay:
        #: ``{"entries": n, "torn_bytes": t}``.
        self.recovered: dict[str, int] | None = None
        self._service = None
        self._service_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._requests_admitted = 0
        self._inflight = 0
        #: idem key -> acknowledged (bucket, write_version), LRU-bounded.
        self._idem: OrderedDict[str, tuple[tuple, int]] = OrderedDict()
        self._idem_lock = threading.Lock()
        self._bucket = (
            TokenBucket(spec.rate_per_s, spec.burst)
            if spec.rate_per_s is not None
            else None
        )

    # ------------------------------------------------------------------
    # The namespace
    # ------------------------------------------------------------------
    @property
    def service(self):
        """The tenant's :class:`QueryService`, built on first touch.

        Construction goes through the :func:`repro.api.make_service`
        facade — tenants never call service constructors directly, so the
        gateway and the in-process path share one construction surface.
        """
        with self._service_lock:
            if self._service is None:
                from repro.api import make_service

                options = dict(self.service_defaults)
                options.update(self.spec.service)
                service = make_service(
                    self.spec.method,
                    fields=self.spec.fields,
                    devices=self.spec.devices,
                    **options,
                )
                if self.wal is not None:
                    self._replay_wal(service)
                    service.wal = self.wal
                self._service = service
            return self._service

    def _replay_wal(self, service) -> None:
        """Rebuild the fresh file (and idem window) from the tenant's WAL.

        Mirrors :func:`repro.durability.durable_file.recover`: inserts and
        deletes replay in log order, ``move`` audit entries are no-ops.
        Versions come out identical to the original run because WAL order
        equals write-version order (the service appends under the file's
        mutation lock).
        """
        entries = self.wal.entries()
        if not entries and not self.wal.torn_bytes_discarded:
            return
        from repro.obs import telemetry, trace_span

        with trace_span(
            "tenant.recover",
            tenant=self.spec.name,
            entries=len(entries),
        ) as span:
            for entry in entries:
                if entry.op == "insert":
                    bucket, version = service.file.insert_versioned(
                        entry.record
                    )
                    idem = (entry.meta or {}).get("idem")
                    if isinstance(idem, str):
                        self._remember(idem, (tuple(bucket), version))
                elif entry.op == "delete":
                    service.file.delete(entry.record)
            if self.wal.torn_bytes_discarded:
                span.add_event(
                    "wal.torn_tail", bytes=self.wal.torn_bytes_discarded
                )
        self.recovered = {
            "entries": len(entries),
            "torn_bytes": self.wal.torn_bytes_discarded,
        }
        metrics = telemetry().metrics
        labels = {"tenant": self.spec.name}
        metrics.add("chaos.recovered_writes", len(entries), labels=labels)
        if self.wal.torn_bytes_discarded:
            metrics.add("chaos.torn_tails", labels=labels)

    @property
    def started(self) -> bool:
        """Has the lazy service been materialised yet?"""
        with self._service_lock:
            return self._service is not None

    def shutdown(self, wait: bool = True) -> None:
        """Retire the tenant's service pool, if one was ever built."""
        with self._service_lock:
            service = self._service
        if service is not None:
            service.shutdown(wait=wait)

    # ------------------------------------------------------------------
    # Exactly-once writes
    # ------------------------------------------------------------------
    def insert_idempotent(
        self, record: tuple, idem: str | None
    ) -> tuple[tuple, int, bool]:
        """Insert with at-most-once application per idempotency key.

        Returns ``(bucket, write_version, deduped)``.  A key seen within
        the LRU window re-acknowledges the original position without
        touching the file; a fresh key rides the normal futures path with
        the key stamped into the WAL entry, so a crash between apply and
        acknowledgement still dedupes the retry after recovery.
        """
        if idem is None:
            bucket, version = self.service.submit_insert(record).result()
            return tuple(bucket), version, False
        # Lookup and apply are atomic under the window lock: a retry that
        # races its original (duplicated frames land the same write on
        # two connections at once) must observe the first apply, or the
        # record would land twice.  Writes are serialised by the file's
        # mutation lock anyway, so this costs no extra parallelism.
        with self._idem_lock:
            hit = self._idem.get(idem)
            if hit is not None:
                self._idem.move_to_end(idem)
                return hit[0], hit[1], True
            bucket, version = self.service.submit_insert(
                record, wal_meta={"idem": idem}
            ).result()
            ack = (tuple(bucket), version)
            self._remember(idem, ack)
        return ack[0], ack[1], False

    def _remember(self, idem: str, ack: tuple[tuple, int]) -> None:
        """Record one acknowledged key, evicting beyond the window.

        Callers hold ``_idem_lock`` (or are single-threaded replay).
        """
        self._idem[idem] = ack
        self._idem.move_to_end(idem)
        while len(self._idem) > self.spec.idem_window:
            self._idem.popitem(last=False)

    # ------------------------------------------------------------------
    # The tenant gate
    # ------------------------------------------------------------------
    def admit(self) -> str:
        """Charge one request against the tenant budget.

        Returns ``"accepted"``, ``"shed"`` (quota or inflight cap) or
        ``"rate_limited"``; on acceptance the caller must pair with
        :meth:`release`.
        """
        with self._state_lock:
            if (
                self.spec.request_quota is not None
                and self._requests_admitted >= self.spec.request_quota
            ):
                return SHED
            if (
                self.spec.max_inflight is not None
                and self._inflight >= self.spec.max_inflight
            ):
                return SHED
            if self._bucket is not None and not self._bucket.try_acquire():
                return RATE_LIMITED
            self._requests_admitted += 1
            self._inflight += 1
            return ACCEPTED

    def release(self) -> None:
        with self._state_lock:
            self._inflight -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    @property
    def requests_admitted(self) -> int:
        with self._state_lock:
            return self._requests_admitted

    def stats(self) -> dict:
        """JSON-ready snapshot for the ``stats`` wire op."""
        with self._state_lock:
            admitted = self._requests_admitted
            inflight = self._inflight
        with self._service_lock:
            service = self._service
        return {
            "tenant": self.spec.name,
            "admitted": admitted,
            "inflight": inflight,
            "quota": self.spec.request_quota,
            "rate_per_s": self.spec.rate_per_s,
            "started": service is not None,
            "write_version": (
                0 if service is None else service.file.write_version
            ),
            "durable": self.wal is not None,
            "recovered": self.recovered,
        }
