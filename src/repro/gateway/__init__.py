"""Multi-tenant network gateway over the serving tier.

The declustering guarantee — every query touches at most
``ceil(|R(q)|/M)`` buckets per device — only pays off when many
*independent* clients actually share the device array.  This package is
the socket front end that lets them: a length-framed JSON wire protocol
(:mod:`repro.gateway.protocol`) over per-tenant namespaces
(:mod:`repro.gateway.tenant`, each a lazily-built
:class:`~repro.storage.parallel_file.PartitionedFile` +
:class:`~repro.service.frontend.QueryService`), served by a threaded
accept loop with bounded connections, per-tenant quotas and token-bucket
rate limits, and graceful drain (:mod:`repro.gateway.server`).

The gateway consumes only the service's futures surface
(``submit`` / ``submit_many`` / ``submit_insert``);
:class:`~repro.gateway.client.GatewayClient` and the loopback
multi-tenant load test (:mod:`repro.gateway.loadtest`) close the loop,
proving zero stale reads by serial replay over traffic that crossed real
sockets.  Build one through :func:`repro.api.make_gateway`; drive it with
``python -m repro gateway``.

When the wire itself is hostile,
:class:`~repro.gateway.resilient.ResilientGatewayClient` retries typed
transport errors with capped backoff behind a circuit breaker and stamps
idempotency keys so the gateway's per-tenant dedup window (persisted via
the WAL, rebuilt across crash-restarts) acks every write exactly once —
proved end to end by the chaos harness in :mod:`repro.chaos`.
"""

from repro.gateway.client import GatewayClient, GatewayRequestError
from repro.gateway.loadtest import (
    GatewayLoadReport,
    GatewayLoadSpec,
    run_loopback_load,
)
from repro.gateway.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    WIRE_VERSION,
    encode_frame,
    recv_frame,
)
from repro.gateway.resilient import CircuitBreaker, ResilientGatewayClient
from repro.gateway.server import Gateway, GatewayConfig
from repro.gateway.tenant import Tenant, TenantSpec, TokenBucket

__all__ = [
    "Gateway",
    "GatewayConfig",
    "GatewayClient",
    "GatewayRequestError",
    "CircuitBreaker",
    "ResilientGatewayClient",
    "GatewayLoadSpec",
    "GatewayLoadReport",
    "run_loopback_load",
    "Tenant",
    "TenantSpec",
    "TokenBucket",
    "FrameDecoder",
    "encode_frame",
    "recv_frame",
    "DEFAULT_MAX_FRAME_BYTES",
    "WIRE_VERSION",
]
