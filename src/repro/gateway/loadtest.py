"""Loopback multi-tenant load test with end-to-end staleness verification.

This drives a running :class:`~repro.gateway.server.Gateway` through real
sockets — N tenants x C connections, each connection a closed-loop client
with a *deterministic* op log (seeded per ``(tenant, connection)``), the
same discipline as the in-process
:class:`~repro.service.loadgen.LoadGenerator`.  Every response is rebuilt
into a full :class:`~repro.service.frontend.ServiceResult`, so the run
ends with one :class:`~repro.service.loadgen.LoadReport` per tenant and
the zero-stale-reads serial-replay check
(:meth:`~repro.service.loadgen.LoadReport.verify`) runs over traffic that
crossed the wire, not a shortcut in-process path.

Tenant-gate rejections (quota ``shed`` / ``rate_limited``) come back as
coded wire errors; the harness counts them per code so tests can assert
"quota N + k excess = exactly k sheds" against the ``gateway.*``
counters.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.gateway.client import GatewayClient, GatewayRequestError
from repro.gateway.tenant import TenantSpec
from repro.hashing.fields import FileSystem
from repro.hashing.multikey import MultiKeyHash
from repro.query.workload import QueryWorkload, WorkloadSpec
from repro.service.loadgen import LoadReport, LoadSpec, RequestRecord

__all__ = ["GatewayLoadSpec", "GatewayLoadReport", "run_loopback_load"]


@dataclass(frozen=True)
class GatewayLoadSpec:
    """Shape of one loopback load run (per tenant)."""

    connections_per_tenant: int = 4
    requests_per_connection: int = 25
    seed: int = 0
    spec_probability: float = 0.5
    #: Every k-th op of a connection is an insert (0 = read-only).
    write_every: int = 0
    hot_fraction: float = 0.0
    hot_pool: int = 4
    #: Every k-th op is a ``batch`` frame of *batch_size* queries (0 = never).
    batch_every: int = 0
    batch_size: int = 4
    #: Records inserted per tenant before the timed run starts.
    preload: int = 0
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.connections_per_tenant < 1:
            raise ConfigurationError(
                f"connections_per_tenant must be >= 1, got "
                f"{self.connections_per_tenant}"
            )
        if self.requests_per_connection < 1:
            raise ConfigurationError(
                f"requests_per_connection must be >= 1, got "
                f"{self.requests_per_connection}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction {self.hot_fraction} outside [0, 1]"
            )
        if self.write_every < 0 or self.batch_every < 0 or self.preload < 0:
            raise ConfigurationError("write_every/batch_every/preload must be >= 0")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )


@dataclass
class GatewayLoadReport:
    """Everything one loopback run produced, per tenant plus wire totals."""

    spec: GatewayLoadSpec
    wall_s: float
    #: One serial-replay-verifiable report per tenant.
    per_tenant: dict[str, LoadReport] = field(default_factory=dict)
    #: Coded wire rejections per tenant, e.g. ``{"alpha": {"shed": 3}}``.
    rejections: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Client-side transport failures (should stay empty).
    errors: list[str] = field(default_factory=list)
    #: Per-tenant hash functions the replay verification evaluates with.
    _hashes: dict[str, MultiKeyHash] = field(default_factory=dict, repr=False)

    @property
    def completed(self) -> int:
        return sum(report.completed for report in self.per_tenant.values())

    @property
    def throughput_qps(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.completed / self.wall_s

    def verify(self) -> dict[str, list[str]]:
        """Serial-replay every tenant's log; returns mismatches by tenant.

        All-empty values are the zero-stale-reads acceptance criterion.
        Preloaded records travelled through the same versioned write log,
        so each tenant's timeline replays from version 1.
        """
        return {
            name: report.verify(self._hashes[name], initial_records=[])
            for name, report in self.per_tenant.items()
        }

    def to_dict(self) -> dict:
        from repro.envelope import versioned

        return versioned(
            {
                "wall_s": round(self.wall_s, 6),
                "throughput_qps": round(self.throughput_qps, 3),
                "tenants": {
                    name: report.to_dict()
                    for name, report in sorted(self.per_tenant.items())
                },
                "rejections": {
                    name: dict(sorted(codes.items()))
                    for name, codes in sorted(self.rejections.items())
                },
                "errors": len(self.errors),
            }
        )


def run_loopback_load(
    address: tuple[str, int],
    tenants: Sequence[TenantSpec],
    spec: GatewayLoadSpec | None = None,
) -> GatewayLoadReport:
    """Drive the gateway at *address* and return the verifiable report.

    *tenants* accepts :class:`TenantSpec` entries or the live
    :class:`~repro.gateway.tenant.Tenant` objects a gateway exposes.
    """
    spec = spec or GatewayLoadSpec()
    tenants = [getattr(tenant, "spec", tenant) for tenant in tenants]
    host, port = address
    per_tenant: dict[str, LoadReport] = {}
    rejections: dict[str, dict[str, int]] = {}
    hashes: dict[str, MultiKeyHash] = {}
    errors: list[str] = []
    errors_lock = threading.Lock()

    # Preload sequentially so the concurrent phase starts from a known
    # version; the writes still flow through the wire and the write log.
    # A tenant quota small enough to reject preloads counts them like any
    # other rejection rather than aborting the run.
    preload_writes: dict[str, list[tuple[int, tuple]]] = {}
    for tenant in tenants:
        fs = FileSystem.of(*tenant.fields, m=tenant.devices)
        hashes[tenant.name] = MultiKeyHash.default(fs)
        writes: list[tuple[int, tuple]] = []
        # The serial-replay proof in verify() rebuilds each tenant's file
        # from version 1, so this run must own the tenant's entire write
        # history — refuse tenants that were already written to.
        setup_seed = zlib.crc32(
            f"gateway-setup-trace:{spec.seed}:{tenant.name}".encode()
        )
        with GatewayClient(
            host, port, tenant=tenant.name, trace_seed=setup_seed
        ) as client:
            existing = int(client.stats().get("write_version", 0))
        if existing:
            raise ConfigurationError(
                f"tenant {tenant.name!r} already has write_version "
                f"{existing}; run_loopback_load needs fresh tenants so "
                f"verify() can replay the full write history"
            )
        if spec.preload:
            rng = random.Random(f"gateway-preload:{spec.seed}:{tenant.name}")
            codes = rejections.setdefault(tenant.name, {})
            with GatewayClient(
                host, port, tenant=tenant.name, trace_seed=~setup_seed
            ) as client:
                for __ in range(spec.preload):
                    record = tuple(
                        rng.randrange(4096) for __ in range(fs.n_fields)
                    )
                    try:
                        __, version = client.insert(record)
                    except GatewayRequestError as error:
                        codes[error.code] = codes.get(error.code, 0) + 1
                    else:
                        writes.append((version, record))
        preload_writes[tenant.name] = writes

    lock = threading.Lock()
    threads: list[threading.Thread] = []
    barrier = threading.Barrier(
        len(tenants) * spec.connections_per_tenant + 1
    )

    def connection_loop(tenant: TenantSpec, connection: int) -> None:
        fs = FileSystem.of(*tenant.fields, m=tenant.devices)
        ops = _connection_ops(fs, tenant.name, connection, spec)
        requests: list[RequestRecord] = []
        writes: list[tuple[int, tuple]] = []
        rejected: dict[str, int] = {}
        try:
            client = GatewayClient(
                host,
                port,
                tenant=tenant.name,
                fields=tenant.fields,
                devices=tenant.devices,
                # Deterministic wire-trace ids: the same derivation family
                # as _connection_ops, so two identical runs stamp the same
                # trace id onto the same request.
                trace_seed=zlib.crc32(
                    f"gateway-trace:{spec.seed}:{tenant.name}:{connection}".encode()
                ),
            )
        except OSError as error:
            with errors_lock:
                errors.append(
                    f"{tenant.name}#{connection}: connect failed: {error!r}"
                )
            barrier.wait()
            return
        try:
            barrier.wait()
            for index, (kind, payload) in enumerate(ops):
                try:
                    if kind == "insert":
                        __, version = client.insert(payload)
                        writes.append((version, payload))
                    elif kind == "batch":
                        started = time.perf_counter()
                        results = client.batch(
                            payload, deadline_ms=spec.deadline_ms
                        )
                        latency_ms = (time.perf_counter() - started) * 1000.0
                        for result in results:
                            requests.append(
                                RequestRecord(
                                    connection, index, result.query,
                                    result, latency_ms,
                                )
                            )
                    else:
                        started = time.perf_counter()
                        result = client.query(
                            payload, deadline_ms=spec.deadline_ms
                        )
                        latency_ms = (time.perf_counter() - started) * 1000.0
                        requests.append(
                            RequestRecord(
                                connection, index, result.query, result,
                                latency_ms,
                            )
                        )
                except GatewayRequestError as error:
                    rejected[error.code] = rejected.get(error.code, 0) + 1
        except BaseException as error:
            with errors_lock:
                errors.append(f"{tenant.name}#{connection}: {error!r}")
        finally:
            client.close()
        with lock:
            report = per_tenant[tenant.name]
            report.requests.extend(requests)
            report.writes.extend(writes)
            codes = rejections.setdefault(tenant.name, {})
            for code, count in rejected.items():
                codes[code] = codes.get(code, 0) + count

    for tenant in tenants:
        per_tenant[tenant.name] = LoadReport(
            spec=LoadSpec(
                clients=spec.connections_per_tenant,
                requests_per_client=spec.requests_per_connection,
                seed=spec.seed,
                spec_probability=spec.spec_probability,
                write_every=spec.write_every,
                hot_fraction=spec.hot_fraction,
                hot_pool=spec.hot_pool,
                deadline_ms=spec.deadline_ms,
            ),
            wall_s=0.0,
            writes=list(preload_writes[tenant.name]),
        )
        for connection in range(spec.connections_per_tenant):
            threads.append(
                threading.Thread(
                    target=connection_loop,
                    args=(tenant, connection),
                    name=f"gwload-{tenant.name}-{connection}",
                )
            )
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    for report in per_tenant.values():
        report.wall_s = wall_s

    return GatewayLoadReport(
        spec=spec,
        wall_s=wall_s,
        per_tenant=per_tenant,
        rejections=rejections,
        errors=errors,
        _hashes=hashes,
    )


def _connection_ops(
    fs: FileSystem, tenant: str, connection: int, spec: GatewayLoadSpec
) -> list[tuple[str, object]]:
    """The deterministic op log of one connection.

    ``("query", {field: value})``, ``("insert", record)`` and
    ``("batch", [specified, ...])`` tuples — independent of scheduling, so
    the same spec always produces the same wire traffic.
    """
    rng = random.Random(f"gateway-load:{spec.seed}:{tenant}:{connection}")
    # PYTHONHASHSEED randomises str hashes; crc32 keeps the per-tenant
    # streams deterministic across processes.
    tenant_salt = zlib.crc32(tenant.encode("utf-8")) & 0xFFFF
    workload = QueryWorkload(
        fs,
        WorkloadSpec(
            spec_probability=spec.spec_probability,
            exclude_trivial=True,
            seed=(spec.seed * 104729 + connection + 1) ^ tenant_salt,
        ),
    )
    hot_workload = QueryWorkload(
        fs,
        WorkloadSpec(
            spec_probability=spec.spec_probability,
            exclude_trivial=True,
            seed=(spec.seed * 7919 + 1) ^ tenant_salt,
        ),
    )
    hot = [
        _specified_of(query)
        for query in hot_workload.take(max(1, spec.hot_pool))
    ]
    ops: list[tuple[str, object]] = []
    for index in range(spec.requests_per_connection):
        if spec.write_every and (index + 1) % spec.write_every == 0:
            record = tuple(
                rng.randrange(4096) for __ in range(fs.n_fields)
            )
            ops.append(("insert", record))
        elif spec.batch_every and (index + 1) % spec.batch_every == 0:
            ops.append(
                (
                    "batch",
                    [
                        _specified_of(workload.next_query())
                        for __ in range(spec.batch_size)
                    ],
                )
            )
        elif hot and rng.random() < spec.hot_fraction:
            ops.append(("query", hot[rng.randrange(len(hot))]))
        else:
            ops.append(("query", _specified_of(workload.next_query())))
    return ops


def _specified_of(query) -> dict[int, int]:
    return dict(query.specified_items())
